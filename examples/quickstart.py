#!/usr/bin/env python
"""Quickstart: reputation-driven selection among redundant services.

The paper's core scenario (Figure 1A): several providers publish
weather-report services of varying quality; consumers select through a
reputation mechanism, invoke, rate, report — and the community
converges on the good services.

Run:  python examples/quickstart.py
"""

from repro import make_world, run_selection_experiment
from repro.core.selection import EpsilonGreedyPolicy
from repro.models import BetaReputation, EbayModel, PeerTrustModel


def main() -> None:
    print("Building a world: 5 providers x 2 services, 20 consumers\n")
    for model_factory in [BetaReputation, EbayModel, PeerTrustModel]:
        # A fresh (identically-seeded) world per mechanism keeps the
        # comparison apples-to-apples.
        world = make_world(
            n_providers=5,
            services_per_provider=2,
            n_consumers=20,
            seed=42,
            quality_spread=0.3,
        )
        model = model_factory()
        outcome = run_selection_experiment(
            model,
            world,
            rounds=30,
            policy=EpsilonGreedyPolicy(0.15, rng=world.seeds.rng("policy")),
        )
        print(f"mechanism: {model.name}")
        print(f"  selection accuracy : {outcome.accuracy:.3f}")
        print(f"  final-rounds acc.  : {outcome.tail_accuracy:.3f}")
        print(f"  mean regret        : {outcome.mean_regret:.4f}")
        print(f"  score/truth rank-corr: {outcome.ranking['spearman']:.3f}")
        best_svc = max(outcome.final_scores, key=outcome.final_scores.get)
        true_best = world.best_service()
        print(f"  top-scored service : {best_svc} "
              f"(ground-truth best: {true_best})")
        print()


if __name__ == "__main__":
    main()
