#!/usr/bin/env python
"""Autonomic selection: rules, learning, and the cost of design-time
choices.

Day's framework (the survey's [5, 6]) drives this example: a rule-based
expert system and a naive-Bayes classifier select services
automatically at run time.  The market is dynamic — the initially-best
service degrades — so we also show the gap between a one-shot
design-time choice (the paper's "manual selection" path) and the
automatic run-time loop.

Run:  python examples/autonomic_selection.py
"""

from repro.common.randomness import SeedSequenceFactory
from repro.core.selection import EpsilonGreedyPolicy
from repro.experiments.workloads import make_consumers
from repro.models import DayExpertSystem, DayNaiveBayes, Rule
from repro.models.day import threshold_rule
from repro.services import (
    DEFAULT_METRICS,
    DegradingBehavior,
    Service,
    ServiceDescription,
)
from repro.services.invocation import InvocationEngine
from repro.services.qos import QoSProfile

ROUNDS = 60
SHIFT_AT = 25.0


def build_market():
    def svc(sid, quality, behavior=None):
        kwargs = dict(
            description=ServiceDescription(
                service=sid, provider=f"p-{sid}", category="compute"
            ),
            profile=QoSProfile(
                quality={m.name: quality for m in DEFAULT_METRICS},
                noise=0.03,
            ),
        )
        if behavior is not None:
            kwargs["behavior"] = behavior
        return Service(**kwargs)

    return [
        svc("fading-star", 0.88, DegradingBehavior(drop=0.5,
                                                   onset=SHIFT_AT)),
        svc("workhorse", 0.72),
        svc("bargain-bin", 0.35),
    ]


def run_model(model, label):
    seeds = SeedSequenceFactory(4)
    services = build_market()
    by_id = {s.service_id: s for s in services}
    consumers = make_consumers(8, DEFAULT_METRICS, seeds)
    engine = InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("invoke"))
    policy = EpsilonGreedyPolicy(0.1, rng=seeds.rng("policy"))
    regrets = []
    for t in range(ROUNDS):
        time = float(t)
        for consumer in consumers:
            chosen = policy.choose(
                model.rank(sorted(by_id), consumer.consumer_id, now=time)
            )
            truth = {
                sid: svc.true_overall(time, consumer.preferences.weights)
                for sid, svc in by_id.items()
            }
            regrets.append(max(truth.values()) - truth[chosen])
            interaction = engine.invoke(consumer, by_id[chosen], time)
            model.record(consumer.rate(interaction, DEFAULT_METRICS))
    print(f"{label:32s} mean regret: {sum(regrets)/len(regrets):.4f}")
    return model


def main() -> None:
    print(f"Dynamic market: 'fading-star' (0.88) collapses at t={SHIFT_AT:.0f}; "
          "'workhorse' (0.72) is steady.\n")

    # 1. The expert system with Day's default rule set.
    run_model(DayExpertSystem(), "expert system (default rules)")

    # 2. The expert system with a custom, stricter rule set.
    strict = DayExpertSystem(rules=[
        threshold_rule("fast", "response_time", 0.7, 0.6),
        threshold_rule("reliable", "reliability", 0.7, 0.6),
        Rule("flaky", lambda f: f.get("reliability", 1.0) < 0.5, -0.9),
    ])
    run_model(strict, "expert system (strict rules)")

    # 3. The learned classifier.
    nb = run_model(DayNaiveBayes(), "naive Bayes classifier")

    # 4. The design-time baseline: pick the t=0 winner, never revisit.
    seeds = SeedSequenceFactory(4)
    services = build_market()
    by_id = {s.service_id: s for s in services}
    consumers = make_consumers(8, DEFAULT_METRICS, seeds)
    engine = InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("invoke"))
    frozen = max(by_id, key=lambda sid: by_id[sid].true_overall(0.0))
    regrets = []
    for t in range(ROUNDS):
        time = float(t)
        for consumer in consumers:
            truth = {
                sid: svc.true_overall(time, consumer.preferences.weights)
                for sid, svc in by_id.items()
            }
            regrets.append(max(truth.values()) - truth[frozen])
            engine.invoke(consumer, by_id[frozen], time)
    print(f"{'design-time (frozen choice)':32s} mean regret: "
          f"{sum(regrets)/len(regrets):.4f}")

    print("\nWhat the classifier learned (posterior that a service "
          "profile satisfies):")
    for profile, label in [
        ({"response_time": 0.9, "reliability": 0.9}, "fast + reliable"),
        ({"response_time": 0.3, "reliability": 0.3}, "slow + flaky"),
    ]:
        print(f"  {label:18s}: {nb.posterior(profile):.3f}")


if __name__ == "__main__":
    main()
