#!/usr/bin/env python
"""Decentralized selection: reputation without a central registry.

The paper's Section 5 direction 1: peer-to-peer web services need
decentralized trust.  This example runs the two surveyed substrates
side by side on one peer marketplace:

* **Vu et al. over P-Grid** — QoS reports routed to responsible
  registry peers, liar detection against monitor data;
* **distributed EigenTrust over a Chord DHT** — peer trust computed by
  score managers, with a collusion ring trying to game it.

Run:  python examples/p2p_marketplace.py
"""

from repro.common.randomness import SeedSequenceFactory
from repro.common.records import Feedback
from repro.models import (
    DistributedEigenTrust,
    EigenTrustModel,
    VuAbererModel,
)
from repro.p2p import ChordDHT, PGrid
from repro.sim.network import Network

N_PEERS = 48


def vu_aberer_demo(seeds) -> None:
    print("=" * 64)
    print("Vu, Hauswirth & Aberer: QoS registries over P-Grid")
    print("=" * 64)
    peers = [f"peer-{i:03d}" for i in range(N_PEERS)]
    net = Network(rng=seeds.rng("net1"))
    grid = PGrid(peers, replication=2, network=net, rng=seeds.rng("grid"))
    model = VuAbererModel(deviation_tolerance=0.15)

    # Discovery is decentralized too: providers publish listings into
    # the same overlay, consumers search by category.
    from repro.p2p import DistributedServiceRegistry
    from repro.services.description import ServiceDescription

    discovery = DistributedServiceRegistry(grid)
    for sid in ["svc-monitored", "svc-hidden"]:
        discovery.publish(
            peers[0],
            ServiceDescription(service=sid, provider="prov",
                               category="translation"),
        )
    found, search_messages = discovery.search(peers[-1], "translation")
    print(f"decentralized discovery: {len(found)} services found for "
          f"'translation' ({search_messages} messages, no UDDI)")

    # A monitored service lets the mechanism catch liars.
    model.record_monitor_data("svc-monitored", {"response_time": 0.8,
                                                "availability": 0.85})
    rng = seeds.rng("ratings")
    messages = 0
    for i, peer in enumerate(peers):
        lies = i < 10  # ~20% liars
        for service, truth in [("svc-monitored", 0.8), ("svc-hidden", 0.7)]:
            value = 0.05 if lies else min(
                1.0, max(0.0, truth + float(rng.normal(0, 0.04)))
            )
            report = Feedback(
                rater=peer, target=service, time=float(i), rating=value,
                facet_ratings={"response_time": value,
                               "availability": value},
            )
            messages += model.publish_report(grid, peer, report)
    print(f"reports published through the overlay "
          f"(routing+replication messages: {messages})")
    print(f"liar credibility   : "
          f"{model.credibility('peer-000'):.3f} (caught on the "
          f"monitored service)")
    print(f"honest credibility : {model.credibility('peer-047'):.3f}")
    print(f"defended estimate for the UNmonitored service: "
          f"{model.predicted_quality('svc-hidden'):.3f} (truth 0.70)")
    reports, lookup_messages = model.query_reports(
        grid, "peer-001", "svc-hidden"
    )
    print(f"overlay lookup found {len(reports)} reports "
          f"({lookup_messages} messages)")
    print(f"network load imbalance (max/mean): "
          f"{net.stats.load_imbalance():.2f} — no central hotspot\n")


def eigentrust_demo(seeds) -> None:
    print("=" * 64)
    print("Distributed EigenTrust over a Chord DHT")
    print("=" * 64)
    peers = [f"peer-{i:03d}" for i in range(N_PEERS)]
    honest = peers[:40]
    ring = peers[40:]  # a 8-peer collusion ring
    model = EigenTrustModel(pre_trusted=honest[:3], alpha=0.2)
    rng = seeds.rng("transactions")
    t = 0.0
    for peer in honest:
        partners = rng.choice(40, size=6, replace=True)
        for index in partners:
            target = honest[int(index)]
            if target == peer:
                continue
            model.record(Feedback(rater=peer, target=target, time=t,
                                  rating=float(rng.uniform(0.6, 1.0))))
            t += 1.0
        # Honest peers get cheated by ring members occasionally.
        cheat = ring[int(rng.integers(0, len(ring)))]
        model.record(Feedback(rater=peer, target=cheat, time=t,
                              rating=0.1))
        t += 1.0
    # The ring praises itself enthusiastically.
    for a in ring:
        for b in ring:
            if a != b:
                for _ in range(5):
                    model.record(Feedback(rater=a, target=b, time=t,
                                          rating=1.0))
                    t += 1.0

    net = Network(rng=seeds.rng("net2"))
    dht = ChordDHT(peers, bits=16, network=net)
    distributed = DistributedEigenTrust(model, dht)
    trust = distributed.run(rounds=15)
    honest_mass = sum(trust[p] for p in honest)
    ring_mass = sum(trust[p] for p in ring)
    print(f"DHT messages used for 15 rounds: {distributed.messages_used}")
    print(f"trust mass held by 40 honest peers : {honest_mass:.3f}")
    print(f"trust mass held by the 8-peer ring : {ring_mass:.3f}")
    best = max(trust, key=trust.get)
    print(f"most trusted peer: {best} "
          f"({'honest' if best in honest else 'RING!'})")
    print("the pre-trusted set keeps the self-praising ring at "
          "negligible trust, as Kamvar et al. designed\n")


def main() -> None:
    seeds = SeedSequenceFactory(21)
    vu_aberer_demo(seeds)
    eigentrust_demo(seeds)


if __name__ == "__main__":
    main()
