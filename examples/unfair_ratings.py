#!/usr/bin/env python
"""Attack vs defense: dishonest feedback and what survives it.

A good service is badmouthed by a coordinated liar minority.  We show
the reputation estimate each defense produces as the liar fraction
grows — Dellarocas cluster filtering, Sen & Sajja majority opinion,
Zhang & Cohen advisor credibility, and PeerTrust's feedback-similarity
credibility, against the undefended mean.

Run:  python examples/unfair_ratings.py
"""

from repro.common.randomness import SeedSequenceFactory
from repro.common.records import Feedback
from repro.models import PeerTrustModel
from repro.robustness import (
    ClusterFilter,
    FilterMode,
    MajorityOpinion,
    ZhangCohenDefense,
    required_witnesses,
)

TRUE_QUALITY = 0.85
N_RATERS = 30
REPORTS_EACH = 4


def build_ratings(liar_fraction: float, seed: int = 0):
    rng = SeedSequenceFactory(seed).rng("ratings")
    n_liars = int(round(liar_fraction * N_RATERS))
    feedbacks = []
    for i in range(N_RATERS):
        rater = f"r{i:02d}"
        lies = i < n_liars
        for k in range(REPORTS_EACH):
            t = float(k * N_RATERS + i)
            honest = min(1.0, max(0.0, TRUE_QUALITY + float(rng.normal(0, 0.03))))
            feedbacks.append(Feedback(
                rater=rater, target="victim", time=t,
                rating=0.05 if lies else honest,
            ))
            # Liars also invert their ratings of two reference services,
            # which similarity-based defenses exploit.
            for ref, truth in [("ref-good", 0.8), ("ref-bad", 0.25)]:
                value = (1.0 - truth) if lies else truth
                value = min(1.0, max(0.0, value + float(rng.normal(0, 0.03))))
                feedbacks.append(Feedback(rater=rater, target=ref,
                                          time=t, rating=value))
    return feedbacks


def main() -> None:
    judge = f"r{N_RATERS - 1:02d}"  # an honest rater's perspective
    print(f"True quality of the attacked service: {TRUE_QUALITY}\n")
    header = (f"{'liars':>6s} {'no defense':>11s} {'cluster':>8s} "
              f"{'majority':>9s} {'zhang-cohen':>12s} {'peertrust':>10s}")
    print(header)
    print("-" * len(header))
    for fraction in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6]:
        feedbacks = build_ratings(fraction)
        victim = [fb for fb in feedbacks if fb.target == "victim"]

        naive = sum(fb.rating for fb in victim) / len(victim)
        cluster = ClusterFilter(mode=FilterMode.BOTH).filtered_mean(victim)
        majority = MajorityOpinion().score(victim)
        zc = ZhangCohenDefense(window=1000.0)
        for fb in feedbacks:
            (zc.record_own if fb.rater == judge else zc.record_advice)(fb)
        zhang = zc.robust_score(judge, "victim")
        pt = PeerTrustModel(window=10 ** 6)
        pt.record_many(feedbacks)
        peertrust = pt.score("victim", perspective=judge)

        print(f"{fraction:6.1f} {naive:11.3f} {cluster:8.3f} "
              f"{majority:9.3f} {zhang:12.3f} {peertrust:10.3f}")

    print("\nSen & Sajja witness bound (95% confidence of a correct "
          "majority):")
    for fraction in [0.1, 0.2, 0.3, 0.4, 0.45]:
        n = required_witnesses(fraction, confidence=0.95)
        print(f"  liar fraction {fraction:.2f}: ask {n} witnesses")
    print("  liar fraction 0.50: impossible (no honest majority)")


if __name__ == "__main__":
    main()
