#!/usr/bin/env python
"""Mediated selection (Figure 1B): booking flights through web services.

A consumer uses a flight-booking web service (the *intermediary*) to
obtain a flight (the *general service*).  All booking sites have
near-identical web-service QoS; what differs is the quality of the
airlines they broker.  The paper's point: in this scenario the
selection is "mainly decided by the general service properties" — and a
reputation mechanism fed with consumers' end-to-end experience learns
exactly that.

Run:  python examples/travel_booking.py
"""

from repro.common.randomness import SeedSequenceFactory
from repro.core.scenarios import MediatedSelectionScenario
from repro.core.selection import EpsilonGreedyPolicy
from repro.experiments.workloads import make_consumers
from repro.models import BetaReputation
from repro.services import (
    DEFAULT_METRICS,
    GeneralService,
    IntermediaryService,
    Service,
    ServiceDescription,
)
from repro.services.qos import QoSProfile

BOOKING_SITES = {
    "budget-bookings": 0.35,   # brokers cut-rate airlines
    "fly-okay": 0.55,
    "skyline-travel": 0.75,
    "first-class-air": 0.92,   # brokers the best airlines
}


def build_intermediaries(seeds):
    intermediaries = []
    for index, (name, airline_quality) in enumerate(BOOKING_SITES.items()):
        web_service = Service(
            description=ServiceDescription(
                service=name,
                provider=f"{name}-inc",
                category="flight_booking",
            ),
            # Every site has the same, decent web-service QoS.
            profile=QoSProfile(
                quality={m.name: 0.7 for m in DEFAULT_METRICS},
                noise=0.02,
            ),
        )
        catalog = [
            GeneralService(
                general_id=f"{name}-flight-{j}",
                domain="flight",
                quality={
                    "comfort": airline_quality,
                    "punctuality": airline_quality,
                    "baggage_handling": airline_quality,
                },
                noise=0.04,
            )
            for j in range(3)
        ]
        intermediaries.append(
            IntermediaryService(
                web_service, catalog,
                intermediary_weight=0.2,  # web QoS is the small part
                rng=seeds.rng(f"intermediary-{index}"),
            )
        )
    return intermediaries


def main() -> None:
    seeds = SeedSequenceFactory(7)
    intermediaries = build_intermediaries(seeds)
    consumers = make_consumers(15, DEFAULT_METRICS, seeds)
    scenario = MediatedSelectionScenario(
        intermediaries=intermediaries,
        consumers=consumers,
        model=BetaReputation(),
        taxonomy=DEFAULT_METRICS,
        policy=EpsilonGreedyPolicy(0.12, rng=seeds.rng("policy")),
        rng=seeds.rng("invoke"),
    )
    result = scenario.run(50)
    print("Booking-site selection after 50 rounds "
          f"({result.selections} bookings):\n")
    print(f"{'site':20s} {'airlines':>9s} {'times chosen':>13s} "
          f"{'final score':>12s}")
    for name, airline_quality in BOOKING_SITES.items():
        picks = result.selection_counts.get(name, 0)
        score = scenario.model.score(name)
        print(f"{name:20s} {airline_quality:9.2f} {picks:13d} "
              f"{score:12.3f}")
    print()
    print(f"selection accuracy : {result.accuracy:.3f}")
    print(f"final-rounds acc.  : {result.tail_accuracy(0.25):.3f}")
    print(f"mean regret        : {result.mean_regret:.4f}")
    print("\nAll sites have identical web-service QoS -- the mechanism "
          "separated them\npurely by the quality of the flights they "
          "broker, as the paper predicts.")


if __name__ == "__main__":
    main()
