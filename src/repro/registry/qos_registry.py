"""Central QoS registry: the feedback store behind centralized mechanisms.

Every centralized approach in the survey (Maximilien & Singh; Liu, Ngu &
Zeng; Manikrao & Prabhakar; Karta; Day) shares the same skeleton:
consumers report execution data and ratings to a central node, which
computes per-service scores on demand.  :class:`FeedbackStore` is the
storage layer (also reused, per-node, by the decentralized overlays);
:class:`CentralQoSRegistry` adds the central-node concerns — message
accounting against a :class:`~repro.sim.network.Network` and fault
injection.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional

from dataclasses import dataclass

from repro.common.errors import RegistryError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.faults.degradation import StaleCache
from repro.faults.resilience import BreakerBoard, CircuitBreaker, RetryPolicy
from repro.sim.network import Network


class FeedbackStore:
    """Append-only store of feedback, indexed by target and by rater."""

    def __init__(self) -> None:
        self._by_target: Dict[EntityId, List[Feedback]] = defaultdict(list)
        self._by_rater: Dict[EntityId, List[Feedback]] = defaultdict(list)
        self._count = 0

    def add(self, feedback: Feedback) -> None:
        self._by_target[feedback.target].append(feedback)
        self._by_rater[feedback.rater].append(feedback)
        self._count += 1

    def extend(self, feedbacks: Iterable[Feedback]) -> None:
        for fb in feedbacks:
            self.add(fb)

    def for_target(self, target: EntityId) -> List[Feedback]:
        """All feedback about *target*, oldest first (insertion order)."""
        return list(self._by_target.get(target, ()))

    def by_rater(self, rater: EntityId) -> List[Feedback]:
        return list(self._by_rater.get(rater, ()))

    def targets(self) -> List[EntityId]:
        return list(self._by_target)

    def raters(self) -> List[EntityId]:
        return list(self._by_rater)

    def all(self) -> List[Feedback]:
        out: List[Feedback] = []
        for items in self._by_target.values():
            out.extend(items)
        out.sort(key=lambda fb: fb.time)
        return out

    def prune_before(self, time: float) -> int:
        """Drop feedback filed strictly before *time*; returns #dropped.

        Liu, Ngu & Zeng's "active policing" of stale data uses this.
        """
        dropped = 0
        for index in (self._by_target, self._by_rater):
            for key in list(index):
                kept = [fb for fb in index[key] if fb.time >= time]
                removed = len(index[key]) - len(kept)
                if removed:
                    index[key] = kept
                dropped += removed
                if not kept:
                    del index[key]
        # Each feedback lives in both indexes; halve the double count.
        dropped //= 2
        self._count -= dropped
        return dropped

    def __len__(self) -> int:
        return self._count


class CentralQoSRegistry:
    """The central node collecting feedback and serving queries.

    Args:
        registry_id: node id for message accounting.
        network: optional :class:`Network` — when given, every report and
            query is charged as a message to/from the central node, which
            is what makes the load-imbalance numbers of experiment C6.
    """

    def __init__(
        self,
        registry_id: EntityId = "qos-registry",
        network: Optional[Network] = None,
    ) -> None:
        self.registry_id = registry_id
        self.network = network
        self.store = FeedbackStore()
        self._failed = False
        self.reports_received = 0
        self.queries_served = 0

    # -- fault injection ------------------------------------------------
    def fail(self) -> None:
        self._failed = True

    def heal(self) -> None:
        self._failed = False

    @property
    def is_failed(self) -> bool:
        return self._failed

    # -- the consumer-facing API -----------------------------------------
    def report(self, feedback: Feedback) -> bool:
        """File feedback with the central node.

        Returns False (and drops the report) when the registry is down —
        consumers cannot tell a lost report from a slow one, so no
        exception is raised on the reporting path.
        """
        if self.network is not None:
            delivered = self.network.send(
                feedback.rater, self.registry_id, kind="feedback-report"
            )
            if not delivered:
                return False
        if self._failed:
            return False
        self.store.add(feedback)
        self.reports_received += 1
        return True

    def query(
        self, consumer: EntityId, target: EntityId
    ) -> List[Feedback]:
        """Fetch all feedback about *target* (a query + response pair).

        Raises :class:`RegistryError` when the registry is failed or
        when, with a network attached, the query or response message is
        dropped — a lost response is indistinguishable from a down
        registry to the asking consumer.
        """
        if self._failed:
            raise RegistryError(f"QoS registry {self.registry_id!r} is down")
        if self.network is not None:
            request = self.network.send(
                consumer, self.registry_id, kind="qos-query"
            )
            if not request:
                raise RegistryError(
                    f"query to {self.registry_id!r} lost ({request.reason})"
                )
            response = self.network.send(
                self.registry_id, consumer, kind="qos-response"
            )
            if not response:
                raise RegistryError(
                    f"response from {self.registry_id!r} lost "
                    f"({response.reason})"
                )
        self.queries_served += 1
        return self.store.for_target(target)

    def query_many(
        self, consumer: EntityId, targets: Iterable[EntityId]
    ) -> Dict[EntityId, List[Feedback]]:
        return {t: self.query(consumer, t) for t in targets}

    def score_with(
        self,
        scorer: Callable[[List[Feedback]], float],
        target: EntityId,
    ) -> float:
        """Apply a scoring function to the stored feedback for *target*."""
        if self._failed:
            raise RegistryError(f"QoS registry {self.registry_id!r} is down")
        return scorer(self.store.for_target(target))


#: Provenance of a resilient query's answer.
FRESH = "fresh"
STALE = "stale"
UNAVAILABLE = "unavailable"


@dataclass
class QueryResult:
    """Feedback plus the provenance and confidence of the answer.

    ``source`` is :data:`FRESH` (live registry answer, confidence 1),
    :data:`STALE` (served from the local cache, confidence discounted by
    the entry's age), or :data:`UNAVAILABLE` (no answer at all,
    confidence 0, empty feedback).
    """

    feedback: List[Feedback]
    source: str
    confidence: float


class ResilientQoSClient:
    """Consumer-side registry client with retry, breaker, and fallback.

    The registry itself stays a dumb store; all resilience lives on the
    client, as it would in a real deployment:

    * each query is retried under a :class:`RetryPolicy` (exponential
      backoff + jitter — effective against probabilistic message loss,
      harmless against a hard outage);
    * a per-registry :class:`CircuitBreaker` stops hammering a down
      registry after the failure rate crosses its threshold, and probes
      it half-open after the recovery timeout;
    * every fresh answer is remembered in a :class:`StaleCache`; when
      the fresh path is refused or exhausted, the last known feedback is
      served with an age-discounted confidence instead of nothing.

    Args:
        registry: the central registry to talk to.
        retry: retry policy (default: 3 attempts, exponential backoff).
        breakers: board of per-registry circuit breakers.
        cache: stale-answer cache; pass None to disable fallback (the
            client then reports :data:`UNAVAILABLE` during outages —
            the naive baseline the chaos experiment compares against).
    """

    _DEFAULT_CACHE = object()

    def __init__(
        self,
        registry: CentralQoSRegistry,
        retry: Optional[RetryPolicy] = None,
        breakers: Optional[BreakerBoard] = None,
        cache=_DEFAULT_CACHE,
    ) -> None:
        self.registry = registry
        self.retry = retry or RetryPolicy()
        self.breakers = breakers or BreakerBoard()
        self.cache: Optional[StaleCache] = (
            StaleCache() if cache is self._DEFAULT_CACHE else cache
        )
        self.fresh_queries = 0
        self.stale_queries = 0
        self.unavailable_queries = 0
        self.reports_sent = 0
        self.reports_lost = 0

    @property
    def breaker(self) -> CircuitBreaker:
        """The breaker guarding this client's registry."""
        return self.breakers.for_target(self.registry.registry_id)

    def query(
        self, consumer: EntityId, target: EntityId, now: float
    ) -> QueryResult:
        """Fetch feedback about *target*, degrading instead of raising."""
        breaker = self.breaker
        if breaker.allow(now):
            outcome = self.retry.call(
                lambda: self.registry.query(consumer, target),
                retry_on=(RegistryError,),
            )
            if outcome.succeeded:
                breaker.record_success(now)
                if self.cache is not None:
                    self.cache.put(target, list(outcome.value), now)
                self.fresh_queries += 1
                return QueryResult(
                    feedback=list(outcome.value),
                    source=FRESH,
                    confidence=1.0,
                )
            breaker.record_failure(now)
        if self.cache is not None:
            stale = self.cache.get(target, now)
            if stale is not None:
                self.stale_queries += 1
                return QueryResult(
                    feedback=list(stale.value),
                    source=STALE,
                    confidence=stale.confidence,
                )
        self.unavailable_queries += 1
        return QueryResult(feedback=[], source=UNAVAILABLE, confidence=0.0)

    def report(self, feedback: Feedback, now: float) -> bool:
        """File feedback, respecting the breaker; returns delivery.

        Reports are fire-and-forget (the registry's contract), so no
        retry storm: one attempt when the circuit allows it.
        """
        breaker = self.breaker
        if not breaker.allow(now):
            self.reports_lost += 1
            return False
        accepted = self.registry.report(feedback)
        if accepted:
            breaker.record_success(now)
            self.reports_sent += 1
        else:
            breaker.record_failure(now)
            self.reports_lost += 1
        return accepted
