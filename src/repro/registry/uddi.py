"""UDDI-style functional registry.

Providers publish :class:`~repro.services.description.ServiceDescription`
records (optionally with a QoS advertisement); consumers search by
functional category.  The registry knows nothing about quality beyond
what providers *claim* — exactly the gap trust and reputation fill.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import RegistryError, UnknownEntityError
from repro.common.ids import EntityId
from repro.services.description import QoSAdvertisement, ServiceDescription


class UDDIRegistry:
    """Publish/search registry for service descriptions.

    Args:
        registry_id: node id used in message accounting.

    Fault injection: after :meth:`fail`, every operation raises
    :class:`RegistryError` until :meth:`heal` — the single point of
    failure the paper warns about.
    """

    def __init__(self, registry_id: EntityId = "uddi") -> None:
        self.registry_id = registry_id
        self._descriptions: Dict[EntityId, ServiceDescription] = {}
        self._advertisements: Dict[EntityId, QoSAdvertisement] = {}
        self._failed = False
        self.publish_count = 0
        self.search_count = 0
        #: bumped on every publish/unpublish; lets callers cache search
        #: results and invalidate only when the catalogue changes
        self.version = 0

    # -- fault injection ------------------------------------------------
    def fail(self) -> None:
        """Take the registry down."""
        self._failed = True

    def heal(self) -> None:
        self._failed = False

    @property
    def is_failed(self) -> bool:
        return self._failed

    def _check_up(self) -> None:
        if self._failed:
            raise RegistryError(f"registry {self.registry_id!r} is down")

    # -- publish / unpublish ---------------------------------------------
    def publish(
        self,
        description: ServiceDescription,
        advertisement: Optional[QoSAdvertisement] = None,
    ) -> None:
        """Publish (or republish) a service description.

        Republishing the same service id with a *lower* version is
        rejected; same-or-higher versions replace the record.
        """
        self._check_up()
        existing = self._descriptions.get(description.service)
        if existing is not None and description.version < existing.version:
            raise RegistryError(
                f"stale republish of {description.service}: version "
                f"{description.version} < {existing.version}"
            )
        self._descriptions[description.service] = description
        if advertisement is not None:
            if advertisement.service != description.service:
                raise RegistryError(
                    "advertisement service id does not match description"
                )
            self._advertisements[description.service] = advertisement
        self.publish_count += 1
        self.version += 1

    def unpublish(self, service_id: EntityId) -> None:
        self._check_up()
        if service_id not in self._descriptions:
            raise UnknownEntityError(f"service not published: {service_id!r}")
        del self._descriptions[service_id]
        self._advertisements.pop(service_id, None)
        self.version += 1

    # -- lookup -----------------------------------------------------------
    def search(self, category: str) -> List[ServiceDescription]:
        """All published services offering *category*, in publish order."""
        self._check_up()
        self.search_count += 1
        return [
            d for d in self._descriptions.values() if d.matches(category)
        ]

    def describe(self, service_id: EntityId) -> ServiceDescription:
        self._check_up()
        try:
            return self._descriptions[service_id]
        except KeyError:
            raise UnknownEntityError(
                f"service not published: {service_id!r}"
            ) from None

    def advertisement(self, service_id: EntityId) -> Optional[QoSAdvertisement]:
        self._check_up()
        return self._advertisements.get(service_id)

    def categories(self) -> List[str]:
        self._check_up()
        seen: List[str] = []
        for d in self._descriptions.values():
            if d.category not in seen:
                seen.append(d.category)
        return seen

    def __len__(self) -> int:
        return len(self._descriptions)

    def __contains__(self, service_id: EntityId) -> bool:
        return service_id in self._descriptions
