"""Registries: UDDI-style discovery and the central QoS registry.

The classical web-service framework the paper describes is
server-centric: a UDDI registry for publish/search, and (in most of the
surveyed selection mechanisms) a central QoS registry that collects
consumer feedback and computes ratings.  Both support fault injection so
the single-point-of-failure experiment (C6) can knock them over.
"""

from repro.registry.uddi import UDDIRegistry
from repro.registry.qos_registry import CentralQoSRegistry, FeedbackStore

__all__ = ["CentralQoSRegistry", "FeedbackStore", "UDDIRegistry"]
