"""Invocation engine: executing a service call and observing QoS.

The engine is the single place where ground truth turns into
observations: it samples the service's effective profile at the current
time (respecting :class:`~repro.services.provider.QualityBehavior`) for
the invoking consumer's taste segment, decides success/failure, and
emits an :class:`~repro.common.records.Interaction`.

Because every invocation funnels through one sampling helper, fault
injection hooks in exactly one place: a
:class:`~repro.faults.plan.FaultPlan` can inflate a slow provider's
time-like metrics during scheduled windows, and a
:class:`~repro.faults.resilience.Timeout` budget turns a
sufficiently-slow response into an observed failure — which is how real
clients experience slow providers.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng
from repro.common.records import Interaction
from repro.faults.plan import FaultPlan
from repro.faults.resilience import Timeout
from repro.services.consumer import Consumer
from repro.services.provider import Service
from repro.services.qos import QoSTaxonomy


class InvocationEngine:
    """Executes invocations against ground-truth service profiles.

    Args:
        taxonomy: QoS metric set observations are drawn from.
        fault_plan: optional fault schedule; services inside a
            slow-provider window have their time-like metrics (unit
            ``"s"``) inflated by the plan's slowdown factor.
        timeout: optional invocation budget compared against the
            (possibly inflated) primary time metric; exceeding it turns
            the invocation into a failure and increments
            :attr:`timeout_count`.
    """

    #: Metric consulted for the timeout decision, in preference order.
    TIME_METRICS = ("response_time", "latency")

    def __init__(
        self,
        taxonomy: QoSTaxonomy,
        rng: RngLike = None,
        fault_plan: Optional[FaultPlan] = None,
        timeout: Optional[Timeout] = None,
    ) -> None:
        self.taxonomy = taxonomy
        self._rng = make_rng(rng)
        self.fault_plan = fault_plan
        self.timeout = timeout
        self.invocation_count = 0
        self.timeout_count = 0
        self._time_metrics = [
            m.name for m in taxonomy if getattr(m, "unit", None) == "s"
        ]

    def _apply_faults(
        self, service: Service, time: float, observations: Dict[str, float]
    ) -> "tuple[Dict[str, float], bool]":
        """Inflate time metrics per the fault plan; decide timeouts.

        Returns the (possibly modified) observations and whether the
        invocation still counts as successful.
        """
        if self.fault_plan is not None:
            factor = self.fault_plan.slowdown(service.service_id, time)
            if factor > 1.0:
                for name in self._time_metrics:
                    if name in observations:
                        observations[name] = observations[name] * factor
        if self.timeout is not None:
            for name in self.TIME_METRICS:
                if name in observations:
                    if self.timeout.exceeded(observations[name]):
                        self.timeout_count += 1
                        return {}, False
                    break
        return observations, True

    def _execute(
        self,
        invoker: EntityId,
        service: Service,
        time: float,
        segment: Optional[int],
    ) -> Interaction:
        """The one sampling path shared by every invocation flavour."""
        self.invocation_count += 1
        profile = service.profile_at(time)
        success = bool(self._rng.random() < profile.success_rate)
        observations: Dict[str, float] = (
            dict(profile.sample(self.taxonomy, self._rng, segment=segment))
            if success
            else {}
        )
        if success:
            observations, success = self._apply_faults(
                service, time, observations
            )
        return Interaction(
            consumer=invoker,
            service=service.service_id,
            provider=service.provider_id,
            time=time,
            success=success,
            observations=observations,
        )

    def invoke(
        self,
        consumer: Consumer,
        service: Service,
        time: float,
        segment: Optional[int] = None,
    ) -> Interaction:
        """Invoke *service* on behalf of *consumer* at simulation *time*.

        Args:
            segment: taste segment override; defaults to the consumer's
                own segment.
        """
        seg = consumer.segment if segment is None else segment
        return self._execute(consumer.consumer_id, service, time, seg)

    def invoke_anonymous(
        self, invoker_id: EntityId, service: Service, time: float
    ) -> Interaction:
        """Invocation by a non-consumer party (monitor, explorer agent).

        Monitors observe the *base-segment* truth: they can measure
        objective metrics but have no taste segment of their own.
        """
        return self._execute(invoker_id, service, time, None)
