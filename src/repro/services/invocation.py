"""Invocation engine: executing a service call and observing QoS.

The engine is the single place where ground truth turns into
observations: it samples the service's effective profile at the current
time (respecting :class:`~repro.services.provider.QualityBehavior`) for
the invoking consumer's taste segment, decides success/failure, and
emits an :class:`~repro.common.records.Interaction`.
"""

from __future__ import annotations

from typing import Optional

from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng
from repro.common.records import Interaction
from repro.services.consumer import Consumer
from repro.services.provider import Service
from repro.services.qos import QoSTaxonomy


class InvocationEngine:
    """Executes invocations against ground-truth service profiles."""

    def __init__(self, taxonomy: QoSTaxonomy, rng: RngLike = None) -> None:
        self.taxonomy = taxonomy
        self._rng = make_rng(rng)
        self.invocation_count = 0

    def invoke(
        self,
        consumer: Consumer,
        service: Service,
        time: float,
        segment: Optional[int] = None,
    ) -> Interaction:
        """Invoke *service* on behalf of *consumer* at simulation *time*.

        Args:
            segment: taste segment override; defaults to the consumer's
                own segment.
        """
        self.invocation_count += 1
        profile = service.profile_at(time)
        seg = consumer.segment if segment is None else segment
        success = bool(self._rng.random() < profile.success_rate)
        observations = (
            profile.sample(self.taxonomy, self._rng, segment=seg)
            if success
            else {}
        )
        return Interaction(
            consumer=consumer.consumer_id,
            service=service.service_id,
            provider=service.provider_id,
            time=time,
            success=success,
            observations=observations,
        )

    def invoke_anonymous(
        self, invoker_id: EntityId, service: Service, time: float
    ) -> Interaction:
        """Invocation by a non-consumer party (monitor, explorer agent).

        Monitors observe the *base-segment* truth: they can measure
        objective metrics but have no taste segment of their own.
        """
        self.invocation_count += 1
        profile = service.profile_at(time)
        success = bool(self._rng.random() < profile.success_rate)
        observations = (
            profile.sample(self.taxonomy, self._rng, segment=None)
            if success
            else {}
        )
        return Interaction(
            consumer=invoker_id,
            service=service.service_id,
            provider=service.provider_id,
            time=time,
            success=success,
            observations=observations,
        )
