"""Consumers: preference profiles and rating behaviour.

A :class:`Consumer` invokes services and turns the objective
:class:`~repro.common.records.Interaction` into a subjective
:class:`~repro.common.records.Feedback` through its
:class:`RatingStrategy`.  Honest consumers rate what they observed,
weighted by their :class:`PreferenceProfile`; dishonest strategies (in
:mod:`repro.robustness.attacks`) plug in the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import clamp, normalize_weights
from repro.common.randomness import RngLike, make_rng
from repro.common.records import Feedback, Interaction
from repro.services.qos import QoSTaxonomy


@dataclass(frozen=True)
class PreferenceProfile:
    """How much a consumer cares about each QoS metric.

    Attributes:
        weights: non-negative importance per metric name; normalized on
            construction so they sum to one.
        segment: the consumer's taste segment — consumers in the same
            segment genuinely experience subjective facets the same way.
    """

    weights: Mapping[str, float] = field(default_factory=dict)
    segment: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", normalize_weights(dict(self.weights)))

    def weight(self, metric: str) -> float:
        return self.weights.get(metric, 0.0)

    def overall(self, facet_scores: Mapping[str, float]) -> float:
        """Preference-weighted aggregate of per-facet scores.

        Metrics missing from *facet_scores* are skipped and the
        remaining weights are renormalized; an empty intersection yields
        the plain mean of *facet_scores* (or 0 when that is empty too).
        """
        common = {m: w for m, w in self.weights.items() if m in facet_scores}
        total = sum(common.values())
        if total <= 0:
            if not facet_scores:
                return 0.0
            return sum(facet_scores.values()) / len(facet_scores)
        return sum(facet_scores[m] * w for m, w in common.items()) / total

    @staticmethod
    def uniform(metrics: "list[str]", segment: int = 0) -> "PreferenceProfile":
        return PreferenceProfile({m: 1.0 for m in metrics}, segment=segment)


def quality_scores(
    interaction: Interaction, taxonomy: QoSTaxonomy
) -> Dict[str, float]:
    """Normalize an interaction's raw observations into quality space."""
    return {
        name: taxonomy.get(name).normalize(raw)
        for name, raw in interaction.observations.items()
        if name in taxonomy
    }


#: A rating strategy maps (consumer, interaction, honest per-facet scores)
#: to the facet ratings actually filed.  Honest consumers return them
#: unchanged; attack strategies distort them.
RatingStrategy = Callable[
    ["Consumer", Interaction, Dict[str, float]], Dict[str, float]
]


def honest_rating_strategy(
    consumer: "Consumer",
    interaction: Interaction,
    facet_scores: Dict[str, float],
) -> Dict[str, float]:
    """Report exactly what was experienced."""
    return facet_scores


class Consumer:
    """A service consumer agent.

    Args:
        consumer_id: unique id.
        preferences: the consumer's :class:`PreferenceProfile`.
        rating_strategy: how observed quality becomes filed ratings
            (honest by default; see :mod:`repro.robustness.attacks`).
        rating_noise: std-dev of subjective noise added to each honest
            facet score before the strategy sees it — even honest humans
            don't rate with perfect precision.
        rng: randomness source for the rating noise.
    """

    def __init__(
        self,
        consumer_id: EntityId,
        preferences: Optional[PreferenceProfile] = None,
        rating_strategy: RatingStrategy = honest_rating_strategy,
        rating_noise: float = 0.02,
        rng: RngLike = None,
    ) -> None:
        if rating_noise < 0:
            raise ConfigurationError("rating_noise must be non-negative")
        self.consumer_id = consumer_id
        self.preferences = preferences or PreferenceProfile()
        self.rating_strategy = rating_strategy
        self.rating_noise = rating_noise
        self._rng = make_rng(rng)

    @property
    def segment(self) -> int:
        return self.preferences.segment

    def rate(self, interaction: Interaction, taxonomy: QoSTaxonomy) -> Feedback:
        """Turn an interaction into the feedback this consumer files.

        A failed invocation is rated 0 overall with no facet detail —
        there is nothing to differentiate when the call never returned.
        """
        if not interaction.success:
            honest: Dict[str, float] = {}
            filed = self.rating_strategy(self, interaction, honest)
            overall = self.preferences.overall(filed) if filed else 0.0
            return Feedback(
                rater=self.consumer_id,
                target=interaction.service,
                time=interaction.time,
                rating=clamp(overall, 0.0, 1.0),
                facet_ratings=filed,
                interaction=interaction,
            )
        honest = quality_scores(interaction, taxonomy)
        if self.rating_noise > 0:
            honest = {
                m: clamp(s + float(self._rng.normal(0.0, self.rating_noise)), 0.0, 1.0)
                for m, s in honest.items()
            }
        filed = self.rating_strategy(self, interaction, dict(honest))
        filed = {m: clamp(v, 0.0, 1.0) for m, v in filed.items()}
        overall = self.preferences.overall(filed)
        return Feedback(
            rater=self.consumer_id,
            target=interaction.service,
            time=interaction.time,
            rating=clamp(overall, 0.0, 1.0),
            facet_ratings=filed,
            interaction=interaction,
        )

    def rate_provider(self, feedback: Feedback, provider: EntityId) -> Feedback:
        """Re-target a service feedback at the service's provider.

        Provider-level reputation (research direction 2 in the paper)
        aggregates the same experiences under the provider's id.
        """
        return Feedback(
            rater=feedback.rater,
            target=provider,
            time=feedback.time,
            rating=feedback.rating,
            facet_ratings=dict(feedback.facet_ratings),
            interaction=feedback.interaction,
        )
