"""QoS metric ontology — the paper's Figure 3 (W3C QoS taxonomy).

The taxonomy groups quality-of-service metrics for web services into
categories (Performance, Dependability, Integrity, Security, ...).  Each
leaf is a :class:`MetricDef` carrying everything a reputation mechanism
needs to score it:

* a *direction* — whether larger raw values are better (throughput) or
  worse (response time),
* a *natural range* used to normalize raw measurements onto ``[0, 1]``
  quality space (the normalization matrix of Liu, Ngu & Zeng), and
* whether the metric is *observable* by execution monitoring (response
  time) or only *rateable* subjectively by the consumer (accuracy) — the
  distinction Section 2 of the paper draws when arguing that consumer
  feedback captures information no central monitor can.

A provider's true quality is a :class:`QoSProfile`: per-metric quality
levels in ``[0, 1]`` plus noise, optionally with per-consumer-segment
offsets for subjective metrics (the hook that makes personalization
experiments meaningful).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.common.mathutils import clamp
from repro.common.randomness import RngLike, make_rng


class Direction(enum.Enum):
    """Whether larger raw values mean better quality."""

    HIGHER_IS_BETTER = "higher"
    LOWER_IS_BETTER = "lower"


@dataclass(frozen=True)
class MetricDef:
    """Definition of one QoS metric (a leaf of the Figure 3 taxonomy).

    Attributes:
        name: canonical snake_case metric name.
        category: dotted category path, e.g. ``"performance"`` or
            ``"dependability"``.
        direction: whether higher raw values are better.
        low / high: the natural range of raw measurements; used for
            min-max normalization onto quality space.
        unit: human-readable unit for reports.
        observable: True when execution monitoring can measure it; False
            for metrics only a human/consumer rating can capture.
    """

    name: str
    category: str
    direction: Direction
    low: float
    high: float
    unit: str = ""
    observable: bool = True

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ConfigurationError(
                f"metric {self.name!r}: low ({self.low}) must be < high ({self.high})"
            )

    def normalize(self, raw: float) -> float:
        """Map a raw measurement to quality in ``[0, 1]`` (1 = best)."""
        frac = clamp((raw - self.low) / (self.high - self.low), 0.0, 1.0)
        if self.direction is Direction.LOWER_IS_BETTER:
            return 1.0 - frac
        return frac

    def denormalize(self, quality: float) -> float:
        """Map a quality level in ``[0, 1]`` back to a raw measurement."""
        quality = clamp(quality, 0.0, 1.0)
        if self.direction is Direction.LOWER_IS_BETTER:
            quality = 1.0 - quality
        return self.low + quality * (self.high - self.low)


def metric(
    name: str,
    category: str,
    direction: Direction = Direction.HIGHER_IS_BETTER,
    low: float = 0.0,
    high: float = 1.0,
    unit: str = "",
    observable: bool = True,
) -> MetricDef:
    """Convenience constructor mirroring :class:`MetricDef`."""
    return MetricDef(name, category, direction, low, high, unit, observable)


@dataclass
class QoSCategory:
    """An internal node of the taxonomy tree."""

    name: str
    children: List["QoSCategory"] = field(default_factory=list)
    metrics: List[MetricDef] = field(default_factory=list)

    def walk(self) -> Iterator[Tuple[str, MetricDef]]:
        """Yield ``(category_path, metric)`` pairs depth-first."""
        for m in self.metrics:
            yield self.name, m
        for child in self.children:
            for path, m in child.walk():
                yield f"{self.name}.{path}", m


class QoSTaxonomy:
    """A tree of QoS categories with metric leaves.

    Provides name-based lookup and normalization over all registered
    metrics; Figure 3 is reproduced by :func:`w3c_taxonomy`.
    """

    def __init__(self, root: QoSCategory) -> None:
        self.root = root
        self._by_name: Dict[str, MetricDef] = {}
        for _, m in root.walk():
            if m.name in self._by_name:
                raise ConfigurationError(f"duplicate metric name: {m.name!r}")
            self._by_name[m.name] = m

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[MetricDef]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def get(self, name: str) -> MetricDef:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownEntityError(f"unknown QoS metric: {name!r}") from None

    def names(self) -> List[str]:
        return list(self._by_name)

    def observable_metrics(self) -> List[MetricDef]:
        return [m for m in self if m.observable]

    def subjective_metrics(self) -> List[MetricDef]:
        return [m for m in self if not m.observable]

    def categories(self) -> List[str]:
        """Distinct top-level category names, in tree order."""
        seen: List[str] = []
        for child in self.root.children:
            seen.append(child.name)
        return seen

    def tree_lines(self) -> List[str]:
        """Render the taxonomy as indented text (the Figure 3 shape)."""

        lines: List[str] = []

        def render(node: QoSCategory, depth: int) -> None:
            lines.append("  " * depth + node.name)
            for m in node.metrics:
                lines.append("  " * (depth + 1) + f"- {m.name}")
            for child in node.children:
                render(child, depth + 1)

        render(self.root, 0)
        return lines


def w3c_taxonomy() -> QoSTaxonomy:
    """The full Figure 3 taxonomy (W3C "QoS for Web Services" note).

    Raw ranges are chosen to be realistic for a laptop-scale simulation;
    they only matter relative to one another (normalization is min-max).
    """
    hi = Direction.HIGHER_IS_BETTER
    lo = Direction.LOWER_IS_BETTER
    performance = QoSCategory(
        "performance",
        metrics=[
            metric("processing_time", "performance", lo, 0.001, 5.0, "s"),
            metric("throughput", "performance", hi, 1.0, 200.0, "req/s"),
            metric("response_time", "performance", lo, 0.01, 5.0, "s"),
            metric("latency", "performance", lo, 0.001, 1.0, "s"),
        ],
    )
    dependability = QoSCategory(
        "dependability",
        metrics=[
            metric("availability", "dependability", hi, 0.0, 1.0, "prob"),
            metric("accessibility", "dependability", hi, 0.0, 1.0, "prob"),
            metric("accuracy", "dependability", hi, 0.0, 1.0, "score",
                   observable=False),
            metric("reliability", "dependability", hi, 0.0, 1.0, "prob"),
            metric("capacity", "dependability", hi, 1.0, 1000.0, "sessions"),
            metric("scalability", "dependability", hi, 0.0, 1.0, "score",
                   observable=False),
            metric("stability", "dependability", hi, 0.0, 1.0, "score"),
            metric("robustness", "dependability", hi, 0.0, 1.0, "score",
                   observable=False),
        ],
    )
    integrity = QoSCategory(
        "integrity",
        metrics=[
            metric("data_integrity", "integrity", hi, 0.0, 1.0, "score"),
            metric("transactional_integrity", "integrity", hi, 0.0, 1.0,
                   "score"),
            metric("interoperability", "integrity", hi, 0.0, 1.0, "score",
                   observable=False),
        ],
    )
    security = QoSCategory(
        "security",
        metrics=[
            metric("accountability", "security", hi, 0.0, 1.0, "score",
                   observable=False),
            metric("authentication", "security", hi, 0.0, 1.0, "score"),
            metric("authorization", "security", hi, 0.0, 1.0, "score"),
            metric("auditability", "security", hi, 0.0, 1.0, "score",
                   observable=False),
            metric("non_repudiation", "security", hi, 0.0, 1.0, "score"),
            metric("confidentiality", "security", hi, 0.0, 1.0, "score",
                   observable=False),
            metric("encryption", "security", hi, 0.0, 1.0, "score"),
        ],
    )
    application = QoSCategory(
        "application_specific",
        metrics=[
            metric("cost", "application_specific", lo, 0.0, 10.0, "$"),
        ],
    )
    root = QoSCategory(
        "qos",
        children=[performance, dependability, integrity, security, application],
    )
    return QoSTaxonomy(root)


def default_metrics() -> QoSTaxonomy:
    """The compact working set used by most experiments.

    Six metrics spanning observable performance, dependability, the
    subjective ``accuracy`` facet, and cost — enough to exercise
    multi-faceted trust without dragging all 23 Figure 3 leaves through
    every benchmark.
    """
    hi = Direction.HIGHER_IS_BETTER
    lo = Direction.LOWER_IS_BETTER
    root = QoSCategory(
        "qos",
        children=[
            QoSCategory(
                "performance",
                metrics=[
                    metric("response_time", "performance", lo, 0.01, 2.0, "s"),
                    metric("throughput", "performance", hi, 1.0, 100.0,
                           "req/s"),
                ],
            ),
            QoSCategory(
                "dependability",
                metrics=[
                    metric("availability", "dependability", hi, 0.0, 1.0,
                           "prob"),
                    metric("reliability", "dependability", hi, 0.0, 1.0,
                           "prob"),
                    metric("accuracy", "dependability", hi, 0.0, 1.0, "score",
                           observable=False),
                ],
            ),
            QoSCategory(
                "application_specific",
                metrics=[
                    metric("cost", "application_specific", lo, 0.0, 10.0, "$"),
                ],
            ),
        ],
    )
    return QoSTaxonomy(root)


#: Module-level shared instance of the compact metric set.
DEFAULT_METRICS = default_metrics()


@dataclass
class QoSProfile:
    """A service's *true* quality, in quality space.

    Attributes:
        quality: per-metric true quality level in ``[0, 1]``.
        noise: per-observation Gaussian noise (std dev) in quality space.
        segment_offsets: for subjective metrics, per-consumer-segment
            additive offsets ``{metric: {segment: offset}}`` — two
            consumers in different segments genuinely experience
            different quality, which is what makes personalized
            mechanisms outperform global ones.
        success_rate: probability an invocation succeeds at all.
    """

    quality: Dict[str, float]
    noise: float = 0.05
    segment_offsets: Dict[str, Dict[int, float]] = field(default_factory=dict)
    success_rate: float = 0.98

    def __post_init__(self) -> None:
        for name, q in self.quality.items():
            if not 0.0 <= q <= 1.0:
                raise ConfigurationError(
                    f"quality for {name!r} must be in [0, 1], got {q}"
                )
        if self.noise < 0:
            raise ConfigurationError("noise must be non-negative")
        if not 0.0 <= self.success_rate <= 1.0:
            raise ConfigurationError("success_rate must be in [0, 1]")

    def metrics(self) -> List[str]:
        return list(self.quality)

    def true_quality(self, name: str, segment: Optional[int] = None) -> float:
        """True quality of metric *name* for a consumer in *segment*."""
        base = self.quality[name]
        if segment is not None:
            offset = self.segment_offsets.get(name, {}).get(segment, 0.0)
            base = clamp(base + offset, 0.0, 1.0)
        return base

    def overall(
        self,
        weights: Optional[Mapping[str, float]] = None,
        segment: Optional[int] = None,
    ) -> float:
        """Preference-weighted true quality (uniform weights by default)."""
        names = self.metrics()
        if not names:
            return 0.0
        if weights is None:
            return sum(self.true_quality(n, segment) for n in names) / len(names)
        total = sum(max(weights.get(n, 0.0), 0.0) for n in names)
        if total <= 0:
            return self.overall(None, segment)
        return (
            sum(
                self.true_quality(n, segment) * max(weights.get(n, 0.0), 0.0)
                for n in names
            )
            / total
        )

    def sample(
        self,
        taxonomy: QoSTaxonomy,
        rng: RngLike = None,
        segment: Optional[int] = None,
    ) -> Dict[str, float]:
        """Draw one invocation's raw observations for every metric."""
        gen = make_rng(rng)
        observations: Dict[str, float] = {}
        for name in self.quality:
            q = self.true_quality(name, segment)
            noisy = clamp(q + float(gen.normal(0.0, self.noise)), 0.0, 1.0)
            observations[name] = taxonomy.get(name).denormalize(noisy)
        return observations

    def shifted(self, delta: float) -> "QoSProfile":
        """Copy with every metric's quality shifted by *delta* (clamped)."""
        return QoSProfile(
            quality={n: clamp(q + delta, 0.0, 1.0) for n, q in self.quality.items()},
            noise=self.noise,
            segment_offsets={
                m: dict(offs) for m, offs in self.segment_offsets.items()
            },
            success_rate=self.success_rate,
        )


def random_profile(
    taxonomy: QoSTaxonomy,
    rng: RngLike = None,
    mean_quality: Optional[float] = None,
    spread: float = 0.15,
    noise: float = 0.05,
    n_segments: int = 0,
    segment_spread: float = 0.2,
) -> QoSProfile:
    """Draw a random :class:`QoSProfile` over *taxonomy*'s metrics.

    Args:
        mean_quality: centre of the per-metric quality draw (uniform in
            ``[0.2, 0.9]`` when omitted).
        spread: per-metric deviation around the centre.
        n_segments: when positive, subjective metrics receive random
            per-segment offsets in ``[-segment_spread, +segment_spread]``.
    """
    gen = make_rng(rng)
    centre = (
        float(gen.uniform(0.2, 0.9)) if mean_quality is None else mean_quality
    )
    quality = {
        m.name: clamp(centre + float(gen.uniform(-spread, spread)), 0.0, 1.0)
        for m in taxonomy
    }
    segment_offsets: Dict[str, Dict[int, float]] = {}
    if n_segments > 0:
        for m in taxonomy.subjective_metrics():
            segment_offsets[m.name] = {
                s: float(gen.uniform(-segment_spread, segment_spread))
                for s in range(n_segments)
            }
    success = clamp(0.9 + centre * 0.1, 0.0, 1.0)
    return QoSProfile(
        quality=quality,
        noise=noise,
        segment_offsets=segment_offsets,
        success_rate=success,
    )
