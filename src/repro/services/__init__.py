"""The simulated web-service world.

This package is the substrate the paper assumes: services described by
functional category and QoS, providers that publish (and sometimes
exaggerate) advertisements, consumers that invoke services and file
feedback, SLAs with third-party supervision, monitoring sensors and
explorer agents, and the "general service" indirection of the paper's
mediated-selection scenario (Figure 1B).
"""

from repro.services.qos import (
    DEFAULT_METRICS,
    Direction,
    MetricDef,
    QoSCategory,
    QoSProfile,
    QoSTaxonomy,
    default_metrics,
    metric,
    random_profile,
    w3c_taxonomy,
)
from repro.services.description import QoSAdvertisement, ServiceDescription
from repro.services.provider import (
    DegradingBehavior,
    ExaggerationPolicy,
    ImprovingBehavior,
    OscillatingBehavior,
    Provider,
    QualityBehavior,
    Service,
    StaticBehavior,
)
from repro.services.consumer import (
    Consumer,
    PreferenceProfile,
    RatingStrategy,
    honest_rating_strategy,
)
from repro.services.invocation import InvocationEngine
from repro.services.ontology import MetricAlias, MetricVocabulary
from repro.services.sla import SLA, SLAMonitor, SLAViolation, negotiate_sla
from repro.services.monitoring import (
    ExplorerAgentPool,
    MonitoringReport,
    SensorDeployment,
    ThirdPartyMonitor,
)
from repro.services.general import (
    GeneralService,
    IntermediaryService,
    MediatedOutcome,
)

__all__ = [
    "Consumer",
    "DEFAULT_METRICS",
    "DegradingBehavior",
    "Direction",
    "ExaggerationPolicy",
    "ExplorerAgentPool",
    "GeneralService",
    "ImprovingBehavior",
    "IntermediaryService",
    "InvocationEngine",
    "MediatedOutcome",
    "MetricAlias",
    "MetricDef",
    "MetricVocabulary",
    "MonitoringReport",
    "OscillatingBehavior",
    "PreferenceProfile",
    "Provider",
    "QoSAdvertisement",
    "QoSCategory",
    "QoSProfile",
    "QoSTaxonomy",
    "QualityBehavior",
    "RatingStrategy",
    "SLA",
    "SLAMonitor",
    "SLAViolation",
    "SensorDeployment",
    "Service",
    "ServiceDescription",
    "StaticBehavior",
    "ThirdPartyMonitor",
    "default_metrics",
    "honest_rating_strategy",
    "metric",
    "negotiate_sla",
    "random_profile",
    "w3c_taxonomy",
]
