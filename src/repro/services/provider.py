"""Providers, services, and provider behaviour over time.

A :class:`Provider` owns one or more :class:`Service` objects.  Each
service has a true :class:`~repro.services.qos.QoSProfile` and a
:class:`QualityBehavior` describing how that truth evolves with
simulation time — static, improving, degrading, or oscillating (the
milking strategy the explorer-agent experiment needs).  Separately, an
:class:`ExaggerationPolicy` controls how the provider's *advertised* QoS
relates to the truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import clamp
from repro.services.description import QoSAdvertisement, ServiceDescription
from repro.services.qos import QoSProfile


class QualityBehavior:
    """How a service's true quality evolves with time.

    Subclasses override :meth:`profile_at`; the base class is static.
    """

    def profile_at(self, base: QoSProfile, time: float) -> QoSProfile:
        """Effective profile at simulation *time* (default: unchanged)."""
        return base


class StaticBehavior(QualityBehavior):
    """Quality never changes (the default)."""


class ImprovingBehavior(QualityBehavior):
    """Quality ramps up linearly from a deficit to the base profile.

    Models the paper's "service quality has been improved" case: the
    service starts ``initial_deficit`` below its base quality and
    recovers it over ``ramp_duration`` time units (starting at
    ``start_time``).
    """

    def __init__(
        self,
        initial_deficit: float = 0.4,
        ramp_duration: float = 100.0,
        start_time: float = 0.0,
    ) -> None:
        if initial_deficit < 0:
            raise ConfigurationError("initial_deficit must be non-negative")
        if ramp_duration <= 0:
            raise ConfigurationError("ramp_duration must be positive")
        self.initial_deficit = initial_deficit
        self.ramp_duration = ramp_duration
        self.start_time = start_time

    def profile_at(self, base: QoSProfile, time: float) -> QoSProfile:
        progress = clamp((time - self.start_time) / self.ramp_duration, 0.0, 1.0)
        deficit = self.initial_deficit * (1.0 - progress)
        return base.shifted(-deficit)


class DegradingBehavior(QualityBehavior):
    """Quality drops by ``drop`` at ``onset`` time (a regime change).

    Used by the decay-policy experiment: a good service suddenly turning
    bad is exactly where "new experiences matter more than old" bites.
    """

    def __init__(self, drop: float = 0.4, onset: float = 50.0) -> None:
        if drop < 0:
            raise ConfigurationError("drop must be non-negative")
        self.drop = drop
        self.onset = onset

    def profile_at(self, base: QoSProfile, time: float) -> QoSProfile:
        if time < self.onset:
            return base
        return base.shifted(-self.drop)


class OscillatingBehavior(QualityBehavior):
    """Quality alternates between good and bad phases (milking attack).

    The service behaves at base quality for ``good_duration``, then
    ``bad_duration`` at ``base - drop``, repeating.
    """

    def __init__(
        self,
        drop: float = 0.4,
        good_duration: float = 50.0,
        bad_duration: float = 50.0,
    ) -> None:
        if drop < 0:
            raise ConfigurationError("drop must be non-negative")
        if good_duration <= 0 or bad_duration <= 0:
            raise ConfigurationError("phase durations must be positive")
        self.drop = drop
        self.good_duration = good_duration
        self.bad_duration = bad_duration

    def profile_at(self, base: QoSProfile, time: float) -> QoSProfile:
        period = self.good_duration + self.bad_duration
        phase = time % period
        if phase < self.good_duration:
            return base
        return base.shifted(-self.drop)


@dataclass
class ExaggerationPolicy:
    """How a provider's advertised QoS relates to the truth.

    ``inflation`` is added to every true quality level (clamped to 1);
    honest providers use 0.  The paper: "a provider may also exaggerate
    its capability of providing good QoS on purpose to attract
    consumers".
    """

    inflation: float = 0.0

    def advertise(self, service: EntityId, truth: Mapping[str, float]) -> QoSAdvertisement:
        claimed = {
            name: clamp(q + self.inflation, 0.0, 1.0) for name, q in truth.items()
        }
        return QoSAdvertisement(service=service, claimed=claimed)


@dataclass
class Service:
    """One concrete web service: description + true quality + behaviour."""

    description: ServiceDescription
    profile: QoSProfile
    behavior: QualityBehavior = field(default_factory=StaticBehavior)
    birth_time: float = 0.0

    @property
    def service_id(self) -> EntityId:
        return self.description.service

    @property
    def provider_id(self) -> EntityId:
        return self.description.provider

    @property
    def category(self) -> str:
        return self.description.category

    def profile_at(self, time: float) -> QoSProfile:
        """True quality profile in effect at simulation *time*."""
        return self.behavior.profile_at(self.profile, time)

    def true_overall(
        self,
        time: float,
        weights: Optional[Mapping[str, float]] = None,
        segment: Optional[int] = None,
    ) -> float:
        """Ground-truth preference-weighted quality at *time*."""
        return self.profile_at(time).overall(weights, segment)


class Provider:
    """A service provider owning one or more services.

    Provider-level quality tendency matters for the cold-start
    experiment: a provider's *new* services inherit its tendency, so
    provider reputation is informative about them.
    """

    def __init__(
        self,
        provider_id: EntityId,
        exaggeration: Optional[ExaggerationPolicy] = None,
        quality_tendency: float = 0.5,
    ) -> None:
        if not 0.0 <= quality_tendency <= 1.0:
            raise ConfigurationError("quality_tendency must be in [0, 1]")
        self.provider_id = provider_id
        self.exaggeration = exaggeration or ExaggerationPolicy()
        self.quality_tendency = quality_tendency
        self._services: Dict[EntityId, Service] = {}

    def add_service(self, service: Service) -> None:
        if service.provider_id != self.provider_id:
            raise ConfigurationError(
                f"service {service.service_id} belongs to provider "
                f"{service.provider_id}, not {self.provider_id}"
            )
        if service.service_id in self._services:
            raise ConfigurationError(
                f"duplicate service id: {service.service_id}"
            )
        self._services[service.service_id] = service

    def remove_service(self, service_id: EntityId) -> None:
        self._services.pop(service_id, None)

    @property
    def services(self) -> List[Service]:
        return list(self._services.values())

    def service(self, service_id: EntityId) -> Service:
        return self._services[service_id]

    def advertisement_for(self, service_id: EntityId, time: float = 0.0) -> QoSAdvertisement:
        """The QoS claims this provider publishes for one service.

        Claims are derived from the *base* profile (providers advertise
        their intended quality, not the current phase of an oscillation).
        """
        svc = self._services[service_id]
        return self.exaggeration.advertise(service_id, svc.profile.quality)
