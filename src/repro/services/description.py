"""Service descriptions and QoS advertisements.

A :class:`ServiceDescription` is the WSDL-analogue: the functional
category a consumer searches on plus interface metadata.  A
:class:`QoSAdvertisement` is the provider's *claimed* quality — which,
as the paper stresses, "is not an agreement or obligation" and may be
exaggerated on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.common.ids import EntityId


@dataclass(frozen=True)
class ServiceDescription:
    """Functional description of a service (the WSDL analogue).

    Attributes:
        service: the service's id.
        provider: the owning provider's id.
        category: functional category, e.g. ``"weather_report"`` —
            consumers discover services by category.
        operations: named operations the service exposes (purely
            descriptive; the simulation invokes the service as a whole).
        version: providers may republish with a bumped version.
    """

    service: EntityId
    provider: EntityId
    category: str
    operations: Tuple[str, ...] = ("invoke",)
    version: int = 1

    def matches(self, category: str) -> bool:
        """True when this service offers the requested *category*."""
        return self.category == category


@dataclass(frozen=True)
class QoSAdvertisement:
    """A provider's published QoS claims, in quality space ``[0, 1]``.

    ``claimed`` maps metric names to the quality level the provider
    *says* it delivers.  Nothing enforces honesty; compare against the
    service's true :class:`~repro.services.qos.QoSProfile` to measure
    exaggeration.
    """

    service: EntityId
    claimed: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, value in self.claimed.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"claimed quality {name!r} must be in [0, 1], got {value}"
                )

    def claim(self, metric: str, default: float = 0.5) -> float:
        return self.claimed.get(metric, default)

    def exaggeration(self, true_quality: Mapping[str, float]) -> float:
        """Mean signed gap between claims and truth (positive = inflated)."""
        common = [m for m in self.claimed if m in true_quality]
        if not common:
            return 0.0
        return sum(self.claimed[m] - true_quality[m] for m in common) / len(common)


def advertisement_table(
    ads: "list[QoSAdvertisement]",
) -> Dict[EntityId, Dict[str, float]]:
    """Pivot advertisements into ``{service: {metric: claim}}``."""
    return {ad.service: dict(ad.claimed) for ad in ads}
