"""Service Level Agreements and third-party supervision.

The paper's Figure 2 path "SLA → third-party monitoring → penalty":
a consumer negotiates per-metric quality floors with a provider (at a
cost), a third party checks delivered quality against the agreement,
and violations carry penalties.  The activities benchmark (F2) uses
this to price the SLA approach against feedback-based selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Interaction
from repro.services.qos import QoSTaxonomy


@dataclass(frozen=True)
class SLA:
    """An agreed contract between one consumer and one service.

    Attributes:
        consumer / service: the contracting parties.
        floors: minimum acceptable quality per metric, in quality space
            ``[0, 1]``.  Delivered quality below a floor is a violation.
        penalty: amount the provider pays per violating invocation.
        negotiation_cost: one-off cost (time/expenses) paid by both
            sides to establish the agreement — the paper's "making a SLA
            comes with a cost".
    """

    consumer: EntityId
    service: EntityId
    floors: Mapping[str, float] = field(default_factory=dict)
    penalty: float = 1.0
    negotiation_cost: float = 1.0

    def __post_init__(self) -> None:
        for name, floor in self.floors.items():
            if not 0.0 <= floor <= 1.0:
                raise ConfigurationError(
                    f"SLA floor for {name!r} must be in [0, 1], got {floor}"
                )
        if self.penalty < 0 or self.negotiation_cost < 0:
            raise ConfigurationError("penalty and negotiation_cost must be >= 0")


@dataclass(frozen=True)
class SLAViolation:
    """One detected breach of an SLA floor."""

    sla: SLA
    metric: str
    delivered: float
    floor: float
    time: float

    @property
    def shortfall(self) -> float:
        return self.floor - self.delivered


def negotiate_sla(
    consumer: EntityId,
    service: EntityId,
    advertised: Mapping[str, float],
    slack: float = 0.1,
    penalty: float = 1.0,
    negotiation_cost: float = 1.0,
) -> SLA:
    """Negotiate floors at ``advertised - slack`` for every claimed metric.

    The consumer cannot demand more than the provider claims; *slack*
    models the concession the provider extracts during negotiation.
    """
    if slack < 0:
        raise ConfigurationError("slack must be non-negative")
    floors = {m: max(0.0, q - slack) for m, q in advertised.items()}
    return SLA(
        consumer=consumer,
        service=service,
        floors=floors,
        penalty=penalty,
        negotiation_cost=negotiation_cost,
    )


class SLAMonitor:
    """Third party supervising SLAs and tallying penalties.

    Register agreements, then feed every invocation through
    :meth:`check`.  The monitor normalizes raw observations with the
    taxonomy, compares against floors, and records violations.
    """

    def __init__(self, taxonomy: QoSTaxonomy) -> None:
        self.taxonomy = taxonomy
        self._slas: Dict[Tuple[EntityId, EntityId], SLA] = {}
        self.violations: List[SLAViolation] = []
        self.checks = 0

    def register(self, sla: SLA) -> None:
        self._slas[(sla.consumer, sla.service)] = sla

    def agreement(
        self, consumer: EntityId, service: EntityId
    ) -> Optional[SLA]:
        return self._slas.get((consumer, service))

    @property
    def total_negotiation_cost(self) -> float:
        return sum(s.negotiation_cost for s in self._slas.values())

    def check(self, interaction: Interaction) -> List[SLAViolation]:
        """Check one invocation against its SLA (if any); record breaches.

        A failed invocation violates *every* floor in the agreement.
        """
        sla = self._slas.get((interaction.consumer, interaction.service))
        if sla is None:
            return []
        self.checks += 1
        found: List[SLAViolation] = []
        for name, floor in sla.floors.items():
            if not interaction.success:
                delivered = 0.0
            elif name in interaction.observations and name in self.taxonomy:
                delivered = self.taxonomy.get(name).normalize(
                    interaction.observations[name]
                )
            else:
                continue
            if delivered < floor:
                found.append(
                    SLAViolation(
                        sla=sla,
                        metric=name,
                        delivered=delivered,
                        floor=floor,
                        time=interaction.time,
                    )
                )
        self.violations.extend(found)
        return found

    def penalties_owed(self) -> Dict[EntityId, float]:
        """Total penalty per service, from violations recorded so far."""
        owed: Dict[EntityId, float] = {}
        for v in self.violations:
            owed[v.sla.service] = owed.get(v.sla.service, 0.0) + v.sla.penalty
        return owed

    def violation_rate(self, service: EntityId) -> float:
        """Fraction of checks on *service* that produced >= 1 violation.

        Approximated as violations/checks over all services when the
        per-service check count is not tracked; kept simple because the
        experiments only compare services monitored equally often.
        """
        if self.checks == 0:
            return 0.0
        count = sum(1 for v in self.violations if v.sla.service == service)
        return count / self.checks
