"""General services and intermediaries — the Figure 1B mediated scenario.

In the paper's scenario B a consumer uses a web service (e.g. a flight
*booking* site) to obtain a *general service* (the flight itself).  The
selection of the web service is "mainly decided by the general service
properties"; the intermediary's own QoS "only plays a small part".

We model that literally: an :class:`IntermediaryService` fronts a set of
:class:`GeneralService` offerings, and the consumer-perceived outcome of
a mediated invocation blends the general service's domain quality
(dominant) with the intermediary web service's QoS (minor), controlled
by ``intermediary_weight``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.common.ids import EntityId
from repro.common.mathutils import clamp, safe_mean
from repro.common.randomness import RngLike, make_rng
from repro.common.records import Interaction
from repro.services.consumer import Consumer, quality_scores
from repro.services.invocation import InvocationEngine
from repro.services.provider import Service


@dataclass
class GeneralService:
    """A real-world service reachable through intermediaries.

    Domain quality lives in its own facet space (e.g. ``comfort``,
    ``punctuality`` for a flight) — deliberately *not* the web-service
    QoS taxonomy, because "each domain has its own related QoS metrics".
    """

    general_id: EntityId
    domain: str
    quality: Dict[str, float] = field(default_factory=dict)
    noise: float = 0.05
    segment_offsets: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, q in self.quality.items():
            if not 0.0 <= q <= 1.0:
                raise ConfigurationError(
                    f"general quality {name!r} must be in [0, 1], got {q}"
                )
        if self.noise < 0:
            raise ConfigurationError("noise must be non-negative")

    def true_quality(self, facet: str, segment: Optional[int] = None) -> float:
        base = self.quality[facet]
        if segment is not None:
            base += self.segment_offsets.get(facet, {}).get(segment, 0.0)
        return clamp(base, 0.0, 1.0)

    def overall(self, segment: Optional[int] = None) -> float:
        if not self.quality:
            return 0.0
        return safe_mean(
            self.true_quality(f, segment) for f in self.quality
        )

    def experience(
        self, rng: RngLike = None, segment: Optional[int] = None
    ) -> Dict[str, float]:
        """One consumption's per-facet experienced quality."""
        gen = make_rng(rng)
        return {
            facet: clamp(
                self.true_quality(facet, segment)
                + float(gen.normal(0.0, self.noise)),
                0.0,
                1.0,
            )
            for facet in self.quality
        }


@dataclass(frozen=True)
class MediatedOutcome:
    """Everything a consumer perceives from one mediated invocation."""

    interaction: Interaction
    general: EntityId
    general_facets: Mapping[str, float]
    intermediary_facets: Mapping[str, float]
    perceived_quality: float


class IntermediaryService:
    """A web service that brokers access to general services.

    Args:
        service: the intermediary's own web service (with web-service QoS).
        catalog: the general services this intermediary can book.
        intermediary_weight: share of the perceived outcome attributable
            to the intermediary's own QoS (the paper says it is small;
            default 0.2).
    """

    def __init__(
        self,
        service: Service,
        catalog: "list[GeneralService]",
        intermediary_weight: float = 0.2,
        rng: RngLike = None,
    ) -> None:
        if not 0.0 <= intermediary_weight <= 1.0:
            raise ConfigurationError("intermediary_weight must be in [0, 1]")
        if not catalog:
            raise ConfigurationError("intermediary needs a non-empty catalog")
        self.service = service
        self.intermediary_weight = intermediary_weight
        self._catalog: Dict[EntityId, GeneralService] = {
            g.general_id: g for g in catalog
        }
        self._rng = make_rng(rng)

    @property
    def service_id(self) -> EntityId:
        return self.service.service_id

    @property
    def catalog(self) -> List[GeneralService]:
        return list(self._catalog.values())

    def general(self, general_id: EntityId) -> GeneralService:
        try:
            return self._catalog[general_id]
        except KeyError:
            raise UnknownEntityError(
                f"intermediary {self.service_id} has no general service "
                f"{general_id!r}"
            ) from None

    def best_general(self, segment: Optional[int] = None) -> GeneralService:
        """The catalog entry with highest true overall quality."""
        return max(self._catalog.values(), key=lambda g: g.overall(segment))

    def book(
        self,
        consumer: Consumer,
        general_id: EntityId,
        engine: InvocationEngine,
        time: float,
    ) -> MediatedOutcome:
        """Consume *general_id* through this intermediary.

        The intermediary's web-service QoS is observed (its own
        invocation), the general service is experienced, and the
        perceived quality blends the two.  A failed web-service call
        means the booking never happened: perceived quality 0.
        """
        general = self.general(general_id)
        interaction = engine.invoke(consumer, self.service, time)
        intermediary_facets = quality_scores(interaction, engine.taxonomy)
        if not interaction.success:
            return MediatedOutcome(
                interaction=interaction,
                general=general_id,
                general_facets={},
                intermediary_facets={},
                perceived_quality=0.0,
            )
        general_facets = general.experience(self._rng, consumer.segment)
        w = self.intermediary_weight
        intermediary_part = consumer.preferences.overall(intermediary_facets)
        general_part = safe_mean(general_facets.values(), default=0.5)
        perceived = clamp(
            w * intermediary_part + (1.0 - w) * general_part, 0.0, 1.0
        )
        return MediatedOutcome(
            interaction=interaction,
            general=general_id,
            general_facets=general_facets,
            intermediary_facets=intermediary_facets,
            perceived_quality=perceived,
        )
