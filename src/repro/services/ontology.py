"""Metric vocabulary alignment — the §2 "common ontology" prerequisite.

"This method [SLA] relies on the establishing of a common ontology so
that providers and consumers have the same understanding of various QoS
metrics."  In practice parties name the same metric differently
(``response_time`` vs ``responseTime`` vs ``rt``) or measure it in
different units (seconds vs milliseconds).  :class:`MetricVocabulary`
is the alignment layer: it maps a party's local metric names (and
units) onto the canonical taxonomy so SLAs, claims, and observations
actually talk about the same quantities.

Without alignment, an SLA floor on ``responseTime`` never matches an
observation of ``response_time`` — the violation silently goes
undetected, which is precisely the failure mode the paper's caveat is
about (demonstrated in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.services.qos import QoSTaxonomy


@dataclass(frozen=True)
class MetricAlias:
    """One party-local metric name mapped onto the canonical taxonomy.

    Attributes:
        canonical: the taxonomy metric this alias denotes.
        scale / offset: linear unit conversion applied to raw values:
            ``canonical_value = scale * local_value + offset`` (e.g.
            milliseconds -> seconds uses scale 0.001).
    """

    canonical: str
    scale: float = 1.0
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.scale == 0:
            raise ConfigurationError("alias scale must be non-zero")

    def to_canonical(self, value: float) -> float:
        return self.scale * value + self.offset

    def from_canonical(self, value: float) -> float:
        return (value - self.offset) / self.scale


class MetricVocabulary:
    """A party's local metric vocabulary with taxonomy alignment."""

    def __init__(
        self,
        taxonomy: QoSTaxonomy,
        aliases: Optional[Mapping[str, MetricAlias]] = None,
    ) -> None:
        self.taxonomy = taxonomy
        self._aliases: Dict[str, MetricAlias] = {}
        for local, alias in (aliases or {}).items():
            self.add_alias(local, alias)

    def add_alias(self, local_name: str, alias: MetricAlias) -> None:
        if alias.canonical not in self.taxonomy:
            raise UnknownEntityError(
                f"alias target {alias.canonical!r} is not in the taxonomy"
            )
        self._aliases[local_name] = alias

    def resolve(self, local_name: str) -> str:
        """Canonical metric name for *local_name*.

        A name already in the taxonomy resolves to itself; otherwise
        the alias table is consulted.
        """
        if local_name in self.taxonomy:
            return local_name
        alias = self._aliases.get(local_name)
        if alias is None:
            raise UnknownEntityError(
                f"metric {local_name!r} is neither canonical nor aliased"
            )
        return alias.canonical

    def translate_observations(
        self, observations: Mapping[str, float], strict: bool = False
    ) -> Dict[str, float]:
        """Rename (and unit-convert) local observations to canonical.

        Unknown metrics are dropped when ``strict`` is False (the
        receiving side simply cannot interpret them — the silent-miss
        failure mode), or raise when ``strict`` is True.
        """
        out: Dict[str, float] = {}
        for name, value in observations.items():
            if name in self.taxonomy:
                out[name] = value
                continue
            alias = self._aliases.get(name)
            if alias is None:
                if strict:
                    raise UnknownEntityError(
                        f"cannot align metric {name!r}"
                    )
                continue
            out[alias.canonical] = alias.to_canonical(value)
        return out

    def translate_claims(
        self, claims: Mapping[str, float], strict: bool = False
    ) -> Dict[str, float]:
        """Rename quality-space claims (no unit conversion: quality
        space is already normalized)."""
        out: Dict[str, float] = {}
        for name, value in claims.items():
            if name in self.taxonomy:
                out[name] = value
            elif name in self._aliases:
                out[self._aliases[name].canonical] = value
            elif strict:
                raise UnknownEntityError(f"cannot align metric {name!r}")
        return out

    def alignment_coverage(
        self, names: "Tuple[str, ...] | list"
    ) -> float:
        """Fraction of *names* this vocabulary can interpret."""
        if not names:
            return 1.0
        resolved = 0
        for name in names:
            if name in self.taxonomy or name in self._aliases:
                resolved += 1
        return resolved / len(names)
