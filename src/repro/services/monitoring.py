"""Active QoS monitoring: sensors, third-party probes, explorer agents.

The paper's Figure 2 lists three ways QoS information reaches a central
node besides consumer feedback:

* **Sensors** deployed one-per-service, constantly reporting QoS — the
  approach the paper calls "very costly … only suitable for a small
  system" (Truong et al.).
* A **third party / central node** actively probing services itself.
* **Explorer agents** (Maximilien & Singh): the central node probes only
  services with a *negative* reputation, so improved services regain a
  chance of being selected.

All three measure only *observable* metrics; subjective facets such as
accuracy stay invisible to them — the structural advantage of consumer
feedback the paper emphasizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.randomness import RngLike, make_rng
from repro.common.records import Feedback
from repro.faults.resilience import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import get_recorder
from repro.services.invocation import InvocationEngine
from repro.services.provider import Service
from repro.services.qos import QoSTaxonomy


@dataclass
class MonitoringReport:
    """Aggregated monitor view of one service's observable quality."""

    service: EntityId
    samples: int = 0
    successes: int = 0
    facet_sums: Dict[str, float] = field(default_factory=dict)
    facet_counts: Dict[str, int] = field(default_factory=dict)

    def record(self, observations: Mapping[str, float], success: bool,
               taxonomy: QoSTaxonomy) -> None:
        self.samples += 1
        if success:
            self.successes += 1
        for name, raw in observations.items():
            if name not in taxonomy or not taxonomy.get(name).observable:
                continue
            quality = taxonomy.get(name).normalize(raw)
            self.facet_sums[name] = self.facet_sums.get(name, 0.0) + quality
            self.facet_counts[name] = self.facet_counts.get(name, 0) + 1

    def facet_quality(self, name: str, default: float = 0.5) -> float:
        count = self.facet_counts.get(name, 0)
        if count == 0:
            return default
        return self.facet_sums[name] / count

    def facet_estimates(self) -> Dict[str, float]:
        return {
            name: self.facet_sums[name] / count
            for name, count in self.facet_counts.items()
            if count > 0
        }

    @property
    def success_rate(self) -> float:
        return self.successes / self.samples if self.samples else 1.0

    def overall(self, weights: Optional[Mapping[str, float]] = None) -> float:
        """Preference-weighted observable quality, scaled by success rate."""
        estimates = self.facet_estimates()
        if not estimates:
            return 0.5 * self.success_rate
        if weights:
            common = {m: w for m, w in weights.items() if m in estimates}
            total = sum(common.values())
            if total > 0:
                base = sum(estimates[m] * w for m, w in common.items()) / total
                return base * self.success_rate
        return safe_mean(estimates.values()) * self.success_rate


class SensorDeployment:
    """One sensor per monitored service, probing on a fixed cadence.

    Costs tracked: number of sensors deployed (hardware/installation),
    probe invocations, and report messages to the central node.  The
    counts live on a per-deployment :class:`MetricsRegistry`
    (``monitoring.*``); the classic int attributes are read-through
    properties over it.
    """

    def __init__(
        self,
        engine: InvocationEngine,
        report_sink: Optional[Callable[[EntityId, MonitoringReport], None]] = None,
    ) -> None:
        self.engine = engine
        self.report_sink = report_sink
        self.reports: Dict[EntityId, MonitoringReport] = {}
        self.metrics = MetricsRegistry()
        self._sensors = self.metrics.counter(
            "monitoring.sensors.deployed", "sensors installed"
        )
        self._probes = self.metrics.counter(
            "monitoring.probes", "probe invocations"
        )
        self._reports = self.metrics.counter(
            "monitoring.reports", "report messages to the central node"
        )

    @property
    def sensors_deployed(self) -> int:
        return int(self._sensors.total())

    @property
    def probe_count(self) -> int:
        return int(self._probes.total())

    @property
    def report_messages(self) -> int:
        return int(self._reports.total())

    def deploy(self, service: Service) -> None:
        if service.service_id in self.reports:
            return
        self.reports[service.service_id] = MonitoringReport(service.service_id)
        self._sensors.inc()

    def retire(self, service_id: EntityId) -> None:
        self.reports.pop(service_id, None)

    def probe(self, service: Service, time: float) -> None:
        """One sensor measurement of *service* at *time*."""
        if service.service_id not in self.reports:
            raise ConfigurationError(
                f"no sensor deployed for {service.service_id}"
            )
        sensor_id = f"sensor:{service.service_id}"
        interaction = self.engine.invoke_anonymous(sensor_id, service, time)
        report = self.reports[service.service_id]
        report.record(interaction.observations, interaction.success,
                      self.engine.taxonomy)
        self._probes.inc()
        self._reports.inc()
        rec = get_recorder()
        if rec.enabled:
            rec.count(
                "monitoring.probes",
                labels=("sensors",),
                label_names=("component",),
            )
            rec.count(
                "monitoring.reports",
                labels=("sensors",),
                label_names=("component",),
            )
        if self.report_sink is not None:
            self.report_sink(service.service_id, report)

    def probe_all(self, services: "list[Service]", time: float) -> None:
        for service in services:
            if service.service_id in self.reports:
                self.probe(service, time)

    def report_for(self, service_id: EntityId) -> Optional[MonitoringReport]:
        return self.reports.get(service_id)

    def total_cost(
        self, sensor_cost: float = 10.0, probe_cost: float = 0.1,
        message_cost: float = 0.01,
    ) -> float:
        """Deployment-model cost: sensors dominate, per the paper."""
        return (
            self.sensors_deployed * sensor_cost
            + self.probe_count * probe_cost
            + self.report_messages * message_cost
        )


class ThirdPartyMonitor:
    """A central third party probing services itself (no sensors).

    Cheaper than sensors (no per-service hardware) but the probing
    burden concentrates on one node — the "too much burden on the
    central node" drawback.

    Args:
        retry: optional :class:`~repro.faults.resilience.RetryPolicy`;
            a failed probe is retried within the same round (each retry
            is a real probe, so the cost accounting still charges it),
            which separates transient invocation failures from a service
            that is genuinely down.
    """

    def __init__(
        self,
        engine: InvocationEngine,
        monitor_id: EntityId = "third-party",
        retry: Optional["RetryPolicy"] = None,
    ) -> None:
        self.engine = engine
        self.monitor_id = monitor_id
        self.retry = retry
        self.reports: Dict[EntityId, MonitoringReport] = {}
        self.metrics = MetricsRegistry()
        self._probes = self.metrics.counter(
            "monitoring.probes", "probe invocations"
        )
        self._retried = self.metrics.counter(
            "monitoring.probes.retried", "probe retries after failure"
        )

    @property
    def probe_count(self) -> int:
        return int(self._probes.total())

    @property
    def retried_probes(self) -> int:
        return int(self._retried.total())

    def _count_probe(self) -> None:
        self._probes.inc()
        rec = get_recorder()
        if rec.enabled:
            rec.count(
                "monitoring.probes",
                labels=("central_monitor",),
                label_names=("component",),
            )

    def probe(self, service: Service, time: float) -> MonitoringReport:
        interaction = self.engine.invoke_anonymous(self.monitor_id, service, time)
        self._count_probe()
        if self.retry is not None and not interaction.success:
            for _ in range(1, self.retry.max_attempts):
                self._retried.inc()
                self._count_probe()
                interaction = self.engine.invoke_anonymous(
                    self.monitor_id, service, time
                )
                if interaction.success:
                    break
        report = self.reports.setdefault(
            service.service_id, MonitoringReport(service.service_id)
        )
        report.record(interaction.observations, interaction.success,
                      self.engine.taxonomy)
        return report

    def sweep(self, services: "list[Service]", time: float) -> None:
        for service in services:
            self.probe(service, time)

    def report_for(self, service_id: EntityId) -> Optional[MonitoringReport]:
        return self.reports.get(service_id)


class ExplorerAgentPool:
    """Maximilien & Singh's explorer agents.

    The central node creates consumer agents that deliberately consume
    services whose reputation is *negative*.  When an explorer finds the
    quality improved, it files honest positive feedback, rehabilitating
    the service so ordinary consumers will select it again.
    """

    def __init__(
        self,
        engine: InvocationEngine,
        feedback_sink: Callable[[Feedback], None],
        reputation_threshold: float = 0.4,
        probes_per_round: int = 3,
        support_margin: float = 0.05,
        rng: RngLike = None,
    ) -> None:
        if probes_per_round < 1:
            raise ConfigurationError("probes_per_round must be >= 1")
        if support_margin < 0:
            raise ConfigurationError("support_margin must be >= 0")
        self.engine = engine
        self.feedback_sink = feedback_sink
        self.reputation_threshold = reputation_threshold
        self.probes_per_round = probes_per_round
        #: keep filing feedback for an improved service until its
        #: reputation has caught up to the measured quality (the
        #: "help the services gain positive reputation" half of the
        #: explorer-agent design) within this margin.
        self.support_margin = support_margin
        self._rng = make_rng(rng)
        self._last_measured: Dict[EntityId, float] = {}
        self.metrics = MetricsRegistry()
        self._probes = self.metrics.counter(
            "monitoring.probes", "probe invocations"
        )
        self._rehabilitations = self.metrics.counter(
            "monitoring.rehabilitations",
            "services rehabilitated by explorer feedback",
        )

    @property
    def probe_count(self) -> int:
        return int(self._probes.total())

    @property
    def rehabilitations(self) -> int:
        return int(self._rehabilitations.total())

    def explore(
        self,
        services: "list[Service]",
        reputations: Mapping[EntityId, float],
        time: float,
    ) -> List[Feedback]:
        """Probe every negatively-reputed service; file what was found.

        Explorer feedback is honest: it reports measured quality whether
        good or bad, so an unimproved service stays down while an
        improved one rises.
        """
        filed: List[Feedback] = []
        for service in services:
            rep = reputations.get(service.service_id)
            if rep is None:
                continue
            negative = rep < self.reputation_threshold
            # Continued support: a service measured better than its
            # current reputation still needs explorer feedback until
            # the community score reflects the improvement.
            catching_up = (
                self._last_measured.get(service.service_id, -1.0)
                > rep + self.support_margin
            )
            if not negative and not catching_up:
                continue
            scores: List[float] = []
            facet_acc: Dict[str, List[float]] = {}
            for i in range(self.probes_per_round):
                agent_id = f"explorer:{service.service_id}:{i}"
                interaction = self.engine.invoke_anonymous(
                    agent_id, service, time
                )
                self._probes.inc()
                rec = get_recorder()
                if rec.enabled:
                    rec.count(
                        "monitoring.probes",
                        labels=("explorer",),
                        label_names=("component",),
                    )
                if not interaction.success:
                    scores.append(0.0)
                    continue
                per_facet = {
                    name: self.engine.taxonomy.get(name).normalize(raw)
                    for name, raw in interaction.observations.items()
                    if name in self.engine.taxonomy
                }
                for name, q in per_facet.items():
                    facet_acc.setdefault(name, []).append(q)
                scores.append(safe_mean(per_facet.values(), default=0.5))
            measured = safe_mean(scores, default=0.0)
            facet_ratings = {
                name: safe_mean(values) for name, values in facet_acc.items()
            }
            feedback = Feedback(
                rater=f"explorer:{service.service_id}",
                target=service.service_id,
                time=time,
                rating=max(0.0, min(1.0, measured)),
                facet_ratings=facet_ratings,
            )
            self.feedback_sink(feedback)
            filed.append(feedback)
            self._last_measured[service.service_id] = measured
            if negative and measured > self.reputation_threshold:
                self._rehabilitations.inc()
        return filed
