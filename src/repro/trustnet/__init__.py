"""Subjective-logic trust networks (Jøsang, Gray & Kinateder [10]).

Section 3 of the survey grounds trust transitivity in Jøsang's work:
"Trust can be transitive … Alice trusts her doctor and her doctor
trusts an eye specialist."  This package implements the machinery that
citation refers to:

* :class:`Opinion` — the subjective-logic triple (belief, disbelief,
  uncertainty) with base rate, plus the discounting (transitivity) and
  consensus (fusion) operators;
* :class:`TrustNetwork` — a directed graph of opinions with
  *trust network analysis*: enumerate independent trust paths from one
  agent to another, discount along each path, fuse parallel paths —
  the simplified TNA-SL evaluation.
"""

from repro.trustnet.opinion import Opinion, consensus, discount
from repro.trustnet.network import TrustNetwork, TrustPath

__all__ = ["Opinion", "TrustNetwork", "TrustPath", "consensus", "discount"]
