"""Trust network analysis with subjective logic (simplified TNA-SL).

A directed graph whose edges carry :class:`Opinion` values of two
kinds: *referral* trust (trust in an agent as a recommender — these
edges may be chained) and *functional* trust (trust in an agent/service
for the actual task — only valid as the final edge of a path).

Evaluation of A's derived trust in X:

1. enumerate simple paths A → … → X whose last edge is functional and
   all earlier edges referral (bounded depth),
2. discount each path's functional opinion through its referral chain,
3. select a set of *node-disjoint* paths (independence requirement of
   the consensus operator, greedily by expectation), and
4. fuse the surviving path opinions with consensus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.trustnet.opinion import Opinion, consensus, discount


@dataclass(frozen=True)
class TrustPath:
    """One evaluated trust path and its end-to-end opinion."""

    nodes: Tuple[EntityId, ...]
    opinion: Opinion

    @property
    def length(self) -> int:
        return len(self.nodes) - 1


class TrustNetwork:
    """Directed graph of referral and functional trust opinions."""

    def __init__(self, max_depth: int = 5) -> None:
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        self.max_depth = max_depth
        #: source -> target -> opinion (referral edges)
        self._referral: Dict[EntityId, Dict[EntityId, Opinion]] = {}
        #: source -> target -> opinion (functional edges)
        self._functional: Dict[EntityId, Dict[EntityId, Opinion]] = {}

    # -- construction ------------------------------------------------------
    def add_referral_trust(
        self, source: EntityId, target: EntityId, opinion: Opinion
    ) -> None:
        """Trust in *target* as a recommender."""
        if source == target:
            raise ConfigurationError("self-trust edges are not allowed")
        self._referral.setdefault(source, {})[target] = opinion

    def add_functional_trust(
        self, source: EntityId, target: EntityId, opinion: Opinion
    ) -> None:
        """Trust in *target* for the task itself."""
        if source == target:
            raise ConfigurationError("self-trust edges are not allowed")
        self._functional.setdefault(source, {})[target] = opinion

    def referral_trust(
        self, source: EntityId, target: EntityId
    ) -> Optional[Opinion]:
        return self._referral.get(source, {}).get(target)

    def functional_trust(
        self, source: EntityId, target: EntityId
    ) -> Optional[Opinion]:
        return self._functional.get(source, {}).get(target)

    def nodes(self) -> List[EntityId]:
        found: Set[EntityId] = set()
        for edges in (self._referral, self._functional):
            for source, targets in edges.items():
                found.add(source)
                found.update(targets)
        return sorted(found)

    # -- path enumeration -----------------------------------------------------
    def trust_paths(
        self, source: EntityId, target: EntityId
    ) -> List[TrustPath]:
        """All valid bounded-length trust paths source → target.

        A valid path chains referral edges and ends with one functional
        edge; cycles are excluded.
        """
        paths: List[TrustPath] = []

        def walk(current: EntityId, visited: Tuple[EntityId, ...],
                 opinion: Optional[Opinion]) -> None:
            depth = len(visited) - 1
            functional = self._functional.get(current, {}).get(target)
            if functional is not None:
                end_to_end = (
                    functional if opinion is None
                    else discount_chain(opinion, functional)
                )
                paths.append(
                    TrustPath(nodes=visited + (target,), opinion=end_to_end)
                )
            if depth >= self.max_depth - 1:
                return
            for referee, trust in sorted(
                self._referral.get(current, {}).items()
            ):
                if referee in visited or referee == target:
                    continue
                chained = (
                    trust if opinion is None
                    else discount_chain(opinion, trust)
                )
                walk(referee, visited + (referee,), chained)

        walk(source, (source,), None)
        paths.sort(key=lambda p: (-p.opinion.expectation, p.nodes))
        return paths

    @staticmethod
    def _disjoint_subset(paths: List[TrustPath]) -> List[TrustPath]:
        """Greedy node-disjoint path selection (interior nodes only)."""
        chosen: List[TrustPath] = []
        used: Set[EntityId] = set()
        for path in paths:
            interior = set(path.nodes[1:-1])
            if interior & used:
                continue
            chosen.append(path)
            used.update(interior)
        return chosen

    # -- evaluation -----------------------------------------------------------
    def derived_trust(
        self, source: EntityId, target: EntityId
    ) -> Opinion:
        """A's derived functional trust in X (vacuous when unreachable)."""
        if source == target:
            raise ConfigurationError("derived self-trust is undefined")
        paths = self.trust_paths(source, target)
        if not paths:
            return Opinion.vacuous()
        independent = self._disjoint_subset(paths)
        fused = independent[0].opinion
        for path in independent[1:]:
            fused = consensus(fused, path.opinion)
        return fused

    def expectation(self, source: EntityId, target: EntityId) -> float:
        """Convenience: probability expectation of the derived trust."""
        return self.derived_trust(source, target).expectation


def discount_chain(chain_opinion: Opinion, next_edge: Opinion) -> Opinion:
    """Discount *next_edge* through the accumulated *chain_opinion*."""
    return discount(chain_opinion, next_edge)
