"""Subjective-logic opinions and their two core operators.

An opinion ω = (b, d, u, a): belief, disbelief, uncertainty summing to
one, plus a base rate *a* (the prior probability in the absence of
evidence).  The *probability expectation* is ``E = b + a·u``.

Operators (Jøsang's notation):

* **discounting** ``ω_A:B ⊗ ω_B:X`` — A's trust in B attenuates B's
  opinion about X; the less A trusts B, the more of B's opinion
  dissolves into uncertainty.  This is the algebra behind the paper's
  doctor → specialist example.
* **consensus** ``ω_A:X ⊕ ω_B:X`` — fuse two *independent* opinions
  about X, reducing uncertainty.

Evidence mapping: ``Opinion.from_evidence(r, s)`` converts r positive
and s negative observations via b = r/(r+s+W), d = s/(r+s+W),
u = W/(r+s+W) with non-informative prior weight W = 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

_EPS = 1e-9
#: Non-informative prior weight (two hidden observations).
PRIOR_WEIGHT = 2.0


@dataclass(frozen=True)
class Opinion:
    """A subjective-logic opinion (b, d, u, a)."""

    belief: float
    disbelief: float
    uncertainty: float
    base_rate: float = 0.5

    def __post_init__(self) -> None:
        for name, value in [
            ("belief", self.belief),
            ("disbelief", self.disbelief),
            ("uncertainty", self.uncertainty),
            ("base_rate", self.base_rate),
        ]:
            if not -_EPS <= value <= 1.0 + _EPS:
                raise ConfigurationError(
                    f"opinion {name} must be in [0, 1], got {value}"
                )
        total = self.belief + self.disbelief + self.uncertainty
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"b + d + u must equal 1, got {total}"
            )

    # -- constructors ----------------------------------------------------
    @staticmethod
    def vacuous(base_rate: float = 0.5) -> "Opinion":
        """Total uncertainty: no evidence at all."""
        return Opinion(0.0, 0.0, 1.0, base_rate)

    @staticmethod
    def dogmatic(probability: float) -> "Opinion":
        """Zero uncertainty (an absolute, evidence-infinite stance)."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("probability must be in [0, 1]")
        return Opinion(probability, 1.0 - probability, 0.0, 0.5)

    @staticmethod
    def from_evidence(
        positive: float, negative: float, base_rate: float = 0.5
    ) -> "Opinion":
        """Map (r, s) evidence counts to an opinion."""
        if positive < 0 or negative < 0:
            raise ConfigurationError("evidence counts must be >= 0")
        total = positive + negative + PRIOR_WEIGHT
        return Opinion(
            belief=positive / total,
            disbelief=negative / total,
            uncertainty=PRIOR_WEIGHT / total,
            base_rate=base_rate,
        )

    @staticmethod
    def from_rating(rating: float, confidence: float = 0.8) -> "Opinion":
        """A single graded rating as an opinion with given commitment."""
        if not 0.0 <= rating <= 1.0:
            raise ConfigurationError("rating must be in [0, 1]")
        if not 0.0 <= confidence <= 1.0:
            raise ConfigurationError("confidence must be in [0, 1]")
        return Opinion(
            belief=rating * confidence,
            disbelief=(1.0 - rating) * confidence,
            uncertainty=1.0 - confidence,
        )

    # -- queries -------------------------------------------------------------
    @property
    def expectation(self) -> float:
        """Probability expectation E = b + a*u."""
        return self.belief + self.base_rate * self.uncertainty

    def __str__(self) -> str:
        return (
            f"(b={self.belief:.3f}, d={self.disbelief:.3f}, "
            f"u={self.uncertainty:.3f}, a={self.base_rate:.2f})"
        )


def discount(trust: Opinion, opinion: Opinion) -> Opinion:
    """Jøsang's discounting operator ω_A:B ⊗ ω_B:X.

    A's belief in B scales B's committed mass; everything else becomes
    uncertainty.  Chains of weakly-trusted referrers rapidly approach
    the vacuous opinion — the conservatism transitive trust needs.
    """
    b = trust.belief * opinion.belief
    d = trust.belief * opinion.disbelief
    u = 1.0 - b - d
    return Opinion(b, d, u, opinion.base_rate)


def consensus(first: Opinion, second: Opinion) -> Opinion:
    """Jøsang's consensus operator ω_A:X ⊕ ω_B:X.

    Fusing independent opinions: agreement hardens (uncertainty
    shrinks), disagreement averages.  Two dogmatic opinions (u = 0)
    are averaged as the limit case.
    """
    u1, u2 = first.uncertainty, second.uncertainty
    kappa = u1 + u2 - u1 * u2
    if kappa < _EPS:
        # Dogmatic limit: average the committed masses.
        b = (first.belief + second.belief) / 2.0
        d = (first.disbelief + second.disbelief) / 2.0
        return Opinion(b, d, max(0.0, 1.0 - b - d), first.base_rate)
    b = (first.belief * u2 + second.belief * u1) / kappa
    d = (first.disbelief * u2 + second.disbelief * u1) / kappa
    u = (u1 * u2) / kappa
    # Numerical guard: renormalize tiny drift.
    total = b + d + u
    return Opinion(b / total, d / total, u / total, first.base_rate)
