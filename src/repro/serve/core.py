"""The synchronous, deterministic core of the serve layer.

:class:`ServiceCore` owns every piece of canonical state: the
:class:`~repro.registry.uddi.UDDIRegistry`, the reputation model and
its :class:`~repro.core.selection.SelectionEngine`, the PR 1
resilience stack (per-backend :class:`~repro.faults.resilience.CircuitBreaker`
via a :class:`~repro.faults.resilience.BreakerBoard`, a seeded
:class:`~repro.faults.resilience.RetryPolicy`, and a
:class:`~repro.faults.degradation.StaleRankingFallback`), the
:class:`~repro.serve.ingest.AdmissionController`, and the append-only
:class:`~repro.serve.protocol.IngestLog`.

The asyncio layer (:mod:`repro.serve.service`) is a thin concurrency
shell around two synchronous entry points:

* :meth:`ServiceCore.admit_batch` — called with one *quiescence batch*
  of arrivals, sorts them into canonical order, runs sequenced
  admission, and appends every record to the log;
* :meth:`ServiceCore.execute` — runs one record to its typed
  :class:`~repro.serve.protocol.ServeResponse`, through the
  degradation ladder: fresh ranking → retry with accounted backoff →
  circuit refusal → stale age-discounted ranking → typed failure.

Because both are synchronous and are invoked in log order, every
response, final score, metric total, and trace byte is a pure function
of the ingest log — which is what :mod:`repro.serve.replay` checks.

All times on this path are simulation quantities derived from ingest
ticks.  Wall-clock latency exists only client-side in the load
generator, and never enters this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, RegistryError, ReproError
from repro.common.randomness import SeedSequenceFactory
from repro.common.records import Feedback
from repro.common.simtime import from_ticks
from repro.core.selection import SelectionEngine, SelectionPolicy
from repro.faults.degradation import StaleRankingFallback
from repro.faults.resilience import BreakerBoard, RetryPolicy
from repro.models.base import ReputationModel, ScoredTarget
from repro.obs.recorder import get_recorder
from repro.registry.uddi import UDDIRegistry
from repro.serve.ingest import AdmissionConfig, AdmissionController
from repro.serve.protocol import (
    KIND_DEREGISTER,
    KIND_FEEDBACK,
    KIND_RANK,
    KIND_REGISTER,
    STATUS_DEGRADED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    STATUS_OK,
    Arrival,
    IngestLog,
    IngestRecord,
    ServeResponse,
    pairs,
)
from repro.serve.sla import SERVE_LATENCY_BUCKETS, SERVE_WAIT_BUCKETS
from repro.services.description import ServiceDescription

__all__ = [
    "RebuildInProgressError",
    "ServeConfig",
    "ServiceCore",
]

#: breaker board target ids — one breaker per backend, so a registry
#: outage cannot open-circuit the scoring path or vice versa.
BACKEND_REGISTRY = "registry"
BACKEND_SCORING = "scoring"


class RebuildInProgressError(ReproError):
    """The fresh scoring path is down for a score-table rebuild."""


@dataclass(frozen=True)
class ServeConfig:
    """All serve-layer knobs in one frozen, replay-stable value."""

    seed: int = 0
    drain_rate: float = 512.0
    max_depth: int = 64
    tenant_rate: float = 128.0
    tenant_burst: int = 32
    retry_attempts: int = 2
    retry_base_delay: float = 1.0 / 256.0
    retry_multiplier: float = 2.0
    retry_max_delay: float = 0.25
    retry_jitter: float = 0.5
    breaker_threshold: float = 0.5
    breaker_window: int = 8
    breaker_min_calls: int = 4
    breaker_recovery: float = 0.5
    stale_max_age: float = 64.0
    slo: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.slo < 1.0:
            raise ConfigurationError("slo must be in (0, 1)")
        for name in ("drain_rate", "tenant_rate"):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(
                    f"{name} must be positive, got {getattr(self, name)!r}"
                )
        for name in ("max_depth", "tenant_burst"):
            if getattr(self, name) < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {getattr(self, name)!r}"
                )
        if self.retry_attempts < 0:
            raise ConfigurationError("retry_attempts must be non-negative")
        if self.stale_max_age <= 0.0:
            raise ConfigurationError("stale_max_age must be positive")

    def admission(self) -> AdmissionConfig:
        return AdmissionConfig(
            drain_rate=self.drain_rate,
            max_depth=self.max_depth,
            tenant_rate=self.tenant_rate,
            tenant_burst=self.tenant_burst,
        )


@dataclass(frozen=True)
class _Outcome:
    """Internal result of one admitted execution."""

    status: str
    degraded: bool = False
    error: Optional[str] = None
    ranking: Tuple[Tuple[str, float], ...] = ()
    detail: Tuple[Tuple[str, object], ...] = ()
    backoff: float = 0.0


def _error_text(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


class ServiceCore:
    """Deterministic request execution over the selection stack."""

    def __init__(
        self,
        registry: UDDIRegistry,
        model: ReputationModel,
        config: Optional[ServeConfig] = None,
        policy: Optional[SelectionPolicy] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry
        self.model = model
        self.fallback = StaleRankingFallback(
            max_age=self.config.stale_max_age
        )
        self.engine = SelectionEngine(
            registry, model, policy=policy, fallback=self.fallback
        )
        seeds = SeedSequenceFactory(self.config.seed)
        self.retry = RetryPolicy(
            max_attempts=self.config.retry_attempts,
            base_delay=self.config.retry_base_delay,
            multiplier=self.config.retry_multiplier,
            max_delay=self.config.retry_max_delay,
            jitter=self.config.retry_jitter,
            rng=seeds.spawn("serve.retry"),
        )
        self.breakers = BreakerBoard(
            failure_rate_threshold=self.config.breaker_threshold,
            window=self.config.breaker_window,
            min_calls=self.config.breaker_min_calls,
            recovery_timeout=self.config.breaker_recovery,
        )
        self.admission = AdmissionController(self.config.admission())
        self.log = IngestLog()
        self._responses: Dict[int, ServeResponse] = {}
        self._catalog: Dict[str, None] = {}
        self._batches = 0
        self._rebuilding = False

    # -- bootstrap ----------------------------------------------------------

    def bootstrap(
        self, descriptions: Sequence[ServiceDescription]
    ) -> None:
        """Publish the initial catalogue outside the ingest log."""
        for description in descriptions:
            self.registry.publish(description)
            self._catalog[description.service] = None

    # -- sequenced ingest ---------------------------------------------------

    def admit_batch(
        self, arrivals: Sequence[Arrival]
    ) -> List[IngestRecord]:
        """Admit one quiescence batch in canonical arrival order."""
        batch = self._batches
        self._batches += 1
        ordered = sorted(arrivals, key=lambda a: a.order_key)
        records = []
        for arrival in ordered:
            record = self.admission.admit(arrival, batch)
            self.log.append(record)
            self._note_admission(record)
            records.append(record)
        return records

    def ingest(self, arrivals: Sequence[Arrival]) -> List[ServeResponse]:
        """Admit and execute one batch synchronously, exactly as the
        asyncio layer would: rejects settle during admission, admitted
        records execute afterwards in log order.  Responses come back
        in canonical (log) order."""
        records = self.admit_batch(arrivals)
        for record in records:
            if not record.admitted:
                self.execute(record)
        for record in records:
            if record.admitted:
                self.execute(record)
        return [self._responses[record.tick] for record in records]

    # -- execution ----------------------------------------------------------

    def execute(self, record: IngestRecord) -> ServeResponse:
        """Run one sequenced record to its response (idempotent per tick)."""
        done = self._responses.get(record.tick)
        if done is not None:
            return done
        arrival = record.arrival
        if not record.admitted:
            response = ServeResponse(
                kind=arrival.kind,
                tenant=arrival.tenant,
                client_id=arrival.client_id,
                client_seq=arrival.client_seq,
                status=record.decision,
                tick=record.tick,
                exec_tick=record.exec_tick,
                queue_wait=0.0,
                latency=0.0,
                error=f"admission rejected: {record.decision}",
            )
            return self._finish(record, response)
        queue_wait = from_ticks(record.wait_ticks)
        if record.wait_ticks > arrival.ttl_ticks:
            response = ServeResponse(
                kind=arrival.kind,
                tenant=arrival.tenant,
                client_id=arrival.client_id,
                client_seq=arrival.client_seq,
                status=STATUS_EXPIRED,
                tick=record.tick,
                exec_tick=record.exec_tick,
                queue_wait=queue_wait,
                latency=queue_wait,
                error=(
                    f"ttl exceeded: waited {record.wait_ticks} ticks "
                    f"> ttl {arrival.ttl_ticks}"
                ),
            )
            return self._finish(record, response)
        now = from_ticks(record.exec_tick)
        outcome = self._dispatch(arrival, now)
        base_latency = from_ticks(record.exec_tick - record.tick)
        response = ServeResponse(
            kind=arrival.kind,
            tenant=arrival.tenant,
            client_id=arrival.client_id,
            client_seq=arrival.client_seq,
            status=outcome.status,
            tick=record.tick,
            exec_tick=record.exec_tick,
            queue_wait=queue_wait,
            latency=base_latency + outcome.backoff,
            degraded=outcome.degraded,
            error=outcome.error,
            ranking=outcome.ranking,
            detail=outcome.detail,
        )
        return self._finish(record, response)

    @property
    def responses(self) -> List[ServeResponse]:
        """Every settled response, in canonical (ingest tick) order."""
        return [self._responses[tick] for tick in sorted(self._responses)]

    # -- kind handlers ------------------------------------------------------

    def _dispatch(self, arrival: Arrival, now: float) -> _Outcome:
        payload = arrival.payload_dict()
        if arrival.kind == KIND_RANK:
            return self._exec_rank(payload, now)
        if arrival.kind == KIND_FEEDBACK:
            return self._exec_feedback(payload, now)
        if arrival.kind == KIND_REGISTER:
            return self._exec_register(payload, now)
        if arrival.kind == KIND_DEREGISTER:
            return self._exec_deregister(payload, now)
        return self._exec_admin(payload, now)

    def _exec_rank(self, payload: Dict[str, object], now: float) -> _Outcome:
        category = str(payload["category"])
        perspective_raw = payload.get("perspective")
        perspective = (
            None if perspective_raw is None else str(perspective_raw)
        )
        key = (category, perspective)
        registry_breaker = self.breakers.for_target(BACKEND_REGISTRY)
        scoring_breaker = self.breakers.for_target(BACKEND_SCORING)

        def fresh() -> List[ScoredTarget]:
            if self._rebuilding:
                raise RebuildInProgressError(
                    "score table rebuild in progress"
                )
            registry_breaker.guard(now)
            scoring_breaker.guard(now)
            try:
                ranking = self.engine.rank(category, perspective, now)
            except RegistryError:
                registry_breaker.record_failure(now)
                raise
            except ReproError:
                scoring_breaker.record_failure(now)
                raise
            registry_breaker.record_success(now)
            scoring_breaker.record_success(now)
            return ranking

        outcome = self.retry.call(fresh)
        if outcome.succeeded:
            ranking: List[ScoredTarget] = outcome.value
            self.fallback.remember(key, ranking, now)
            return _Outcome(
                status=STATUS_OK,
                ranking=_as_pairs(ranking),
                backoff=outcome.backoff_delay,
            )
        error = _error_text(outcome.error) if outcome.error else "failed"
        stale = self.fallback.recall(key, now)
        if stale:
            return _Outcome(
                status=STATUS_DEGRADED,
                degraded=True,
                error=error,
                ranking=_as_pairs(stale),
                detail=pairs({"source": "stale_fallback"}),
                backoff=outcome.backoff_delay,
            )
        return _Outcome(
            status=STATUS_FAILED, error=error, backoff=outcome.backoff_delay
        )

    def _exec_feedback(
        self, payload: Dict[str, object], now: float
    ) -> _Outcome:
        feedback = Feedback(
            rater=str(payload["rater"]),
            target=str(payload["target"]),
            time=now,
            rating=float(payload["rating"]),  # type: ignore[arg-type]
        )
        try:
            self.model.record(feedback)
        except ReproError as exc:
            return _Outcome(status=STATUS_FAILED, error=_error_text(exc))
        self._catalog.setdefault(feedback.target, None)
        return _Outcome(
            status=STATUS_OK, detail=pairs({"target": feedback.target})
        )

    def _exec_register(
        self, payload: Dict[str, object], now: float
    ) -> _Outcome:
        description = ServiceDescription(
            service=str(payload["service"]),
            provider=str(payload["provider"]),
            category=str(payload["category"]),
            version=int(payload["version"]),  # type: ignore[arg-type]
        )
        breaker = self.breakers.for_target(BACKEND_REGISTRY)

        def publish() -> None:
            breaker.guard(now)
            try:
                self.registry.publish(description)
            except RegistryError:
                # A stale republish is the caller's error; only an
                # actually-down registry counts against the breaker.
                if self.registry.is_failed:
                    breaker.record_failure(now)
                raise
            breaker.record_success(now)

        outcome = self.retry.call(publish)
        if not outcome.succeeded:
            error = _error_text(outcome.error) if outcome.error else "failed"
            return _Outcome(
                status=STATUS_FAILED,
                error=error,
                backoff=outcome.backoff_delay,
            )
        self._catalog.setdefault(description.service, None)
        return _Outcome(
            status=STATUS_OK,
            detail=pairs({"registry_version": self.registry.version}),
            backoff=outcome.backoff_delay,
        )

    def _exec_deregister(
        self, payload: Dict[str, object], now: float
    ) -> _Outcome:
        service = str(payload["service"])
        breaker = self.breakers.for_target(BACKEND_REGISTRY)

        def unpublish() -> None:
            breaker.guard(now)
            try:
                self.registry.unpublish(service)
            except RegistryError:
                if self.registry.is_failed:
                    breaker.record_failure(now)
                raise
            breaker.record_success(now)

        outcome = self.retry.call(unpublish)
        if not outcome.succeeded:
            error = _error_text(outcome.error) if outcome.error else "failed"
            return _Outcome(
                status=STATUS_FAILED,
                error=error,
                backoff=outcome.backoff_delay,
            )
        return _Outcome(
            status=STATUS_OK,
            detail=pairs({"registry_version": self.registry.version}),
            backoff=outcome.backoff_delay,
        )

    def _exec_admin(
        self, payload: Dict[str, object], now: float
    ) -> _Outcome:
        action = str(payload["action"])
        if action == "fail_registry":
            self.registry.fail()
        elif action == "heal_registry":
            self.registry.heal()
        elif action == "begin_rebuild":
            self._rebuilding = True
        elif action == "end_rebuild":
            self._rebuilding = False
        else:
            return _Outcome(
                status=STATUS_FAILED, error=f"unknown action: {action}"
            )
        return _Outcome(status=STATUS_OK, detail=pairs({"action": action}))

    # -- canonical outputs --------------------------------------------------

    def final_scores(self, now: Optional[float] = None) -> Dict[str, float]:
        """``{service: score}`` over every service the core ever saw,
        in sorted id order — the scores half of the replay identity."""
        targets = sorted(self._catalog)
        scores = self.model.score_many(targets, None, now)
        return {
            target: float(score) for target, score in zip(targets, scores)
        }

    # -- telemetry ----------------------------------------------------------

    def _note_admission(self, record: IngestRecord) -> None:
        rec = get_recorder()
        if not rec.enabled:
            return
        arrival = record.arrival
        rec.advance(from_ticks(record.tick))
        rec.count(
            "serve.admission",
            labels=(arrival.tenant, record.decision),
            label_names=("tenant", "decision"),
        )
        rec.gauge("serve.ingest.backlog", float(self.admission.queue.depth))
        if record.admitted:
            rec.observe(
                "serve.queue_wait",
                from_ticks(record.wait_ticks),
                labels=(arrival.tenant,),
                label_names=("tenant",),
                buckets=SERVE_WAIT_BUCKETS,
            )

    def _finish(
        self, record: IngestRecord, response: ServeResponse
    ) -> ServeResponse:
        self._responses[record.tick] = response
        rec = get_recorder()
        if not rec.enabled:
            return response
        rec.count(
            "serve.requests",
            labels=(response.tenant, response.kind, response.status),
            label_names=("tenant", "kind", "status"),
        )
        if record.admitted:
            if response.kind == KIND_RANK and response.ok:
                rec.observe(
                    "serve.rank.latency",
                    response.latency,
                    labels=(response.tenant,),
                    label_names=("tenant",),
                    buckets=SERVE_LATENCY_BUCKETS,
                )
            rec.span(
                "serve.exec",
                time=from_ticks(record.tick),
                duration=response.latency,
                attrs={
                    "kind": response.kind,
                    "status": response.status,
                    "tenant": response.tenant,
                    "tick": record.tick,
                },
            )
        return response


def _as_pairs(
    ranking: Sequence[ScoredTarget],
) -> Tuple[Tuple[str, float], ...]:
    return tuple((st.target, float(st.score)) for st in ranking)
