"""Typed request/response protocol for the :mod:`repro.serve` layer.

Every request enters the service as an :class:`Arrival` — a frozen,
canonically-encodable value stamped with the *client's* simulation time
(int64 ticks, see :mod:`repro.common.simtime`), the submitting client's
id and per-client sequence number, the tenant it bills to, and a typed
payload.  The ingest sequencer (see :mod:`repro.serve.ingest`) orders
arrivals by ``(client_tick, client_id, client_seq)``, assigns each a
strictly monotonic ingest tick, and turns it into an
:class:`IngestRecord` carrying the admission decision.  The append-only
:class:`IngestLog` of those records is the serve layer's canonical
state: replaying it reproduces every response, score, and trace byte
for byte (see :mod:`repro.serve.replay`).

Responses are :class:`ServeResponse` values with a typed status —
``ok``/``degraded`` for served requests, ``shed``/``throttled`` for
admission rejects, ``expired`` for requests whose virtual queue wait
exceeded their TTL, ``failed`` for requests the degradation ladder
could not save.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.common.simtime import from_ticks, to_ticks
from repro.obs.trace import canonical_json

__all__ = [
    "ADMIN_ACTIONS",
    "ADMITTED",
    "DECISIONS",
    "DEFAULT_TTL",
    "Arrival",
    "IngestLog",
    "IngestRecord",
    "KINDS",
    "KIND_ADMIN",
    "KIND_DEREGISTER",
    "KIND_FEEDBACK",
    "KIND_RANK",
    "KIND_REGISTER",
    "STATUSES",
    "STATUS_DEGRADED",
    "STATUS_EXPIRED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_THROTTLED",
    "ServeResponse",
    "admin_arrival",
    "deregister_arrival",
    "feedback_arrival",
    "pairs",
    "rank_arrival",
    "register_arrival",
    "responses_sha256",
    "unpairs",
]

# -- request kinds ----------------------------------------------------------

KIND_RANK = "rank"
KIND_FEEDBACK = "feedback"
KIND_REGISTER = "register"
KIND_DEREGISTER = "deregister"
KIND_ADMIN = "admin"
KINDS = (KIND_ADMIN, KIND_DEREGISTER, KIND_FEEDBACK, KIND_RANK, KIND_REGISTER)

# -- admission decisions ----------------------------------------------------

ADMITTED = "admitted"
DECISIONS = (ADMITTED, "shed", "throttled")

# -- response statuses ------------------------------------------------------

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"
STATUS_EXPIRED = "expired"
STATUS_SHED = "shed"
STATUS_THROTTLED = "throttled"
STATUSES = (
    STATUS_DEGRADED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    STATUS_THROTTLED,
)

#: default request TTL in simulation time units: a request that would
#: sit in the virtual queue longer than this expires instead of serving
#: a stale answer the client has already given up on.
DEFAULT_TTL = 2.0

Pairs = Tuple[Tuple[str, Any], ...]


def pairs(mapping: Mapping[str, Any]) -> Pairs:
    """A mapping as a hashable, key-sorted tuple of pairs (recursive)."""
    out: List[Tuple[str, Any]] = []
    for key in sorted(mapping):
        value = mapping[key]
        if isinstance(value, Mapping):
            value = pairs(value)
        out.append((str(key), value))
    return tuple(out)


def unpairs(payload: Pairs) -> Dict[str, Any]:
    """Inverse of :func:`pairs`: pair-tuples back to plain dicts."""
    out: Dict[str, Any] = {}
    for key, value in payload:
        if isinstance(value, tuple) and all(
            isinstance(item, tuple) and len(item) == 2 for item in value
        ):
            out[key] = unpairs(value)
        else:
            out[key] = value
    return out


@dataclass(frozen=True)
class Arrival:
    """One request as submitted, before sequencing and admission.

    ``client_tick`` is the submitting client's simulation clock in
    int64 ticks; ``client_seq`` increments per client, so the canonical
    ingest order ``(client_tick, client_id, client_seq)`` is a pure
    function of *what was submitted*, never of how submissions happened
    to interleave on the event loop.
    """

    client_tick: int
    client_id: str
    client_seq: int
    tenant: str
    kind: str
    ttl_ticks: int
    payload: Pairs = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.ttl_ticks < 0:
            raise ValueError("ttl_ticks must be non-negative")

    @property
    def order_key(self) -> Tuple[int, str, int]:
        return (self.client_tick, self.client_id, self.client_seq)

    def payload_dict(self) -> Dict[str, Any]:
        return unpairs(self.payload)


def _arrival(
    *,
    now: float,
    client_id: str,
    client_seq: int,
    tenant: str,
    kind: str,
    ttl: float,
    payload: Mapping[str, Any],
) -> Arrival:
    return Arrival(
        client_tick=to_ticks(now),
        client_id=client_id,
        client_seq=client_seq,
        tenant=tenant,
        kind=kind,
        ttl_ticks=to_ticks(ttl),
        payload=pairs(payload),
    )


def rank_arrival(
    *,
    now: float,
    client_id: str,
    client_seq: int,
    tenant: str,
    category: str,
    perspective: Optional[str] = None,
    ttl: float = DEFAULT_TTL,
) -> Arrival:
    """A ``rank_for_consumer`` request for *category*."""
    return _arrival(
        now=now,
        client_id=client_id,
        client_seq=client_seq,
        tenant=tenant,
        kind=KIND_RANK,
        ttl=ttl,
        payload={"category": category, "perspective": perspective},
    )


def feedback_arrival(
    *,
    now: float,
    client_id: str,
    client_seq: int,
    tenant: str,
    rater: str,
    target: str,
    rating: float,
    ttl: float = DEFAULT_TTL,
) -> Arrival:
    """A ``submit_feedback`` request rating *target* in ``[0, 1]``."""
    if not 0.0 <= rating <= 1.0:
        raise ValueError(f"rating must be in [0, 1], got {rating}")
    return _arrival(
        now=now,
        client_id=client_id,
        client_seq=client_seq,
        tenant=tenant,
        kind=KIND_FEEDBACK,
        ttl=ttl,
        payload={"rater": rater, "target": target, "rating": float(rating)},
    )


def register_arrival(
    *,
    now: float,
    client_id: str,
    client_seq: int,
    tenant: str,
    service: str,
    provider: str,
    category: str,
    version: int = 1,
    ttl: float = DEFAULT_TTL,
) -> Arrival:
    """A ``register_service`` request publishing into the registry."""
    return _arrival(
        now=now,
        client_id=client_id,
        client_seq=client_seq,
        tenant=tenant,
        kind=KIND_REGISTER,
        ttl=ttl,
        payload={
            "service": service,
            "provider": provider,
            "category": category,
            "version": int(version),
        },
    )


def deregister_arrival(
    *,
    now: float,
    client_id: str,
    client_seq: int,
    tenant: str,
    service: str,
    ttl: float = DEFAULT_TTL,
) -> Arrival:
    """A ``deregister_service`` request."""
    return _arrival(
        now=now,
        client_id=client_id,
        client_seq=client_seq,
        tenant=tenant,
        kind=KIND_DEREGISTER,
        ttl=ttl,
        payload={"service": service},
    )


#: admin actions routed through the same sequenced ingest path, so
#: chaos (registry outages, score-table rebuilds) lands at a
#: deterministic point in the log instead of racing the event loop.
ADMIN_ACTIONS = (
    "begin_rebuild",
    "end_rebuild",
    "fail_registry",
    "heal_registry",
)


def admin_arrival(
    *,
    now: float,
    client_id: str,
    client_seq: int,
    action: str,
    tenant: str = "_admin",
    ttl: float = DEFAULT_TTL,
) -> Arrival:
    """A sequenced administrative action (see :data:`ADMIN_ACTIONS`)."""
    if action not in ADMIN_ACTIONS:
        raise ValueError(f"unknown admin action {action!r}")
    return _arrival(
        now=now,
        client_id=client_id,
        client_seq=client_seq,
        tenant=tenant,
        kind=KIND_ADMIN,
        ttl=ttl,
        payload={"action": action},
    )


@dataclass(frozen=True)
class IngestRecord:
    """One sequenced arrival plus its admission outcome.

    ``tick`` is the assigned ingest tick — strictly monotonic over the
    log, ``max(client_tick, previous + 1)``.  ``wait_ticks`` is the
    virtual queue wait granted at admission and ``exec_tick`` the
    virtual execution time (``tick`` for rejected arrivals).
    """

    tick: int
    batch: int
    decision: str
    wait_ticks: int
    exec_tick: int
    arrival: Arrival

    def __post_init__(self) -> None:
        if self.decision not in DECISIONS:
            raise ValueError(f"unknown decision {self.decision!r}")

    @property
    def admitted(self) -> bool:
        return self.decision == ADMITTED

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "batch": self.batch,
            "decision": self.decision,
            "wait_ticks": self.wait_ticks,
            "exec_tick": self.exec_tick,
            "client_tick": self.arrival.client_tick,
            "client_id": self.arrival.client_id,
            "client_seq": self.arrival.client_seq,
            "tenant": self.arrival.tenant,
            "kind": self.arrival.kind,
            "ttl_ticks": self.arrival.ttl_ticks,
            "payload": self.arrival.payload_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IngestRecord":
        arrival = Arrival(
            client_tick=int(data["client_tick"]),
            client_id=str(data["client_id"]),
            client_seq=int(data["client_seq"]),
            tenant=str(data["tenant"]),
            kind=str(data["kind"]),
            ttl_ticks=int(data["ttl_ticks"]),
            payload=pairs(data["payload"]),
        )
        return cls(
            tick=int(data["tick"]),
            batch=int(data["batch"]),
            decision=str(data["decision"]),
            wait_ticks=int(data["wait_ticks"]),
            exec_tick=int(data["exec_tick"]),
            arrival=arrival,
        )

    def line(self) -> str:
        return canonical_json(self.to_dict())


class IngestLog:
    """Append-only, canonically-serializable log of ingest records.

    The log *is* the service's durable state: its canonical bytes hash
    to the replay identity every determinism gate checks, and feeding
    it back through :func:`repro.serve.replay.replay_log` reproduces
    every response and trace byte for byte.
    """

    __slots__ = ("_records",)

    def __init__(self, records: Sequence[IngestRecord] = ()) -> None:
        self._records = list(records)

    def append(self, record: IngestRecord) -> None:
        if self._records and record.tick <= self._records[-1].tick:
            raise ValueError(
                f"non-monotonic ingest tick {record.tick} after "
                f"{self._records[-1].tick}"
            )
        self._records.append(record)

    @property
    def records(self) -> Tuple[IngestRecord, ...]:
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[IngestRecord]:
        return iter(self._records)

    def canonical_bytes(self) -> bytes:
        lines = [record.line() for record in self._records]
        return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""

    def sha256(self) -> str:
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    @classmethod
    def from_records(
        cls, records: Sequence[Mapping[str, Any]]
    ) -> "IngestLog":
        return cls([IngestRecord.from_dict(item) for item in records])


@dataclass(frozen=True)
class ServeResponse:
    """The typed answer to one arrival, canonical across replays.

    All times are *simulation* quantities derived from ingest ticks:
    ``queue_wait`` is the virtual queue wait, ``latency`` adds the
    service cost and any accounted retry backoff.  ``ranking`` is the
    best-first ``(service, score)`` ranking for rank requests (possibly
    age-discounted when ``degraded``).
    """

    kind: str
    tenant: str
    client_id: str
    client_seq: int
    status: str
    tick: int
    exec_tick: int
    queue_wait: float
    latency: float
    degraded: bool = False
    error: Optional[str] = None
    ranking: Tuple[Tuple[str, float], ...] = ()
    detail: Pairs = ()

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown status {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_DEGRADED)

    @property
    def admitted_at(self) -> float:
        return from_ticks(self.tick)

    @property
    def executed_at(self) -> float:
        return from_ticks(self.exec_tick)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "tenant": self.tenant,
            "client_id": self.client_id,
            "client_seq": self.client_seq,
            "status": self.status,
            "tick": self.tick,
            "exec_tick": self.exec_tick,
            "queue_wait": self.queue_wait,
            "latency": self.latency,
            "degraded": self.degraded,
            "error": self.error,
            "ranking": [[target, score] for target, score in self.ranking],
            "detail": unpairs(self.detail),
        }

    def line(self) -> str:
        return canonical_json(self.to_dict())


def responses_sha256(responses: Sequence[ServeResponse]) -> str:
    """The canonical identity of an ordered response sequence."""
    digest = hashlib.sha256()
    for response in responses:
        digest.update(response.line().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()
