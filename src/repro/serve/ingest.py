"""Deterministic ingest: tick assignment and admission control.

The serve layer's determinism contract is that every canonical output
is a pure function of the *ingest log* — so every quantity admission
control depends on must itself be deterministic.  Three consequences
shape this module:

* **Integer tick arithmetic only.**  Rates are converted once to an
  integer tick cost (``ticks_per_event``); buckets and backlogs then
  evolve by exact int64 addition.  No floats, no wall clock, no live
  ``asyncio`` queue occupancy (which would vary with worker count).
* **Sequenced order, not arrival order.**  The controller is invoked
  in the canonical arrival order ``(client_tick, client_id,
  client_seq)`` established by the sequencer, so identical submissions
  admit identically however they interleaved on the event loop.
* **A virtual (fluid) queue, not the real one.**  Queue depth is
  modelled as a backlog of tick-cost that drains at the configured
  rate as the assigned ticks advance.  The real asyncio queue is an
  implementation detail; the virtual one is canonical state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.common.simtime import TICKS_PER_UNIT
from repro.serve.protocol import ADMITTED, Arrival, IngestRecord

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "FluidQueue",
    "TokenBucket",
    "ticks_per_event",
]


def ticks_per_event(rate: float) -> int:
    """Integer tick cost of one event at *rate* events per sim unit."""
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    return max(1, round(TICKS_PER_UNIT / rate))


class TokenBucket:
    """Per-tenant rate limiter in exact integer-tick arithmetic.

    Earns one token every ``ticks_per_token`` assigned ticks up to
    ``burst``; the fractional remainder is carried in ticks, so refill
    is exact however unevenly admissions are spaced.
    """

    __slots__ = ("ticks_per_token", "burst", "tokens", "last_tick", "_frac")

    def __init__(self, rate: float, burst: int) -> None:
        if burst < 1:
            raise ConfigurationError("burst must be >= 1")
        self.ticks_per_token = ticks_per_event(rate)
        self.burst = int(burst)
        self.tokens = int(burst)
        self.last_tick = 0
        self._frac = 0

    def take(self, tick: int) -> bool:
        """Spend one token at *tick*; False when the bucket is empty."""
        elapsed = tick - self.last_tick
        if elapsed > 0:
            if self.tokens >= self.burst:
                self._frac = 0
            else:
                earned, self._frac = divmod(
                    self._frac + elapsed, self.ticks_per_token
                )
                if earned:
                    self.tokens = min(self.burst, self.tokens + int(earned))
            self.last_tick = tick
        if self.tokens > 0:
            self.tokens -= 1
            return True
        return False


class FluidQueue:
    """Deterministic virtual queue: a tick-cost backlog with bounded depth.

    Each admitted request adds ``service_ticks`` of backlog; the
    backlog drains one tick per assigned tick elapsed.  Depth is the
    backlog measured in whole requests; an arrival that would push the
    depth past ``max_depth`` is shed.  The wait granted to an admitted
    request is the backlog in front of it — that single integer is what
    TTL expiry and the SLA queue-wait histograms are computed from.
    """

    __slots__ = ("service_ticks", "max_depth", "backlog_ticks", "last_tick")

    def __init__(self, drain_rate: float, max_depth: int) -> None:
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        self.service_ticks = ticks_per_event(drain_rate)
        self.max_depth = int(max_depth)
        self.backlog_ticks = 0
        self.last_tick = 0

    @property
    def depth(self) -> int:
        return self.backlog_ticks // self.service_ticks

    def offer(self, tick: int) -> Optional[int]:
        """Wait in ticks granted at *tick*, or None when shed."""
        elapsed = tick - self.last_tick
        if elapsed > 0:
            self.backlog_ticks = max(0, self.backlog_ticks - elapsed)
            self.last_tick = tick
        if self.depth >= self.max_depth:
            return None
        wait = self.backlog_ticks
        self.backlog_ticks += self.service_ticks
        return wait


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control knobs, all in per-sim-unit terms."""

    drain_rate: float = 512.0
    max_depth: int = 64
    tenant_rate: float = 128.0
    tenant_burst: int = 32


class AdmissionController:
    """Sequenced admission: ticks, token buckets, and the virtual queue.

    :meth:`admit` must be called in canonical arrival order; it assigns
    the strictly monotonic ingest tick ``max(client_tick, last + 1)``,
    charges the tenant's token bucket (throttle), then offers the
    request to the fluid queue (shed).  The returned
    :class:`IngestRecord` captures the full decision so a replay can
    assert it reproduces admission exactly.
    """

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.queue = FluidQueue(config.drain_rate, config.max_depth)
        self._buckets: Dict[str, TokenBucket] = {}
        self.last_tick = 0

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.config.tenant_rate, self.config.tenant_burst
            )
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, arrival: Arrival, batch: int) -> IngestRecord:
        tick = max(arrival.client_tick, self.last_tick + 1)
        self.last_tick = tick
        if not self.bucket(arrival.tenant).take(tick):
            return IngestRecord(
                tick=tick,
                batch=batch,
                decision="throttled",
                wait_ticks=0,
                exec_tick=tick,
                arrival=arrival,
            )
        wait = self.queue.offer(tick)
        if wait is None:
            return IngestRecord(
                tick=tick,
                batch=batch,
                decision="shed",
                wait_ticks=0,
                exec_tick=tick,
                arrival=arrival,
            )
        return IngestRecord(
            tick=tick,
            batch=batch,
            decision=ADMITTED,
            wait_ticks=wait,
            exec_tick=tick + wait + self.queue.service_ticks,
            arrival=arrival,
        )
