"""Deterministic replay: the ingest log is the whole truth.

``replay_log(core_factory, log)`` feeds a recorded
:class:`~repro.serve.protocol.IngestLog` through a *fresh* core,
batch by batch exactly as the live sequencer did — admissions first
(rejects settling inline), then executions in log order — under its
own live :class:`~repro.obs.recorder.Recorder`.  It asserts that the
fresh core re-derives every admission decision, assigned tick, and
virtual wait byte-for-byte (:class:`ReplayDivergenceError` otherwise),
and returns the canonical identity of the run: responses, final
scores, and the telemetry trace, each with a sha256.

This is the serve analogue of the shard byte-identity gate: the CI
determinism gate replays the same log across worker counts, arrival
interleavings, and pytest processes and requires identical hashes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.obs.recorder import Recorder, use_recorder
from repro.obs.trace import TelemetrySnapshot, canonical_json, write_jsonl
from repro.serve.core import ServiceCore
from repro.serve.protocol import (
    IngestLog,
    IngestRecord,
    ServeResponse,
    responses_sha256,
)

__all__ = [
    "ReplayDivergenceError",
    "ReplayResult",
    "replay_log",
    "scores_sha256",
    "snapshot_sha256",
]


class ReplayDivergenceError(ReproError):
    """A replayed admission decision differed from the recorded one."""


def scores_sha256(scores: Dict[str, float]) -> str:
    """Canonical identity of a ``{service: score}`` mapping."""
    return hashlib.sha256(
        canonical_json(scores).encode("utf-8")
    ).hexdigest()


def snapshot_sha256(snapshot: TelemetrySnapshot) -> str:
    """Canonical identity of a telemetry snapshot (JSONL bytes)."""

    class _Sink:
        def __init__(self) -> None:
            self.digest = hashlib.sha256()

        def write(self, text: str) -> None:
            self.digest.update(text.encode("utf-8"))

    sink = _Sink()
    write_jsonl(snapshot, sink)
    return sink.digest.hexdigest()


@dataclass(frozen=True)
class ReplayResult:
    """Everything a determinism gate needs to compare two runs."""

    responses: Tuple[ServeResponse, ...]
    final_scores: Dict[str, float]
    snapshot: TelemetrySnapshot
    log_sha256: str
    responses_sha256: str
    scores_sha256: str
    trace_sha256: str


def _check(record: IngestRecord, derived: IngestRecord) -> None:
    if derived != record:
        raise ReplayDivergenceError(
            "replay diverged at tick "
            f"{record.tick}: recorded {record.to_dict()} vs "
            f"derived {derived.to_dict()}"
        )


def replay_log(
    core_factory: Callable[[], ServiceCore],
    log: IngestLog,
    meta: Optional[Dict[str, object]] = None,
) -> ReplayResult:
    """Re-execute *log* on a fresh core and return its canonical identity.

    *core_factory* must build a core in the same initial state the live
    service started from (same config/seed, same bootstrap catalogue);
    everything after that point is derived from the log alone.
    """
    core = core_factory()
    with use_recorder(Recorder()) as rec:
        batches: List[List[IngestRecord]] = []
        for record in log:
            if not batches or batches[-1][0].batch != record.batch:
                batches.append([record])
            else:
                batches[-1].append(record)
        for batch in batches:
            derived = core.admit_batch(
                [record.arrival for record in batch]
            )
            for recorded, fresh in zip(batch, derived):
                _check(recorded, fresh)
            for record in derived:
                if not record.admitted:
                    core.execute(record)
            for record in derived:
                if record.admitted:
                    core.execute(record)
        scores = core.final_scores()
        snapshot = rec.snapshot(meta=dict(meta or {}))
    return ReplayResult(
        responses=tuple(core.responses),
        final_scores=scores,
        snapshot=snapshot,
        log_sha256=log.sha256(),
        responses_sha256=responses_sha256(core.responses),
        scores_sha256=scores_sha256(scores),
        trace_sha256=snapshot_sha256(snapshot),
    )
