"""The always-on asyncio selection service.

:class:`SelectionService` is a concurrency shell around a synchronous
:class:`~repro.serve.core.ServiceCore`; the shell adds *no* canonical
state of its own, which is how the worker-count invariance gate holds:

* **Submission** registers an :class:`~repro.serve.protocol.Arrival`
  in a reorder buffer and returns a future.  Submission is synchronous
  up to the buffer insert — no awaits — so an arrival is never half
  registered.
* **The sequencer task** waits until the event loop is *quiescent*
  (a full cooperative yield adds no new arrivals — with closed-loop
  clients this means every client is blocked on a pending response),
  then flushes the whole buffer as one batch through
  :meth:`ServiceCore.admit_batch` in canonical ``(client_tick,
  client_id, client_seq)`` order.  Rejected arrivals settle their
  futures during the flush; admitted records enter a FIFO execution
  queue.
* **Worker tasks** pull records FIFO and run
  :meth:`ServiceCore.execute` *synchronously* — execution never
  suspends mid-record, so records execute in exactly log order no
  matter how many workers drain the queue, and every response is
  byte-identical from 1 worker or 8.

The scheduling batch boundary is also recorded in each
:class:`~repro.serve.protocol.IngestRecord`, so a replay reproduces
not just responses but the exact interleaving of admission and
execution telemetry.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Dict, List, Optional, Tuple

from repro.serve.core import ServiceCore
from repro.serve.protocol import (
    DEFAULT_TTL,
    Arrival,
    IngestRecord,
    ServeResponse,
    admin_arrival,
    deregister_arrival,
    feedback_arrival,
    rank_arrival,
    register_arrival,
)

__all__ = ["SelectionService"]


class SelectionService:
    """Async request/response API over a deterministic core."""

    def __init__(self, core: ServiceCore, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.core = core
        self.workers = workers
        self._buffer: List[Tuple[Tuple[int, str, int], int, Arrival]] = []
        self._futures: Dict[Tuple[int, str, int], "asyncio.Future[ServeResponse]"] = {}
        self._arrivals = 0
        self._client_seq: Dict[str, int] = {}
        self._queue: "asyncio.Queue[Optional[IngestRecord]]" = asyncio.Queue()
        self._wakeup: Optional[asyncio.Event] = None
        self._tasks: List["asyncio.Task[None]"] = []
        self._running = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._wakeup = asyncio.Event()
        loop = asyncio.get_running_loop()
        self._tasks = [loop.create_task(self._sequencer())]
        for _ in range(self.workers):
            self._tasks.append(loop.create_task(self._worker()))

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        assert self._wakeup is not None
        self._wakeup.set()
        for _ in range(self.workers):
            self._queue.put_nowait(None)
        await asyncio.gather(*self._tasks)
        self._tasks = []

    async def __aenter__(self) -> "SelectionService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- public API ---------------------------------------------------------

    def next_seq(self, client_id: str) -> int:
        """The submitting client's next per-client sequence number."""
        seq = self._client_seq.get(client_id, 0)
        self._client_seq[client_id] = seq + 1
        return seq

    async def submit(self, arrival: Arrival) -> ServeResponse:
        """Submit a pre-built arrival and await its typed response."""
        if not self._running:
            raise RuntimeError("service is not running")
        key = arrival.order_key
        if key in self._futures:
            raise ValueError(f"duplicate arrival key {key!r}")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ServeResponse]" = loop.create_future()
        self._futures[key] = future
        heapq.heappush(self._buffer, (key, self._arrivals, arrival))
        self._arrivals += 1
        assert self._wakeup is not None
        self._wakeup.set()
        return await future

    async def rank_for_consumer(
        self,
        *,
        now: float,
        client_id: str,
        tenant: str,
        category: str,
        perspective: Optional[str] = None,
        ttl: float = DEFAULT_TTL,
    ) -> ServeResponse:
        return await self.submit(
            rank_arrival(
                now=now,
                client_id=client_id,
                client_seq=self.next_seq(client_id),
                tenant=tenant,
                category=category,
                perspective=perspective,
                ttl=ttl,
            )
        )

    async def submit_feedback(
        self,
        *,
        now: float,
        client_id: str,
        tenant: str,
        rater: str,
        target: str,
        rating: float,
        ttl: float = DEFAULT_TTL,
    ) -> ServeResponse:
        return await self.submit(
            feedback_arrival(
                now=now,
                client_id=client_id,
                client_seq=self.next_seq(client_id),
                tenant=tenant,
                rater=rater,
                target=target,
                rating=rating,
                ttl=ttl,
            )
        )

    async def register_service(
        self,
        *,
        now: float,
        client_id: str,
        tenant: str,
        service: str,
        provider: str,
        category: str,
        version: int = 1,
        ttl: float = DEFAULT_TTL,
    ) -> ServeResponse:
        return await self.submit(
            register_arrival(
                now=now,
                client_id=client_id,
                client_seq=self.next_seq(client_id),
                tenant=tenant,
                service=service,
                provider=provider,
                category=category,
                version=version,
                ttl=ttl,
            )
        )

    async def deregister_service(
        self,
        *,
        now: float,
        client_id: str,
        tenant: str,
        service: str,
        ttl: float = DEFAULT_TTL,
    ) -> ServeResponse:
        return await self.submit(
            deregister_arrival(
                now=now,
                client_id=client_id,
                client_seq=self.next_seq(client_id),
                tenant=tenant,
                service=service,
                ttl=ttl,
            )
        )

    async def admin(
        self, *, now: float, client_id: str, action: str
    ) -> ServeResponse:
        return await self.submit(
            admin_arrival(
                now=now,
                client_id=client_id,
                client_seq=self.next_seq(client_id),
                action=action,
            )
        )

    # -- internals ----------------------------------------------------------

    async def _sequencer(self) -> None:
        assert self._wakeup is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._running:
                return
            # Quiescence: yield until one full cooperative cycle adds no
            # new arrivals.  Ready clients get to register their
            # submissions first, so a flush batch is a complete
            # closed-loop round regardless of coroutine interleaving.
            while True:
                seen = self._arrivals
                await asyncio.sleep(0)
                if self._arrivals == seen:
                    break
            if not self._buffer:
                continue
            self._flush()

    def _flush(self) -> None:
        batch: List[Arrival] = []
        while self._buffer:
            batch.append(heapq.heappop(self._buffer)[2])
        records = self.core.admit_batch(batch)
        for record in records:
            if record.admitted:
                self._queue.put_nowait(record)
            else:
                response = self.core.execute(record)
                self._settle(record.arrival.order_key, response)

    def _settle(
        self, key: Tuple[int, str, int], response: ServeResponse
    ) -> None:
        future = self._futures.pop(key)
        if not future.cancelled():
            future.set_result(response)

    async def _worker(self) -> None:
        while True:
            record = await self._queue.get()
            if record is None:
                return
            response = self.core.execute(record)
            self._settle(record.arrival.order_key, response)
