"""Closed-loop load generator for the serve layer.

Builds a seeded :func:`~repro.experiments.workloads.make_world`
catalogue, boots a :class:`~repro.serve.core.ServiceCore` +
:class:`~repro.serve.service.SelectionService`, and drives it with
closed-loop clients: each client ranks, rates the winner against the
world's ground-truth quality (with seeded noise), advances its own
*simulation* clock by a seeded think time, and repeats.  Optional
chaos segments inject a registry outage or a score-table rebuild
through the sequenced admin path, so degradation happens at a
deterministic point in the ingest log.

Two kinds of measurement come out of a run, deliberately separated:

* **Canonical** — the ingest log, responses, final scores, telemetry
  snapshot, and their sha256 identities.  Pure functions of the spec;
  the determinism gates compare them across worker counts, arrival
  interleavings, and replay.
* **Client-side** — an independent tally of response statuses per
  tenant (asserted equal to the server's ``serve.*`` metrics) and
  wall-clock rank latencies measured around each ``await``.  Wall
  times are real performance data and are *never* fed to the recorder
  or any canonical surface; they exist only in the report fields the
  benchmark reads.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.randomness import SeedSequenceFactory, make_rng
from repro.core.registry import default_registry
from repro.experiments.workloads import World, make_world
from repro.obs.recorder import Recorder, use_recorder
from repro.obs.trace import TelemetrySnapshot
from repro.registry.uddi import UDDIRegistry
from repro.serve.core import ServeConfig, ServiceCore
from repro.serve.protocol import IngestLog, ServeResponse, responses_sha256
from repro.serve.replay import (
    ReplayResult,
    replay_log,
    scores_sha256,
    snapshot_sha256,
)
from repro.serve.service import SelectionService
from repro.serve.sla import serve_sla_table, sla_counts

__all__ = [
    "LoadReport",
    "LoadSpec",
    "make_core",
    "replay_report",
    "run_loadgen",
]

_STATUS_KEYS = ("ok", "degraded", "failed", "expired", "shed", "throttled")


@dataclass(frozen=True)
class LoadSpec:
    """One reproducible closed-loop workload."""

    tenants: int = 2
    clients_per_tenant: int = 2
    requests_per_client: int = 20
    seed: int = 0
    model: str = "beta"
    n_providers: int = 4
    services_per_provider: int = 2
    category: str = "weather_report"
    think_time: float = 0.05
    think_jitter: float = 0.5
    rating_noise: float = 0.08
    workers: int = 2
    config: ServeConfig = ServeConfig()
    #: client rounds [a, b) during which the registry is failed
    outage_rounds: Optional[Tuple[int, int]] = None
    #: client rounds [a, b) during which the score table rebuilds
    rebuild_rounds: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if min(
            self.tenants, self.clients_per_tenant, self.requests_per_client
        ) < 1:
            raise ValueError("tenants/clients/requests must be >= 1")


@dataclass
class LoadReport:
    """Everything one load run produced (canonical + client-side)."""

    spec: LoadSpec
    workers: int
    responses: Tuple[ServeResponse, ...]
    log: IngestLog
    snapshot: TelemetrySnapshot
    final_scores: Dict[str, float]
    sla: List[Dict[str, Any]]
    tally: Dict[str, Dict[str, int]]
    wall_ns: Dict[str, List[int]] = field(repr=False, default_factory=dict)

    @property
    def log_sha256(self) -> str:
        return self.log.sha256()

    @property
    def responses_sha256(self) -> str:
        return responses_sha256(self.responses)

    @property
    def scores_sha256(self) -> str:
        return scores_sha256(self.final_scores)

    @property
    def trace_sha256(self) -> str:
        return snapshot_sha256(self.snapshot)

    def identity(self) -> Dict[str, str]:
        """The four canonical hashes every determinism gate compares."""
        return {
            "log": self.log_sha256,
            "responses": self.responses_sha256,
            "scores": self.scores_sha256,
            "trace": self.trace_sha256,
        }

    def tally_matches_sla(self) -> bool:
        """Client-side tally == the server's own SLA accounting."""
        server = sla_counts(self.sla)
        tenants = sorted(set(server) | set(self.tally))
        for tenant in tenants:
            if tenant == "_admin":
                continue
            mine = self.tally.get(tenant, {})
            theirs = server.get(tenant, {})
            for status in _STATUS_KEYS:
                if mine.get(status, 0) != theirs.get(status, 0):
                    return False
        return True

    def wall_quantiles_ms(self) -> Dict[str, Dict[str, float]]:
        """Client-measured wall-clock rank latency quantiles, per tenant
        plus ``_all``.  Not canonical; never hashed."""
        out: Dict[str, Dict[str, float]] = {}
        merged: List[int] = []
        for tenant in sorted(self.wall_ns):
            values = sorted(self.wall_ns[tenant])
            merged.extend(values)
            out[tenant] = _quantiles_ms(values)
        out["_all"] = _quantiles_ms(sorted(merged))
        return out


def _quantiles_ms(values: List[int]) -> Dict[str, float]:
    if not values:
        return {"p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
    def at(q: float) -> float:
        index = min(len(values) - 1, int(q * (len(values) - 1) + 0.5))
        return values[index] / 1e6
    return {
        "p50_ms": at(0.50),
        "p99_ms": at(0.99),
        "mean_ms": sum(values) / len(values) / 1e6,
    }


def build_world(spec: LoadSpec) -> World:
    return make_world(
        n_providers=spec.n_providers,
        services_per_provider=spec.services_per_provider,
        n_consumers=spec.tenants * spec.clients_per_tenant,
        seed=spec.seed,
        category=spec.category,
    )


def make_core(spec: LoadSpec) -> ServiceCore:
    """A fresh, bootstrapped core for *spec* — also the replay factory."""
    world = build_world(spec)
    registry = UDDIRegistry()
    models = default_registry(rng_seed=spec.seed)
    model = models.create(spec.model)
    core = ServiceCore(registry, model, config=spec.config)
    core.bootstrap([svc.description for svc in world.services])
    return core


class _Client:
    """One closed-loop client with its own sim clock and rng stream."""

    def __init__(
        self,
        spec: LoadSpec,
        tenant: str,
        client_id: str,
        index: int,
        world: World,
        seeds: SeedSequenceFactory,
        tally: Dict[str, Dict[str, int]],
        wall_ns: Dict[str, List[int]],
    ) -> None:
        self.spec = spec
        self.tenant = tenant
        self.client_id = client_id
        self.world = world
        self.rng = make_rng(seeds.spawn(f"loadgen.{client_id}"))
        # Distinct sub-tick offsets keep client ticks unique without
        # depending on arrival interleaving.
        self.now = (index + 1) / 1024.0
        self.tally = tally
        self.wall_ns = wall_ns

    def _think(self) -> float:
        jitter = self.spec.think_jitter * (
            2.0 * float(self.rng.random()) - 1.0
        )
        return self.spec.think_time * (1.0 + jitter)

    def _count(self, status: str) -> None:
        self.tally[self.tenant][status] += 1

    async def run_rounds(
        self, service: SelectionService, rounds: int
    ) -> None:
        for _ in range(rounds):
            started = time.perf_counter_ns()
            response = await service.rank_for_consumer(
                now=self.now,
                client_id=self.client_id,
                tenant=self.tenant,
                category=self.spec.category,
                perspective=self.client_id,
            )
            self.wall_ns[self.tenant].append(
                time.perf_counter_ns() - started
            )
            self._count(response.status)
            self.now += self._think()
            if response.ok and response.ranking:
                target = response.ranking[0][0]
                truth = self.world.true_quality.get(target, 0.5)
                noise = self.spec.rating_noise * (
                    2.0 * float(self.rng.random()) - 1.0
                )
                rating = min(1.0, max(0.0, truth + noise))
                feedback = await service.submit_feedback(
                    now=self.now,
                    client_id=self.client_id,
                    tenant=self.tenant,
                    rater=self.client_id,
                    target=target,
                    rating=rating,
                )
                self._count(feedback.status)
                self.now += self._think()


def _segments(spec: LoadSpec) -> List[Tuple[int, Optional[str], Optional[str]]]:
    """(rounds, admin-action-before, admin-action-after) segments."""
    boundaries: Dict[int, List[str]] = {}

    def mark(round_index: int, action: str) -> None:
        boundaries.setdefault(round_index, []).append(action)

    total = spec.requests_per_client
    if spec.outage_rounds is not None:
        start, end = spec.outage_rounds
        mark(min(start, total), "fail_registry")
        mark(min(end, total), "heal_registry")
    if spec.rebuild_rounds is not None:
        start, end = spec.rebuild_rounds
        mark(min(start, total), "begin_rebuild")
        mark(min(end, total), "end_rebuild")
    cuts = sorted(boundaries)
    segments: List[Tuple[int, Optional[str], Optional[str]]] = []
    previous = 0
    for cut in cuts:
        if cut > previous:
            segments.append((cut - previous, None, None))
        for action in boundaries[cut]:
            segments.append((0, action, None))
        previous = cut
    if total > previous:
        segments.append((total - previous, None, None))
    return segments


async def _drive(
    spec: LoadSpec, core: ServiceCore, workers: int
) -> Tuple[Dict[str, Dict[str, int]], Dict[str, List[int]]]:
    world = build_world(spec)
    seeds = SeedSequenceFactory(spec.seed)
    tally: Dict[str, Dict[str, int]] = {}
    wall_ns: Dict[str, List[int]] = {}
    clients: List[_Client] = []
    index = 0
    for t in range(spec.tenants):
        tenant = f"t{t}"
        tally[tenant] = {status: 0 for status in _STATUS_KEYS}
        wall_ns[tenant] = []
        for c in range(spec.clients_per_tenant):
            clients.append(
                _Client(
                    spec,
                    tenant,
                    f"{tenant}/c{c}",
                    index,
                    world,
                    seeds,
                    tally,
                    wall_ns,
                )
            )
            index += 1
    admin_now = 0.0
    async with SelectionService(core, workers=workers) as service:
        for rounds, action, _ in _segments(spec):
            if action is not None:
                admin_now = max(
                    [admin_now] + [client.now for client in clients]
                )
                await service.admin(
                    now=admin_now, client_id="_admin/c0", action=action
                )
                continue
            if rounds:
                await asyncio.gather(
                    *(
                        client.run_rounds(service, rounds)
                        for client in clients
                    )
                )
    return tally, wall_ns


def run_loadgen(
    spec: LoadSpec, workers: Optional[int] = None
) -> LoadReport:
    """Run one closed-loop load generation and return its report."""
    worker_count = spec.workers if workers is None else workers
    core = make_core(spec)
    with use_recorder(Recorder()) as rec:
        tally, wall_ns = asyncio.run(_drive(spec, core, worker_count))
        scores = core.final_scores()
        snapshot = rec.snapshot(
            meta={"seed": spec.seed, "model": spec.model, "kind": "serve"}
        )
    sla = serve_sla_table(snapshot.metrics, slo=spec.config.slo)
    return LoadReport(
        spec=spec,
        workers=worker_count,
        responses=tuple(core.responses),
        log=core.log,
        snapshot=snapshot,
        final_scores=scores,
        sla=sla,
        tally=tally,
        wall_ns=wall_ns,
    )


def replay_report(spec: LoadSpec, log: IngestLog) -> ReplayResult:
    """Replay *log* on a fresh core built from *spec*."""
    return replay_log(
        lambda: make_core(spec),
        log,
        meta={"seed": spec.seed, "model": spec.model, "kind": "serve"},
    )
