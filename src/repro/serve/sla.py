"""Per-tenant SLA accounting derived from the ``serve.*`` metrics.

Everything here is computed from a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot — the same canonical structure :mod:`repro.obs.summarize`
renders and :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshots`
merges — so the SLA table is byte-identical wherever it is computed:
inside the load generator, from a replayed log, or offline from a
telemetry JSONL file.

Quantiles are *upper-bound estimates from histogram buckets*: the
smallest bucket boundary whose cumulative count reaches the requested
rank, clamped to the top boundary for overflow observations.  That
makes them deterministic integers-over-fixed-boundaries rather than
interpolated floats — coarser, but canonical.

Error budget burn follows the SRE convention: with an availability
objective ``slo`` (fraction of submitted requests that must be served,
degraded service counting as served), a burn rate of 1.0 means the
observed failure fraction exactly consumes the budget ``1 - slo``;
values above 1.0 mean the tenant is burning budget faster than the
objective allows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "SERVE_LATENCY_BUCKETS",
    "SERVE_WAIT_BUCKETS",
    "histogram_quantile",
    "serve_sla_table",
    "serve_tenants",
    "sla_counts",
]

#: sub-sim-unit histogram boundaries for queue wait and rank latency.
#: The default obs buckets start at 1 sim unit — far too coarse for a
#: virtual queue that drains hundreds of requests per unit.
SERVE_WAIT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

SERVE_LATENCY_BUCKETS: Tuple[float, ...] = SERVE_WAIT_BUCKETS


def histogram_quantile(entry: Mapping[str, Any], q: float) -> float:
    """Upper-bound *q*-quantile of one histogram series entry.

    *entry* is the snapshot form ``{"buckets", "counts", "count",
    "sum"}``.  Returns 0.0 for an empty series; overflow observations
    clamp to the top boundary.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = int(entry["count"])
    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0
    buckets = entry["buckets"]
    for bound, count in zip(buckets, entry["counts"]):
        cumulative += int(count)
        if cumulative >= rank:
            return float(bound)
    return float(buckets[-1])


def _series_map(
    metrics: Mapping[str, Any], name: str
) -> Dict[Tuple[str, ...], Any]:
    metric = metrics.get(name)
    if not metric:
        return {}
    return {tuple(key): value for key, value in metric["series"]}


def serve_tenants(metrics: Mapping[str, Any]) -> List[str]:
    """Sorted tenants that appear in any ``serve.*`` series."""
    tenants: Dict[str, None] = {}
    for name in ("serve.admission", "serve.requests"):
        for key in _series_map(metrics, name):
            tenants[key[0]] = None
    return sorted(tenants)


def _tenant_histogram(
    metrics: Mapping[str, Any], name: str, tenant: str
) -> Mapping[str, Any]:
    entry = _series_map(metrics, name).get((tenant,))
    if entry is None:
        return {"buckets": list(SERVE_WAIT_BUCKETS), "counts": [], "count": 0, "sum": 0.0}
    return entry


def serve_sla_table(
    metrics: Mapping[str, Any], slo: float = 0.99
) -> List[Dict[str, Any]]:
    """One sorted row of SLA numbers per tenant.

    Row fields: submitted/admitted/shed/throttled admission counts;
    ok/degraded/failed/expired execution counts; ``shed_rate`` (shed +
    throttled over submitted); p50/p99 queue wait and rank latency in
    sim units; ``error_budget_burn`` against *slo*.
    """
    if not 0.0 < slo < 1.0:
        raise ValueError("slo must be in (0, 1)")
    admission = _series_map(metrics, "serve.admission")
    requests = _series_map(metrics, "serve.requests")
    rows: List[Dict[str, Any]] = []
    for tenant in serve_tenants(metrics):
        decisions = {
            key[1]: int(value)
            for key, value in sorted(admission.items())
            if key[0] == tenant
        }
        statuses: Dict[str, int] = {}
        for key, value in sorted(requests.items()):
            if key[0] == tenant:
                statuses[key[2]] = statuses.get(key[2], 0) + int(value)
        admitted = decisions.get("admitted", 0)
        shed = decisions.get("shed", 0)
        throttled = decisions.get("throttled", 0)
        submitted = admitted + shed + throttled
        served = statuses.get("ok", 0) + statuses.get("degraded", 0)
        unserved = submitted - served
        shed_rate = (shed + throttled) / submitted if submitted else 0.0
        burn = (
            (unserved / submitted) / (1.0 - slo) if submitted else 0.0
        )
        wait = _tenant_histogram(metrics, "serve.queue_wait", tenant)
        latency = _tenant_histogram(metrics, "serve.rank.latency", tenant)
        rows.append(
            {
                "tenant": tenant,
                "submitted": submitted,
                "admitted": admitted,
                "shed": shed,
                "throttled": throttled,
                "ok": statuses.get("ok", 0),
                "degraded": statuses.get("degraded", 0),
                "failed": statuses.get("failed", 0),
                "expired": statuses.get("expired", 0),
                "shed_rate": shed_rate,
                "queue_wait_p50": histogram_quantile(wait, 0.50),
                "queue_wait_p99": histogram_quantile(wait, 0.99),
                "rank_latency_p50": histogram_quantile(latency, 0.50),
                "rank_latency_p99": histogram_quantile(latency, 0.99),
                "error_budget_burn": burn,
                "slo": slo,
            }
        )
    return rows


def sla_counts(rows: Sequence[Mapping[str, Any]]) -> Dict[str, Dict[str, int]]:
    """``{tenant: {status/decision: count}}`` view of an SLA table,
    the shape the load generator's independent client-side tally uses."""
    out: Dict[str, Dict[str, int]] = {}
    for row in rows:
        out[str(row["tenant"])] = {
            "ok": int(row["ok"]),
            "degraded": int(row["degraded"]),
            "failed": int(row["failed"]),
            "expired": int(row["expired"]),
            "shed": int(row["shed"]),
            "throttled": int(row["throttled"]),
        }
    return out
