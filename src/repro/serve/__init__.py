"""Always-on async selection service with deterministic ingest.

Layers, bottom up:

* :mod:`repro.serve.protocol` — typed arrivals, ingest records, the
  append-only :class:`IngestLog`, and :class:`ServeResponse`;
* :mod:`repro.serve.ingest` — integer-tick admission control: a
  per-tenant :class:`TokenBucket` (throttle) feeding a virtual
  :class:`FluidQueue` (shed + deterministic queue wait);
* :mod:`repro.serve.core` — :class:`ServiceCore`, the synchronous
  deterministic heart: admission, execution, degradation ladder
  (retry → breaker → stale-ranking fallback), and ``serve.*``
  telemetry;
* :mod:`repro.serve.service` — :class:`SelectionService`, the asyncio
  shell (quiescence-flush sequencer + FIFO workers) that adds no
  canonical state;
* :mod:`repro.serve.replay` — byte-identical re-execution of an
  ingest log on a fresh core;
* :mod:`repro.serve.sla` — per-tenant SLA table (quantiles, shed
  rate, error budget burn) derived from the metrics snapshot;
* :mod:`repro.serve.loadgen` — closed-loop load generator with an
  independent client-side tally and wall-clock measurement.
"""

from repro.serve.core import (
    BACKEND_REGISTRY,
    BACKEND_SCORING,
    RebuildInProgressError,
    ServeConfig,
    ServiceCore,
)
from repro.serve.ingest import (
    AdmissionConfig,
    AdmissionController,
    FluidQueue,
    TokenBucket,
    ticks_per_event,
)
from repro.serve.loadgen import (
    LoadReport,
    LoadSpec,
    replay_report,
    run_loadgen,
)
from repro.serve.protocol import (
    Arrival,
    IngestLog,
    IngestRecord,
    ServeResponse,
    feedback_arrival,
    rank_arrival,
    responses_sha256,
)
from repro.serve.replay import (
    ReplayDivergenceError,
    ReplayResult,
    replay_log,
    scores_sha256,
    snapshot_sha256,
)
from repro.serve.service import SelectionService
from repro.serve.sla import (
    SERVE_LATENCY_BUCKETS,
    SERVE_WAIT_BUCKETS,
    histogram_quantile,
    serve_sla_table,
    serve_tenants,
    sla_counts,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Arrival",
    "BACKEND_REGISTRY",
    "BACKEND_SCORING",
    "FluidQueue",
    "IngestLog",
    "IngestRecord",
    "LoadReport",
    "LoadSpec",
    "RebuildInProgressError",
    "ReplayDivergenceError",
    "ReplayResult",
    "SERVE_LATENCY_BUCKETS",
    "SERVE_WAIT_BUCKETS",
    "SelectionService",
    "ServeConfig",
    "ServeResponse",
    "ServiceCore",
    "TokenBucket",
    "feedback_arrival",
    "histogram_quantile",
    "rank_arrival",
    "replay_log",
    "replay_report",
    "responses_sha256",
    "run_loadgen",
    "scores_sha256",
    "serve_sla_table",
    "serve_tenants",
    "sla_counts",
    "snapshot_sha256",
    "ticks_per_event",
]
