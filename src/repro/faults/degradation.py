"""Graceful degradation: stale caches with age-discounted confidence.

When the fresh reputation path is down (registry outage, overlay
partition, open circuit), crashing or returning nothing turns a
transient transport fault into a selection outage.  The survey's
dynamics argument (Section 3: old experiences lose relevance over time)
gives the principled alternative: serve the last known answer, but
*discount its confidence by its age* using the same
:class:`~repro.core.decay.DecayPolicy` machinery the reputation models
use for old ratings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import ConfigurationError
from repro.obs.recorder import get_recorder

if TYPE_CHECKING:  # runtime imports are lazy to avoid package cycles:
    # repro.core and repro.models both (transitively) import the modules
    # that use these caches.
    from repro.core.decay import DecayPolicy
    from repro.models.base import ScoredTarget


@dataclass(frozen=True)
class StaleValue:
    """A cached value plus how much it should still be believed."""

    value: Any
    age: float
    confidence: float  # decay weight of the age, in [0, 1]


class StaleCache:
    """Last-known-good cache with decay-based confidence.

    Args:
        decay: maps entry age to a confidence in ``[0, 1]``; defaults to
            an exponential half-life of 20 time units.
        max_age: entries older than this are treated as missing (a hard
            floor under the smooth discount).
    """

    def __init__(
        self,
        decay: Optional["DecayPolicy"] = None,
        max_age: Optional[float] = None,
    ) -> None:
        if max_age is not None and max_age <= 0:
            raise ConfigurationError("max_age must be positive")
        if decay is None:
            from repro.core.decay import ExponentialDecay

            decay = ExponentialDecay(half_life=20.0)
        self.decay = decay
        self.max_age = max_age
        self._entries: Dict[Hashable, Tuple[Any, float]] = {}
        self.hits = 0
        self.misses = 0

    def put(self, key: Hashable, value: Any, now: float) -> None:
        self._entries[key] = (value, now)

    def get(self, key: Hashable, now: float) -> Optional[StaleValue]:
        """The cached value for *key*, or None when absent/too old."""
        stale = self._lookup(key, now)
        rec = get_recorder()
        if rec.enabled:
            rec.count(
                "degradation.stale_cache.hits"
                if stale is not None
                else "degradation.stale_cache.misses"
            )
        return stale

    def _lookup(self, key: Hashable, now: float) -> Optional[StaleValue]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        value, stored_at = entry
        age = max(0.0, now - stored_at)
        if self.max_age is not None and age > self.max_age:
            self.misses += 1
            return None
        confidence = self.decay.weight(age)
        if confidence <= 0.0:
            self.misses += 1
            return None
        self.hits += 1
        return StaleValue(value=value, age=age, confidence=confidence)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


def discounted_score(
    score: float, confidence: float, prior: float = 0.5
) -> float:
    """Shrink *score* toward *prior* as confidence decays.

    Full confidence returns the score unchanged; zero confidence returns
    the prior (maximal uncertainty), mirroring how models score targets
    with no evidence at all.
    """
    if not 0.0 <= confidence <= 1.0:
        raise ConfigurationError("confidence must be in [0, 1]")
    return prior + confidence * (score - prior)


class StaleRankingFallback(StaleCache):
    """Stale cache specialised for selection rankings.

    :class:`~repro.core.selection.SelectionEngine` remembers every
    successful ranking here; when the fresh scoring path raises, the
    engine recalls the last ranking with every score shrunk toward the
    0.5 prior by the entry's age confidence — degraded but still
    actionable, and honest about how much it still knows.
    """

    def remember(
        self, key: Hashable, ranking: "Sequence[ScoredTarget]", now: float
    ) -> None:
        self.put(key, tuple(ranking), now)

    def recall(
        self, key: Hashable, now: float, prior: float = 0.5
    ) -> "Optional[List[ScoredTarget]]":
        from repro.models.base import ScoredTarget

        stale = self.get(key, now)
        if stale is None:
            return None
        rec = get_recorder()
        if rec.enabled:
            rec.count("degradation.fallback.activations")
        return [
            ScoredTarget(
                target=st.target,
                score=discounted_score(st.score, stale.confidence, prior),
            )
            for st in stale.value
        ]
