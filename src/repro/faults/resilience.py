"""Resilience policies: retry with backoff, circuit breakers, timeouts.

The counterpart of :mod:`repro.faults.plan`: fault plans make the
transport unreliable, these policies let clients stay correct anyway.
All time is *simulation* time passed in explicitly — backoff delays are
accounted, not slept, and breakers judge recovery against the caller's
clock — which keeps every policy deterministic under a fixed seed.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Type

from repro.common.errors import ConfigurationError, ReproError
from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng
from repro.obs.recorder import get_recorder


class CircuitOpenError(ReproError):
    """A call was refused because the target's circuit breaker is open."""


@dataclass(frozen=True)
class Timeout:
    """An invocation time budget in simulation seconds.

    Pure value semantics: components compare an observed or simulated
    latency against the budget; there is no wall-clock alarm.
    """

    budget: float

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ConfigurationError("timeout budget must be positive")

    def exceeded(self, elapsed: float) -> bool:
        return elapsed > self.budget


@dataclass
class CallOutcome:
    """Result of a retried call: value or final error, plus cost."""

    value: Any
    attempts: int
    backoff_delay: float
    error: Optional[BaseException] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None


class RetryPolicy:
    """Exponential backoff with jitter, deterministic under a seed.

    The *attempt*-th retry waits
    ``base_delay * multiplier**(attempt-1)`` capped at ``max_delay``,
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` — the standard decorrelation trick so a
    fleet of clients does not retry in lockstep, kept reproducible by
    drawing from a :mod:`repro.common.randomness` generator.

    Args:
        max_attempts: total tries including the first (>= 1).
        base_delay: backoff before the first retry.
        multiplier: exponential growth factor per retry.
        max_delay: cap on any single backoff.
        jitter: relative jitter amplitude in ``[0, 1]``.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        rng: RngLike = None,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = make_rng(rng)
        self.retries_used = 0

    def backoff(self, attempt: int) -> float:
        """Backoff delay after failed attempt number *attempt* (1-based)."""
        if attempt < 1:
            raise ConfigurationError("attempt must be >= 1")
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter > 0:
            scale = 1.0 + self.jitter * (2.0 * float(self._rng.random()) - 1.0)
            raw *= scale
        return raw

    def call(
        self,
        fn: Callable[[], Any],
        retry_on: Tuple[Type[BaseException], ...] = (ReproError,),
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> CallOutcome:
        """Run *fn* with retries; never raises *retry_on* exceptions.

        Returns a :class:`CallOutcome` carrying either the value or the
        last error after the budget is exhausted, plus the attempts used
        and the total (simulated) backoff delay accumulated.
        """
        delay = 0.0
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                value = fn()
            except retry_on as exc:
                last = exc
                if attempt < self.max_attempts:
                    delay += self.backoff(attempt)
                    self.retries_used += 1
                    rec = get_recorder()
                    if rec.enabled:
                        rec.count("resilience.retries")
                    if on_retry is not None:
                        on_retry(attempt, exc)
                continue
            return CallOutcome(value, attempt, delay)
        return CallOutcome(None, self.max_attempts, delay, error=last)


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __str__(self) -> str:  # compact in transition logs
        return self.value


class CircuitBreaker:
    """Failure-rate circuit breaker with half-open probing.

    Standard three-state machine over a sliding window of outcomes:

    * **closed** — calls flow; when at least *min_calls* of the last
      *window* outcomes are recorded and the failure rate reaches
      *failure_rate_threshold*, the breaker opens.
    * **open** — :meth:`allow` refuses everything until
      *recovery_timeout* simulation seconds after opening, then moves to
      half-open.
    * **half-open** — up to *half_open_max_calls* trial calls pass;
      one failure re-opens, enough successes close and clear the window.

    Every transition is recorded as ``(time, from, to)`` in
    :attr:`transitions` so experiments can assert the
    closed → open → half-open → closed path actually happened.
    """

    def __init__(
        self,
        failure_rate_threshold: float = 0.5,
        window: int = 10,
        min_calls: int = 4,
        recovery_timeout: float = 5.0,
        half_open_max_calls: int = 1,
        name: str = "",
    ) -> None:
        if not 0.0 < failure_rate_threshold <= 1.0:
            raise ConfigurationError(
                "failure_rate_threshold must be in (0, 1]"
            )
        if window < 1 or min_calls < 1 or min_calls > window:
            raise ConfigurationError(
                "need 1 <= min_calls <= window"
            )
        if recovery_timeout <= 0:
            raise ConfigurationError("recovery_timeout must be positive")
        if half_open_max_calls < 1:
            raise ConfigurationError("half_open_max_calls must be >= 1")
        self.failure_rate_threshold = failure_rate_threshold
        self.window = window
        self.min_calls = min_calls
        self.recovery_timeout = recovery_timeout
        self.half_open_max_calls = half_open_max_calls
        self.name = name
        self.state = BreakerState.CLOSED
        self.transitions: List[Tuple[float, BreakerState, BreakerState]] = []
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._opened_at = 0.0
        self._trials_started = 0
        self._trial_successes = 0
        self.calls_refused = 0

    def _transition(self, to: BreakerState, now: float) -> None:
        self.transitions.append((now, self.state, to))
        rec = get_recorder()
        if rec.enabled:
            rec.count(
                "resilience.breaker.transitions",
                labels=(self.state.value, to.value),
                label_names=("from", "to"),
            )
            rec.event(
                "breaker.transition",
                time=now,
                attrs={
                    "breaker": self.name,
                    "from": self.state.value,
                    "to": to.value,
                },
            )
        self.state = to
        if to is BreakerState.OPEN:
            self._opened_at = now
        if to is BreakerState.HALF_OPEN:
            self._trials_started = 0
            self._trial_successes = 0
        if to is BreakerState.CLOSED:
            self._outcomes.clear()

    @property
    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return self._outcomes.count(False) / len(self._outcomes)

    def allow(self, now: float) -> bool:
        """May a call proceed at simulation time *now*?

        Performs the open → half-open transition when the recovery
        timeout has elapsed, and meters half-open trial calls.
        """
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.recovery_timeout:
                self._transition(BreakerState.HALF_OPEN, now)
            else:
                self.calls_refused += 1
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self._trials_started >= self.half_open_max_calls:
                self.calls_refused += 1
                return False
            self._trials_started += 1
        return True

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._trial_successes += 1
            if self._trial_successes >= self.half_open_max_calls:
                self._transition(BreakerState.CLOSED, now)
            return
        self._outcomes.append(True)

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN, now)
            return
        if self.state is BreakerState.OPEN:
            return
        self._outcomes.append(False)
        if (
            len(self._outcomes) >= self.min_calls
            and self.failure_rate >= self.failure_rate_threshold
        ):
            self._transition(BreakerState.OPEN, now)

    def guard(self, now: float) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow(now):
            raise CircuitOpenError(
                f"circuit {self.name or id(self)} is {self.state}"
            )

    def saw_states(self, *states: BreakerState) -> bool:
        """True when every state in *states* was ever entered."""
        entered = {t for _, _, t in self.transitions}
        entered.add(BreakerState.CLOSED)  # initial state
        return all(s in entered for s in states)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"failure_rate={self.failure_rate:.2f})"
        )


class BreakerBoard:
    """Per-target circuit breakers created on demand with one config.

    Clients talking to many remote nodes (registry replicas, overlay
    peers) keep one breaker per target so a single bad node cannot
    open-circuit the rest.
    """

    def __init__(self, **breaker_kwargs: Any) -> None:
        self._kwargs = dict(breaker_kwargs)
        self._breakers: Dict[EntityId, CircuitBreaker] = {}

    def for_target(self, target: EntityId) -> CircuitBreaker:
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = CircuitBreaker(name=str(target), **self._kwargs)
            self._breakers[target] = breaker
        return breaker

    def breakers(self) -> Dict[EntityId, CircuitBreaker]:
        return dict(self._breakers)

    def open_targets(self) -> List[EntityId]:
        return sorted(
            t
            for t, b in self._breakers.items()
            if b.state is not BreakerState.CLOSED
        )
