"""Composable, seeded fault plans.

Section 5 of the survey argues that a centralized reputation registry is
a single point of failure while decentralized overlays degrade
gracefully under node churn.  Testing that claim needs faults that are
*reproducible*: the same seed must produce the same crash schedule, the
same dropped messages, and the same slow-provider windows, so that two
deployments can be compared under literally identical adversity.

A :class:`FaultPlan` bundles four independent fault dimensions:

* **node churn** — a :class:`ChurnSchedule` of crash/restart windows per
  node, generated as a seeded renewal process (exponential uptime and
  downtime), applied to the :class:`~repro.sim.network.Network` failed
  set and to overlay peers' ``online`` flags;
* **message faults** — a :class:`MessageFaultInjector` hook installed on
  the network that drops, delays, or duplicates individual messages;
* **registry unavailability** — explicit :class:`OutageWindow` lists per
  registry node, driven into
  :class:`~repro.registry.qos_registry.CentralQoSRegistry`;
* **slow providers** — per-service windows during which response-time
  metrics inflate by ``slowdown_factor``, so invocation-level timeouts
  (:class:`~repro.faults.resilience.Timeout`) actually fire.

Everything is driven from simulation time: call :meth:`FaultPlan.apply`
at the start of each round to synchronise component state with the
schedule.  Nothing here mutates global state or wall clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng

if TYPE_CHECKING:  # avoid an import cycle with repro.sim.network
    from repro.p2p.node import Peer
    from repro.registry.qos_registry import CentralQoSRegistry
    from repro.sim.network import Network


@dataclass(frozen=True)
class OutageWindow:
    """A half-open interval ``[start, end)`` during which a fault holds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError("outage window must have end >= start")

    def active(self, time: float) -> bool:
        return self.start <= time < self.end

    @property
    def duration(self) -> float:
        return self.end - self.start


def any_active(windows: Iterable[OutageWindow], time: float) -> bool:
    """True when *time* falls inside any of *windows*."""
    return any(w.active(time) for w in windows)


class ChurnSchedule:
    """Deterministic crash/restart windows per node.

    The schedule is data, not behaviour: it holds the full timeline of
    downtime windows for every node it covers, so the same schedule
    object can drive two different deployments through identical churn.
    """

    def __init__(
        self, windows: Mapping[EntityId, Sequence[OutageWindow]]
    ) -> None:
        self._windows: Dict[EntityId, Tuple[OutageWindow, ...]] = {
            node: tuple(wins) for node, wins in windows.items()
        }

    @classmethod
    def generate(
        cls,
        nodes: Sequence[EntityId],
        horizon: float,
        mean_uptime: float = 20.0,
        mean_downtime: float = 3.0,
        rng: RngLike = None,
    ) -> "ChurnSchedule":
        """Seeded renewal-process churn: up ~Exp(mean_uptime), down
        ~Exp(mean_downtime), per node, until *horizon*.

        Nodes are processed in sorted order so the schedule depends only
        on the seed and the node *set*, not on input ordering.
        """
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ConfigurationError("mean up/downtime must be positive")
        gen = make_rng(rng)
        windows: Dict[EntityId, Tuple[OutageWindow, ...]] = {}
        for node in sorted(nodes):
            t = float(gen.exponential(mean_uptime))
            wins: List[OutageWindow] = []
            while t < horizon:
                down = float(gen.exponential(mean_downtime))
                wins.append(OutageWindow(t, t + down))
                t += down + float(gen.exponential(mean_uptime))
            windows[node] = tuple(wins)
        return cls(windows)

    def nodes(self) -> Tuple[EntityId, ...]:
        return tuple(sorted(self._windows))

    def windows_for(self, node: EntityId) -> Tuple[OutageWindow, ...]:
        return self._windows.get(node, ())

    def down(self, node: EntityId, time: float) -> bool:
        return any_active(self._windows.get(node, ()), time)

    def downtime(self, node: EntityId) -> float:
        return sum(w.duration for w in self._windows.get(node, ()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChurnSchedule):
            return NotImplemented
        return self._windows == other._windows

    def __repr__(self) -> str:
        total = sum(len(w) for w in self._windows.values())
        return (
            f"ChurnSchedule({len(self._windows)} nodes, "
            f"{total} outage windows)"
        )


@dataclass(frozen=True)
class MessagePerturbation:
    """What the fault injector decided for one message."""

    drop: bool = False
    extra_delay: float = 0.0
    duplicates: int = 0


class MessageFaultInjector:
    """Seeded per-message drop / delay / duplication.

    Installed on a :class:`~repro.sim.network.Network` (the network
    consults it for every message between healthy nodes).  Decisions are
    drawn from the injector's own generator, so the sequence of faults
    is a deterministic function of the seed and the message order.

    Args:
        drop_rate: probability a message silently disappears in transit.
        duplicate_rate: probability one extra copy is delivered.
        delay_rate: probability the message is slowed by an extra
            exponential delay of mean *extra_delay*.
        kinds: when given, only message kinds in this set are perturbed
            (lets a plan target e.g. only ``qos-query`` traffic).
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        extra_delay: float = 0.05,
        kinds: Optional[Iterable[str]] = None,
        rng: RngLike = None,
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_rate", delay_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if extra_delay < 0:
            raise ConfigurationError("extra_delay must be non-negative")
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.extra_delay = extra_delay
        self.kinds = frozenset(kinds) if kinds is not None else None
        self._rng = make_rng(rng)
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def perturb(self, kind: str) -> MessagePerturbation:
        """Decide the fate of one message of *kind*."""
        if self.kinds is not None and kind not in self.kinds:
            return MessagePerturbation()
        if self.drop_rate > 0 and self._rng.random() < self.drop_rate:
            self.dropped += 1
            return MessagePerturbation(drop=True)
        extra = 0.0
        if self.delay_rate > 0 and self._rng.random() < self.delay_rate:
            extra = float(self._rng.exponential(self.extra_delay))
            self.delayed += 1
        duplicates = 0
        if (
            self.duplicate_rate > 0
            and self._rng.random() < self.duplicate_rate
        ):
            duplicates = 1
            self.duplicated += 1
        return MessagePerturbation(extra_delay=extra, duplicates=duplicates)


@dataclass
class FaultPlan:
    """A composed, seeded schedule of everything that goes wrong.

    All four dimensions are optional; an empty plan is a no-op.  The
    plan is *pure data plus one hook*: time-window faults are pushed
    into components via :meth:`apply`, while per-message faults are
    pulled by the network through :attr:`message_faults`.
    """

    churn: Optional[ChurnSchedule] = None
    message_faults: Optional[MessageFaultInjector] = None
    registry_outages: Mapping[EntityId, Sequence[OutageWindow]] = field(
        default_factory=dict
    )
    slow_services: Mapping[EntityId, Sequence[OutageWindow]] = field(
        default_factory=dict
    )
    slowdown_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.slowdown_factor < 1.0:
            raise ConfigurationError("slowdown_factor must be >= 1")
        self.registry_outages = {
            node: tuple(wins) for node, wins in self.registry_outages.items()
        }
        self.slow_services = {
            svc: tuple(wins) for svc, wins in self.slow_services.items()
        }

    # -- predicates ------------------------------------------------------
    def node_down(self, node: EntityId, time: float) -> bool:
        """True when *node* is crashed (churn or registry outage)."""
        if self.churn is not None and self.churn.down(node, time):
            return True
        return any_active(self.registry_outages.get(node, ()), time)

    def registry_down(self, registry_id: EntityId, time: float) -> bool:
        return self.node_down(registry_id, time)

    def slowdown(self, service: EntityId, time: float) -> float:
        """Response-time inflation factor for *service* at *time*."""
        if any_active(self.slow_services.get(service, ()), time):
            return self.slowdown_factor
        return 1.0

    def scheduled_nodes(self) -> Tuple[EntityId, ...]:
        nodes = set(self.registry_outages)
        if self.churn is not None:
            nodes.update(self.churn.nodes())
        return tuple(sorted(nodes))

    # -- application -----------------------------------------------------
    def attach(self, network: "Network") -> None:
        """Install the per-message fault hook on *network*."""
        network.faults = self.message_faults

    def apply(
        self,
        time: float,
        network: Optional["Network"] = None,
        registries: Iterable["CentralQoSRegistry"] = (),
        peers: Iterable["Peer"] = (),
    ) -> None:
        """Synchronise component state with the schedule at *time*.

        Idempotent: call it once per round (or as often as convenient).
        Only nodes the plan actually schedules are touched, so faults
        injected by other means are left alone.
        """
        if network is not None:
            for node in self.scheduled_nodes():
                if self.node_down(node, time):
                    network.fail_node(node)
                else:
                    network.heal_node(node)
        for registry in registries:
            if self.registry_down(registry.registry_id, time):
                registry.fail()
            else:
                registry.heal()
        for peer in peers:
            if self.node_down(peer.peer_id, time):
                peer.crash()
            else:
                peer.restart()
