"""Fault injection and resilience for the selection stack.

Three layers, used together by the chaos experiments:

* :mod:`repro.faults.plan` — seeded, composable :class:`FaultPlan`
  objects describing *what goes wrong when* (node churn, message
  drop/delay/duplication, registry outage windows, slow providers);
* :mod:`repro.faults.resilience` — client-side policies that keep the
  pipeline correct anyway (:class:`RetryPolicy` with exponential
  backoff + jitter, per-target :class:`CircuitBreaker`,
  :class:`Timeout` budgets);
* :mod:`repro.faults.degradation` — stale-cache fallbacks with
  age-discounted confidence so selection degrades instead of failing.
"""

from repro.faults.degradation import (
    StaleCache,
    StaleRankingFallback,
    StaleValue,
    discounted_score,
)
from repro.faults.plan import (
    ChurnSchedule,
    FaultPlan,
    MessageFaultInjector,
    MessagePerturbation,
    OutageWindow,
    any_active,
)
from repro.faults.resilience import (
    BreakerBoard,
    BreakerState,
    CallOutcome,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    Timeout,
)

__all__ = [
    "BreakerBoard",
    "BreakerState",
    "CallOutcome",
    "ChurnSchedule",
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultPlan",
    "MessageFaultInjector",
    "MessagePerturbation",
    "OutageWindow",
    "RetryPolicy",
    "StaleCache",
    "StaleRankingFallback",
    "StaleValue",
    "Timeout",
    "any_active",
    "discounted_score",
]
