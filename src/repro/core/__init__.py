"""The selection framework: typology, facets, selection engine, scenarios.

This is the paper's own contribution made executable — the
three-criterion typology of Figure 4, multi-faceted trust aggregation,
and the selection loop that puts a reputation mechanism to work choosing
among redundant services.
"""

from repro.core.typology import (
    Architecture,
    Scope,
    Subject,
    Typology,
    TypologyTree,
    classification_tree,
)
from repro.core.decay import (
    DecayPolicy,
    ExponentialDecay,
    NoDecay,
    SlidingWindow,
)
from repro.core.facets import FacetTrust, combine_facets
from repro.core.selection import (
    SelectionEngine,
    SelectionPolicy,
    EpsilonGreedyPolicy,
    GreedyPolicy,
    SoftmaxPolicy,
)
from repro.core.registry import (
    ModelInfo,
    ModelRegistry,
    default_registry,
)
from repro.core.scenarios import (
    DirectSelectionScenario,
    MediatedSelectionScenario,
    ScenarioResult,
)
from repro.core.eventdriven import EventDrivenResult, EventDrivenScenario

__all__ = [
    "Architecture",
    "DecayPolicy",
    "DirectSelectionScenario",
    "EpsilonGreedyPolicy",
    "EventDrivenResult",
    "EventDrivenScenario",
    "ExponentialDecay",
    "FacetTrust",
    "GreedyPolicy",
    "MediatedSelectionScenario",
    "ModelInfo",
    "ModelRegistry",
    "NoDecay",
    "ScenarioResult",
    "Scope",
    "SelectionEngine",
    "SelectionPolicy",
    "SlidingWindow",
    "SoftmaxPolicy",
    "Subject",
    "Typology",
    "TypologyTree",
    "classification_tree",
    "combine_facets",
    "default_registry",
]
