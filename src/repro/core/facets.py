"""Multi-faceted, context-specific, dynamic trust (Section 3).

The paper names three shared characteristics of trust and reputation:

* **context-specific** — John may be trusted as a doctor but not as a
  mechanic; here a *context* string partitions all evidence,
* **multi-faceted** — within one context, trust develops per QoS aspect
  and the overall value is a preference-weighted combination, and
* **dynamic** — trust grows/decays with experience and with time.

:class:`FacetTrust` implements all three on a Beta-evidence substrate:
evidence is accumulated per ``(context, target, facet)`` with a decay
policy applied at query time, and :func:`combine_facets` folds facet
scores under a preference profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.decay import DecayPolicy, NoDecay

#: The context used when callers don't partition evidence.
DEFAULT_CONTEXT = "default"


def combine_facets(
    facet_scores: Mapping[str, float],
    weights: Optional[Mapping[str, float]] = None,
    default: float = 0.5,
) -> float:
    """Preference-weighted combination of per-facet trust values.

    Facets absent from *weights* (or with non-positive weight) are
    ignored; when nothing overlaps, the unweighted mean is used; an
    empty *facet_scores* yields *default*.
    """
    if not facet_scores:
        return default
    if weights:
        common = {
            f: w for f, w in weights.items() if f in facet_scores and w > 0
        }
        total = sum(common.values())
        if total > 0:
            return sum(facet_scores[f] * w for f, w in common.items()) / total
    return sum(facet_scores.values()) / len(facet_scores)


@dataclass
class _FacetEvidence:
    """Observation history as parallel columns, numpy-ready."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def expectation(
        self, decay: DecayPolicy, now: Optional[float]
    ) -> Tuple[float, float]:
        """(trust expectation, evidence mass) under *decay* at *now*.

        The whole window is discounted in one vectorized expression —
        weights = decay.weights(now - times) — instead of a per-
        observation Python loop.
        """
        values = np.asarray(self.values, dtype=float)
        if now is None:
            weights = np.ones_like(values)
        else:
            ages = now - np.asarray(self.times, dtype=float)
            weights = decay.weights(np.maximum(ages, 0.0))
        alpha = float(weights @ values)
        mass = float(weights.sum())
        beta = mass - alpha
        expectation = (alpha + 1.0) / (alpha + beta + 2.0)
        return expectation, alpha + beta


class FacetTrust:
    """Per-context, per-facet trust with time decay.

    Args:
        decay: policy applied to observation ages at query time.
    """

    def __init__(self, decay: Optional[DecayPolicy] = None) -> None:
        self.decay = decay or NoDecay()
        #: context -> target -> facet -> evidence
        self._evidence: Dict[
            str, Dict[EntityId, Dict[str, _FacetEvidence]]
        ] = {}

    def observe(
        self,
        target: EntityId,
        facet: str,
        value: float,
        time: float = 0.0,
        context: str = DEFAULT_CONTEXT,
    ) -> None:
        """Record one experienced quality *value* in ``[0, 1]``."""
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError("facet value must be in [0, 1]")
        self._evidence.setdefault(context, {}).setdefault(
            target, {}
        ).setdefault(facet, _FacetEvidence()).add(time, value)

    def observe_feedback(
        self, feedback: Feedback, context: str = DEFAULT_CONTEXT
    ) -> None:
        """Ingest a feedback record (facets, falling back to overall)."""
        facets = feedback.facet_ratings or {"overall": feedback.rating}
        for facet, value in facets.items():
            self.observe(
                feedback.target, facet, value, feedback.time, context
            )

    def facet(
        self,
        target: EntityId,
        facet: str,
        now: Optional[float] = None,
        context: str = DEFAULT_CONTEXT,
    ) -> float:
        """Trust in one facet of *target* (0.5 without evidence)."""
        evidence = (
            self._evidence.get(context, {}).get(target, {}).get(facet)
        )
        if evidence is None:
            return 0.5
        expectation, _ = evidence.expectation(self.decay, now)
        return expectation

    def facets(
        self,
        target: EntityId,
        now: Optional[float] = None,
        context: str = DEFAULT_CONTEXT,
    ) -> Dict[str, float]:
        """All facet trust values known for *target* in *context*."""
        return {
            facet: self.facet(target, facet, now, context)
            for facet in self._evidence.get(context, {}).get(target, {})
        }

    def overall(
        self,
        target: EntityId,
        weights: Optional[Mapping[str, float]] = None,
        now: Optional[float] = None,
        context: str = DEFAULT_CONTEXT,
    ) -> float:
        """Preference-weighted overall trust in *target*."""
        return combine_facets(self.facets(target, now, context), weights)

    def confidence(
        self,
        target: EntityId,
        now: Optional[float] = None,
        context: str = DEFAULT_CONTEXT,
    ) -> float:
        """Decayed evidence mass mapped to ``[0, 1)``."""
        facet_evidence = self._evidence.get(context, {}).get(target, {})
        mass = 0.0
        for evidence in facet_evidence.values():
            _, facet_mass = evidence.expectation(self.decay, now)
            mass += facet_mass
        return mass / (mass + 2.0)

    def contexts(self) -> List[str]:
        return sorted(self._evidence)
