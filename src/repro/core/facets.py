"""Multi-faceted, context-specific, dynamic trust (Section 3).

The paper names three shared characteristics of trust and reputation:

* **context-specific** — John may be trusted as a doctor but not as a
  mechanic; here a *context* string partitions all evidence,
* **multi-faceted** — within one context, trust develops per QoS aspect
  and the overall value is a preference-weighted combination, and
* **dynamic** — trust grows/decays with experience and with time.

:class:`FacetTrust` implements all three on a Beta-evidence substrate:
evidence lives in one columnar :class:`~repro.store.EventStore` per
context, keyed by ``(target, facet)`` group slices, with a decay policy
applied at query time over the sliced time column; and
:func:`combine_facets` folds facet scores under a preference profile.

Observation times are stored as int64 ticks (``repro.common.simtime``)
so facet evidence merges across shard boundaries without float
round-tripping; the float API is unchanged — conversion happens at the
append/query edges and is exact for dyadic times.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.common.simtime import times_array, to_ticks
from repro.core.decay import DecayPolicy, NoDecay
from repro.store import EventStore

#: The context used when callers don't partition evidence.
DEFAULT_CONTEXT = "default"


def combine_facets(
    facet_scores: Mapping[str, float],
    weights: Optional[Mapping[str, float]] = None,
    default: float = 0.5,
) -> float:
    """Preference-weighted combination of per-facet trust values.

    Facets absent from *weights* (or with non-positive weight) are
    ignored; when nothing overlaps, the unweighted mean is used; an
    empty *facet_scores* yields *default*.
    """
    if not facet_scores:
        return default
    if weights:
        common = {
            f: w for f, w in weights.items() if f in facet_scores and w > 0
        }
        total = sum(common.values())
        if total > 0:
            return sum(facet_scores[f] * w for f, w in common.items()) / total
    return sum(facet_scores.values()) / len(facet_scores)


class FacetTrust:
    """Per-context, per-facet trust with time decay.

    Args:
        decay: policy applied to observation ages at query time.
    """

    def __init__(self, decay: Optional[DecayPolicy] = None) -> None:
        self.decay = decay or NoDecay()
        #: one columnar store per context; the rater column is unused
        #: here (observations are the observer's own), so rows carry a
        #: placeholder rater id.
        self._stores: Dict[str, EventStore] = {}

    def observe(
        self,
        target: EntityId,
        facet: str,
        value: float,
        time: float = 0.0,
        context: str = DEFAULT_CONTEXT,
    ) -> None:
        """Record one experienced quality *value* in ``[0, 1]``."""
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError("facet value must be in [0, 1]")
        store = self._stores.get(context)
        if store is None:
            store = EventStore(time_dtype="int64")
            self._stores[context] = store
        store.append("", target, value, to_ticks(time), facet=facet)

    def observe_feedback(
        self, feedback: Feedback, context: str = DEFAULT_CONTEXT
    ) -> None:
        """Ingest a feedback record (facets, falling back to overall)."""
        facets = feedback.facet_ratings or {"overall": feedback.rating}
        for facet, value in facets.items():
            self.observe(
                feedback.target, facet, value, feedback.time, context
            )

    def _expectation(
        self,
        values: np.ndarray,
        times: np.ndarray,
        now: Optional[float],
    ) -> Tuple[float, float]:
        """(trust expectation, evidence mass) for one group slice.

        The whole window is discounted in one vectorized expression —
        weights = decay.weights(now - times) — over the zero-copy
        column views of the group's rows.  *times* arrives as the int64
        tick column and is mapped back to float units for the ages.
        """
        if now is None:
            weights = np.ones_like(values)
        else:
            ages = np.maximum(now - times_array(times), 0.0)
            weights = self.decay.weights(ages)
        alpha = float(weights @ values)
        mass = float(weights.sum())
        beta = mass - alpha
        expectation = (alpha + 1.0) / (alpha + beta + 2.0)
        return expectation, alpha + beta

    def _group_rows(
        self, store: EventStore, target: EntityId, facet: str
    ) -> Optional[np.ndarray]:
        target_code = store.entities.code(target)
        facet_code = store.facets.code(facet)
        if target_code < 0 or facet_code < 0:
            return None
        key = (np.int64(target_code) << 32) | np.int64(facet_code + 1)
        rows = store.by_target_facet().rows(int(key))
        return rows if len(rows) else None

    def facet(
        self,
        target: EntityId,
        facet: str,
        now: Optional[float] = None,
        context: str = DEFAULT_CONTEXT,
    ) -> float:
        """Trust in one facet of *target* (0.5 without evidence)."""
        store = self._stores.get(context)
        if store is None:
            return 0.5
        rows = self._group_rows(store, target, facet)
        if rows is None:
            return 0.5
        columns = store.snapshot()
        expectation, _ = self._expectation(
            columns.value[rows], columns.time[rows], now
        )
        return expectation

    def _facet_names(
        self, store: EventStore, target: EntityId
    ) -> List[str]:
        """Facets observed for *target*, in facet-code (first-seen)
        order within the sorted group keys."""
        target_code = store.entities.code(target)
        if target_code < 0:
            return []
        keys = store.by_target_facet().codes
        lo = np.searchsorted(keys, np.int64(target_code) << 32)
        hi = np.searchsorted(keys, np.int64(target_code + 1) << 32)
        facet_name = store.facets.value
        return [
            facet_name(int(key & 0xFFFFFFFF) - 1)
            for key in keys[lo:hi].tolist()
        ]

    def facets(
        self,
        target: EntityId,
        now: Optional[float] = None,
        context: str = DEFAULT_CONTEXT,
    ) -> Dict[str, float]:
        """All facet trust values known for *target* in *context*."""
        store = self._stores.get(context)
        if store is None:
            return {}
        return {
            facet: self.facet(target, facet, now, context)
            for facet in self._facet_names(store, target)
        }

    def overall(
        self,
        target: EntityId,
        weights: Optional[Mapping[str, float]] = None,
        now: Optional[float] = None,
        context: str = DEFAULT_CONTEXT,
    ) -> float:
        """Preference-weighted overall trust in *target*."""
        return combine_facets(self.facets(target, now, context), weights)

    def confidence(
        self,
        target: EntityId,
        now: Optional[float] = None,
        context: str = DEFAULT_CONTEXT,
    ) -> float:
        """Decayed evidence mass mapped to ``[0, 1)``."""
        store = self._stores.get(context)
        mass = 0.0
        if store is not None:
            columns = store.snapshot()
            for facet in self._facet_names(store, target):
                rows = self._group_rows(store, target, facet)
                if rows is None:
                    continue
                _, facet_mass = self._expectation(
                    columns.value[rows], columns.time[rows], now
                )
                mass += facet_mass
        return mass / (mass + 2.0)

    def contexts(self) -> List[str]:
        return sorted(self._stores)
