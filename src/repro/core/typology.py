"""The paper's typology — Section 4 and Figure 4.

Three criteria classify every trust and reputation system:

* :class:`Architecture` — **centralized** (one node manages all
  reputations) vs. **decentralized** (members cooperate to manage them).
* :class:`Subject` — **person/agent** systems model the reputation of
  people or their agents; **resource** systems model products/services
  (even when they track raters too, that serves the resource scores).
* :class:`Scope` — **global** reputation is one public value per entity;
  **personalized** reputation differs per asking member.

:func:`classification_tree` rebuilds the Figure 4 three-level hierarchy
from any collection of classified systems, so the paper's figure is a
*derived artefact* of the model registry rather than a hand-maintained
table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple


class Architecture(enum.Enum):
    CENTRALIZED = "centralized"
    DECENTRALIZED = "decentralized"


class Subject(enum.Enum):
    PERSON_AGENT = "person_agent"
    RESOURCE = "resource"
    #: Some systems (Vu et al.) model both service resources and the
    #: agents rating them as first-class reputation subjects.
    PERSON_AGENT_AND_RESOURCE = "person_agent_and_resource"


class Scope(enum.Enum):
    GLOBAL = "global"
    PERSONALIZED = "personalized"


@dataclass(frozen=True)
class Typology:
    """One system's position in the three-criterion classification."""

    architecture: Architecture
    subject: Subject
    scope: Scope

    def branch(self) -> Tuple[str, str, str]:
        """The path from the tree root to this system's leaf bucket."""
        return (
            self.architecture.value,
            self.subject.value,
            self.scope.value,
        )

    def __str__(self) -> str:
        return "/".join(self.branch())


@dataclass
class TypologyTree:
    """The Figure 4 hierarchy: criteria levels down to system leaves."""

    #: branch path -> system names in that leaf bucket
    leaves: Dict[Tuple[str, str, str], List[str]] = field(default_factory=dict)

    def add(self, name: str, typology: Typology) -> None:
        self.leaves.setdefault(typology.branch(), []).append(name)

    def systems_at(
        self, architecture: Architecture, subject: Subject, scope: Scope
    ) -> List[str]:
        return list(
            self.leaves.get(
                (architecture.value, subject.value, scope.value), ()
            )
        )

    def branches(self) -> List[Tuple[str, str, str]]:
        return sorted(self.leaves)

    def render(self) -> List[str]:
        """Indented text rendering in the Figure 4 shape."""
        lines: List[str] = ["Trust and Reputation System"]
        for arch in Architecture:
            arch_branches = [
                b for b in self.branches() if b[0] == arch.value
            ]
            if not arch_branches:
                continue
            lines.append(f"  {arch.value}")
            for subject in Subject:
                subj_branches = [
                    b for b in arch_branches if b[1] == subject.value
                ]
                if not subj_branches:
                    continue
                lines.append(f"    {subject.value}")
                for scope in Scope:
                    key = (arch.value, subject.value, scope.value)
                    systems = self.leaves.get(key)
                    if not systems:
                        continue
                    lines.append(f"      {scope.value}")
                    for name in systems:
                        lines.append(f"        - {name}")
        return lines


def classification_tree(
    systems: Mapping[str, Typology],
) -> TypologyTree:
    """Build the Figure 4 tree for named, classified systems."""
    tree = TypologyTree()
    for name in sorted(systems):
        tree.add(name, systems[name])
    return tree


#: The paper's own placement of each surveyed system (Figure 4), used by
#: tests to verify that the registry-derived tree matches the paper.
PAPER_FIGURE_4: Dict[str, Typology] = {
    "ebay": Typology(Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL),
    "sporas": Typology(Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL),
    "histos": Typology(
        Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    ),
    "pagerank": Typology(Architecture.CENTRALIZED, Subject.RESOURCE, Scope.GLOBAL),
    "amazon": Typology(Architecture.CENTRALIZED, Subject.RESOURCE, Scope.GLOBAL),
    "epinions": Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    ),
    "collaborative_filtering": Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    ),
    "maximilien_singh": Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    ),
    "liu_ngu_zeng": Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    ),
    "day": Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    ),
    "yu_singh": Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    ),
    "yolum_singh": Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    ),
    "wang_vassileva": Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    ),
    "xrep": Typology(
        Architecture.DECENTRALIZED, Subject.RESOURCE, Scope.GLOBAL
    ),
    "social_network": Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    ),
    "aberer_despotovic": Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    ),
    "peertrust": Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    ),
    "eigentrust": Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    ),
    "vu_aberer": Typology(
        Architecture.DECENTRALIZED,
        Subject.PERSON_AGENT_AND_RESOURCE,
        Scope.PERSONALIZED,
    ),
}
