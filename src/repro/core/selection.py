"""The selection engine: discovery + reputation + choice.

Ties the pieces together the way Figure 2 describes: discover candidate
services from a :class:`~repro.registry.uddi.UDDIRegistry` by category,
score them with any :class:`~repro.models.base.ReputationModel` (from
the asking consumer's perspective when the model is personalized), and
pick via a :class:`SelectionPolicy`.

Pure reputation-greedy selection starves unexplored services of the
chance to earn reputation; the exploration policies (ε-greedy, softmax)
are the standard remedies and are what the benchmarks use.
"""

from __future__ import annotations

import abc
import math
from typing import List, Optional, Sequence

from repro.common.errors import ConfigurationError, ReproError
from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng
from repro.faults.degradation import StaleRankingFallback
from repro.models.base import ReputationModel, ScoredTarget
from repro.obs.recorder import get_recorder
from repro.registry.uddi import UDDIRegistry


class SelectionPolicy(abc.ABC):
    """Chooses one candidate from a scored ranking."""

    @abc.abstractmethod
    def choose(self, ranking: Sequence[ScoredTarget]) -> EntityId:
        """Pick one target from a non-empty, best-first ranking."""


class GreedyPolicy(SelectionPolicy):
    """Always the top-scored candidate (deterministic)."""

    def choose(self, ranking: Sequence[ScoredTarget]) -> EntityId:
        if not ranking:
            raise ConfigurationError("empty ranking")
        return ranking[0].target


class EpsilonGreedyPolicy(SelectionPolicy):
    """Top candidate with probability 1-ε, uniform otherwise.

    Candidates tied at the top score are chosen among uniformly —
    deterministic lexicographic tie-breaking would systematically
    starve every tied candidate but one of the chance to earn evidence.
    """

    def __init__(self, epsilon: float = 0.1, rng: RngLike = None) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self._rng = make_rng(rng)

    def choose(self, ranking: Sequence[ScoredTarget]) -> EntityId:
        if not ranking:
            raise ConfigurationError("empty ranking")
        if len(ranking) > 1 and self._rng.random() < self.epsilon:
            index = int(self._rng.integers(0, len(ranking)))
            return ranking[index].target
        top_score = ranking[0].score
        tied = [st for st in ranking if st.score >= top_score - 1e-12]
        if len(tied) == 1:
            return tied[0].target
        index = int(self._rng.integers(0, len(tied)))
        return tied[index].target


class SoftmaxPolicy(SelectionPolicy):
    """Boltzmann exploration: P(i) ∝ exp(score_i / temperature)."""

    def __init__(self, temperature: float = 0.1, rng: RngLike = None) -> None:
        if temperature <= 0:
            raise ConfigurationError("temperature must be positive")
        self.temperature = temperature
        self._rng = make_rng(rng)

    def choose(self, ranking: Sequence[ScoredTarget]) -> EntityId:
        if not ranking:
            raise ConfigurationError("empty ranking")
        peak = max(st.score for st in ranking)
        weights = [
            math.exp((st.score - peak) / self.temperature) for st in ranking
        ]
        total = sum(weights)
        draw = float(self._rng.random()) * total
        cumulative = 0.0
        for st, weight in zip(ranking, weights):
            cumulative += weight
            if draw <= cumulative:
                return st.target
        return ranking[-1].target


class SelectionEngine:
    """Automatic run-time web service selection (the paper's Q1).

    Args:
        registry: functional discovery (UDDI analogue).
        model: reputation mechanism scoring the candidates.
        policy: how the ranking becomes a choice.
        fallback: optional stale-ranking cache; when the scoring path
            raises a library error (registry outage, overlay partition,
            open circuit), the engine serves the last good ranking with
            age-discounted scores instead of propagating the failure.
    """

    def __init__(
        self,
        registry: UDDIRegistry,
        model: ReputationModel,
        policy: Optional[SelectionPolicy] = None,
        fallback: Optional[StaleRankingFallback] = None,
    ) -> None:
        self.registry = registry
        self.model = model
        self.policy = policy or GreedyPolicy()
        self.fallback = fallback
        self.selections_made = 0
        self.degraded_selections = 0
        self.failed_selections = 0
        #: category -> (registry version, service ids); discovery results
        #: are reused until the registry catalogue actually changes
        self._candidate_cache: dict = {}

    def candidates(self, category: str) -> List[EntityId]:
        """Service ids matching *category* in the registry.

        Cached per category against the registry's version counter, so
        the per-selection cost is one dict probe instead of a full
        catalogue scan until something is published or unpublished.
        """
        version = getattr(self.registry, "version", None)
        failed = getattr(self.registry, "is_failed", False)
        rec = get_recorder()
        if version is not None and not failed:
            # A down registry must still raise (the fallback machinery
            # depends on it), so the cache only answers healthy lookups.
            cached = self._candidate_cache.get(category)
            if cached is not None and cached[0] == version:
                if rec.enabled:
                    rec.count("selection.candidates.cache_hits")
                return list(cached[1])
        if rec.enabled:
            rec.count("selection.candidates.cache_misses")
        ids = [d.service for d in self.registry.search(category)]
        if version is not None:
            self._candidate_cache[category] = (version, ids)
        return list(ids)

    def rank(
        self,
        category: str,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[ScoredTarget]:
        """Batch-score the discovered candidates via the model's
        :meth:`~repro.models.base.ReputationModel.rank` (one
        ``score_many`` call, not one ``score`` per candidate)."""
        targets = self.candidates(category)
        rec = get_recorder()
        if rec.enabled:
            start = rec.now if now is None else float(now)
            ranking = self.model.rank(targets, perspective, now)
            # Rank latency in *sim* time: how stale the scores were when
            # the selection landed, not how long the CPU took.
            rec.span(
                "selection.rank",
                time=start,
                duration=max(rec.now - start, 0.0),
                attrs={
                    "model": self.model.name,
                    "candidates": len(targets),
                    "category": category,
                },
            )
            return ranking
        return self.model.rank(targets, perspective, now)

    def select(
        self,
        category: str,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> Optional[EntityId]:
        """Choose a service for *category*; None when none published.

        With a :attr:`fallback` configured, a scoring failure degrades
        to the last cached ranking (scores shrunk toward the 0.5 prior
        by their age confidence) instead of raising; when there is no
        usable cache entry either, the failure counts in
        :attr:`failed_selections` and None is returned.
        """
        key = (category, perspective)
        try:
            ranking = self.rank(category, perspective, now)
        except ReproError:
            if self.fallback is None:
                raise
            ranking = self.fallback.recall(key, now or 0.0)
            rec = get_recorder()
            if not ranking:
                self.failed_selections += 1
                if rec.enabled:
                    rec.count("selection.failed")
                return None
            self.degraded_selections += 1
            if rec.enabled:
                rec.count("selection.degraded")
        else:
            if self.fallback is not None and ranking:
                self.fallback.remember(key, ranking, now or 0.0)
        if not ranking:
            return None
        self.selections_made += 1
        return self.policy.choose(ranking)
