"""Time-decay policies.

Section 3: trust and reputation are *dynamic* — "new experiences are
more important than old ones since old experiences may become obsolete".
A :class:`DecayPolicy` turns an observation's age into a weight; models
that aggregate rating histories take one as a parameter, and the decay
ablation (C4) swaps policies on an otherwise identical model.

Each policy exposes two kernels: the scalar :meth:`~DecayPolicy.weight`
and the vectorized :meth:`~DecayPolicy.weights`, which maps a whole
array of ages in one numpy expression.  Aggregation hot paths
(:mod:`repro.core.facets`, the Amazon model) use the vectorized form so
time-discounting a feedback window costs one array op instead of a
Python loop.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.mathutils import exponential_decay


class DecayPolicy(abc.ABC):
    """Maps observation age (now - time filed) to a weight in [0, 1]."""

    @abc.abstractmethod
    def weight(self, age: float) -> float:
        """Weight for an observation *age* time units old."""

    def weights(self, ages: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`weight` over an array of ages.

        The default maps the scalar kernel; the built-in policies
        override it with a single numpy expression.
        """
        ages = np.asarray(ages, dtype=float)
        return np.fromiter(
            (self.weight(float(a)) for a in ages.ravel()),
            dtype=float,
            count=ages.size,
        ).reshape(ages.shape)

    def __call__(self, age: float) -> float:
        return self.weight(age)


class NoDecay(DecayPolicy):
    """Every observation counts fully, forever."""

    def weight(self, age: float) -> float:
        return 1.0

    def weights(self, ages: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(ages, dtype=float))

    def __repr__(self) -> str:
        return "NoDecay()"


class ExponentialDecay(DecayPolicy):
    """Smooth forgetting with a half-life."""

    def __init__(self, half_life: float = 50.0) -> None:
        if half_life <= 0:
            raise ConfigurationError("half_life must be positive")
        self.half_life = half_life

    def weight(self, age: float) -> float:
        return exponential_decay(age, self.half_life)

    def weights(self, ages: np.ndarray) -> np.ndarray:
        ages = np.asarray(ages, dtype=float)
        # Matches the scalar kernel: non-positive ages weigh 1.0.
        return np.power(0.5, np.maximum(ages, 0.0) / self.half_life)

    def __repr__(self) -> str:
        return f"ExponentialDecay(half_life={self.half_life!r})"


class SlidingWindow(DecayPolicy):
    """Hard cutoff: observations older than *window* are ignored."""

    def __init__(self, window: float = 100.0) -> None:
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.window = window

    def weight(self, age: float) -> float:
        return 1.0 if age <= self.window else 0.0

    def weights(self, ages: np.ndarray) -> np.ndarray:
        ages = np.asarray(ages, dtype=float)
        return (ages <= self.window).astype(float)

    def __repr__(self) -> str:
        return f"SlidingWindow(window={self.window!r})"
