"""Time-decay policies.

Section 3: trust and reputation are *dynamic* — "new experiences are
more important than old ones since old experiences may become obsolete".
A :class:`DecayPolicy` turns an observation's age into a weight; models
that aggregate rating histories take one as a parameter, and the decay
ablation (C4) swaps policies on an otherwise identical model.
"""

from __future__ import annotations

import abc

from repro.common.errors import ConfigurationError
from repro.common.mathutils import exponential_decay


class DecayPolicy(abc.ABC):
    """Maps observation age (now - time filed) to a weight in [0, 1]."""

    @abc.abstractmethod
    def weight(self, age: float) -> float:
        """Weight for an observation *age* time units old."""

    def __call__(self, age: float) -> float:
        return self.weight(age)


class NoDecay(DecayPolicy):
    """Every observation counts fully, forever."""

    def weight(self, age: float) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "NoDecay()"


class ExponentialDecay(DecayPolicy):
    """Smooth forgetting with a half-life."""

    def __init__(self, half_life: float = 50.0) -> None:
        if half_life <= 0:
            raise ConfigurationError("half_life must be positive")
        self.half_life = half_life

    def weight(self, age: float) -> float:
        return exponential_decay(age, self.half_life)

    def __repr__(self) -> str:
        return f"ExponentialDecay(half_life={self.half_life!r})"


class SlidingWindow(DecayPolicy):
    """Hard cutoff: observations older than *window* are ignored."""

    def __init__(self, window: float = 100.0) -> None:
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.window = window

    def weight(self, age: float) -> float:
        return 1.0 if age <= self.window else 0.0

    def __repr__(self) -> str:
        return f"SlidingWindow(window={self.window!r})"
