"""Figure 1's two usage scenarios as runnable simulations.

* **Direct selection (Figure 1A)** — consumers choose among redundant
  web services on the services' own QoS; each round every consumer
  selects, invokes, rates, and reports.
* **Mediated selection (Figure 1B)** — consumers choose an intermediary
  web service (e.g. a flight-booking site) to obtain a *general service*
  (the flight); the outcome — and therefore the sensible selection — is
  dominated by the general service's quality, with the intermediary's
  own QoS playing only a small part.

Both runners report ground-truth-aware metrics: how often consumers
picked the truly best option (accuracy) and how much quality they left
on the table (regret).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.randomness import RngLike, make_rng
from repro.common.records import Feedback
from repro.core.selection import SelectionEngine, SelectionPolicy
from repro.models.base import ReputationModel
from repro.registry.uddi import UDDIRegistry
from repro.services.consumer import Consumer
from repro.services.general import IntermediaryService
from repro.services.invocation import InvocationEngine
from repro.services.provider import Service
from repro.services.qos import QoSTaxonomy


@dataclass
class ScenarioResult:
    """Outcome of a scenario run."""

    rounds: int
    selections: int
    optimal_selections: int
    regrets: List[float] = field(default_factory=list)
    #: accuracy per round (fraction of consumers choosing optimally)
    round_accuracy: List[float] = field(default_factory=list)
    selection_counts: Dict[EntityId, int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        if self.selections == 0:
            return 0.0
        return self.optimal_selections / self.selections

    @property
    def mean_regret(self) -> float:
        return safe_mean(self.regrets)

    def tail_accuracy(self, fraction: float = 0.25) -> float:
        """Accuracy over the last *fraction* of rounds (post-learning)."""
        if not self.round_accuracy:
            return 0.0
        k = max(1, int(len(self.round_accuracy) * fraction))
        return safe_mean(self.round_accuracy[-k:])


class DirectSelectionScenario:
    """Figure 1A: repeated select-invoke-rate rounds on one category.

    Args:
        services: the redundant candidate services (same category).
        consumers: the consumer population.
        model: reputation mechanism under test.
        taxonomy: QoS metric set.
        policy: selection policy (engine default: greedy).
        round_length: simulation time per round.
        rate_providers: additionally file provider-targeted feedback
            (for provider-reputation experiments).
        optimality_tolerance: a choice counts as optimal when its true
            quality is within this of the best candidate's — services
            closer than the observation noise are indistinguishable in
            principle, so strict-argmax accuracy would only measure
            tie-breaking luck.
    """

    def __init__(
        self,
        services: "list[Service]",
        consumers: "list[Consumer]",
        model: ReputationModel,
        taxonomy: QoSTaxonomy,
        policy: Optional[SelectionPolicy] = None,
        round_length: float = 1.0,
        rate_providers: bool = False,
        optimality_tolerance: float = 0.02,
        rng: RngLike = None,
    ) -> None:
        if not services:
            raise ConfigurationError("scenario needs services")
        if not consumers:
            raise ConfigurationError("scenario needs consumers")
        categories = {s.category for s in services}
        if len(categories) != 1:
            raise ConfigurationError(
                "direct scenario expects one service category, got "
                f"{sorted(categories)}"
            )
        self.category = categories.pop()
        self.services = {s.service_id: s for s in services}
        self.consumers = consumers
        self.model = model
        self.taxonomy = taxonomy
        self.round_length = round_length
        self.rate_providers = rate_providers
        if optimality_tolerance < 0:
            raise ConfigurationError("optimality_tolerance must be >= 0")
        self.optimality_tolerance = optimality_tolerance
        self.uddi = UDDIRegistry()
        for service in services:
            self.uddi.publish(service.description)
        self.engine = SelectionEngine(self.uddi, model, policy)
        self.invoker = InvocationEngine(taxonomy, rng=make_rng(rng))
        self.time = 0.0

    def true_quality(self, service_id: EntityId, consumer: Consumer) -> float:
        """Ground-truth quality of a service for one consumer, now."""
        service = self.services[service_id]
        return service.true_overall(
            self.time, consumer.preferences.weights, consumer.segment
        )

    def optimal_for(self, consumer: Consumer) -> EntityId:
        """The truly best service for *consumer* at the current time."""
        return max(
            self.services,
            key=lambda sid: (self.true_quality(sid, consumer), sid),
        )

    def run_round(self, result: ScenarioResult) -> None:
        accurate = 0
        for consumer in self.consumers:
            chosen = self.engine.select(
                self.category, consumer.consumer_id, now=self.time
            )
            assert chosen is not None
            optimal = self.optimal_for(consumer)
            chosen_quality = self.true_quality(chosen, consumer)
            optimal_quality = self.true_quality(optimal, consumer)
            result.selections += 1
            result.selection_counts[chosen] = (
                result.selection_counts.get(chosen, 0) + 1
            )
            if chosen == optimal or (
                optimal_quality - chosen_quality <= self.optimality_tolerance
            ):
                result.optimal_selections += 1
                accurate += 1
            result.regrets.append(optimal_quality - chosen_quality)
            interaction = self.invoker.invoke(
                consumer, self.services[chosen], self.time
            )
            feedback = consumer.rate(interaction, self.taxonomy)
            self.model.record(feedback)
            if self.rate_providers:
                provider_fb = consumer.rate_provider(
                    feedback, interaction.provider
                )
                self.model.record(provider_fb)
        result.round_accuracy.append(accurate / len(self.consumers))
        self.time += self.round_length

    def run(self, rounds: int) -> ScenarioResult:
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        result = ScenarioResult(rounds=rounds, selections=0, optimal_selections=0)
        for _ in range(rounds):
            self.run_round(result)
        return result


class MediatedSelectionScenario:
    """Figure 1B: select an intermediary, consume a general service.

    Each round a consumer selects an intermediary via the reputation
    mechanism, books the intermediary's best-matching general service,
    and rates the intermediary by the *perceived* outcome — which is
    dominated by the general service's quality.
    """

    def __init__(
        self,
        intermediaries: "list[IntermediaryService]",
        consumers: "list[Consumer]",
        model: ReputationModel,
        taxonomy: QoSTaxonomy,
        policy: Optional[SelectionPolicy] = None,
        round_length: float = 1.0,
        optimality_tolerance: float = 0.02,
        rng: RngLike = None,
    ) -> None:
        if not intermediaries:
            raise ConfigurationError("scenario needs intermediaries")
        if not consumers:
            raise ConfigurationError("scenario needs consumers")
        categories = {i.service.category for i in intermediaries}
        if len(categories) != 1:
            raise ConfigurationError(
                "mediated scenario expects one category, got "
                f"{sorted(categories)}"
            )
        self.category = categories.pop()
        if optimality_tolerance < 0:
            raise ConfigurationError("optimality_tolerance must be >= 0")
        self.optimality_tolerance = optimality_tolerance
        self.intermediaries = {i.service_id: i for i in intermediaries}
        self.consumers = consumers
        self.model = model
        self.taxonomy = taxonomy
        self.round_length = round_length
        self.uddi = UDDIRegistry()
        for intermediary in intermediaries:
            self.uddi.publish(intermediary.service.description)
        self.engine = SelectionEngine(self.uddi, model, policy)
        self.invoker = InvocationEngine(taxonomy, rng=make_rng(rng))
        self.time = 0.0

    def achievable_quality(
        self, intermediary_id: EntityId, consumer: Consumer
    ) -> float:
        """Best perceived quality this intermediary can deliver now."""
        intermediary = self.intermediaries[intermediary_id]
        w = intermediary.intermediary_weight
        own = intermediary.service.true_overall(
            self.time, consumer.preferences.weights, consumer.segment
        )
        best_general = intermediary.best_general(consumer.segment)
        return w * own + (1.0 - w) * best_general.overall(consumer.segment)

    def optimal_for(self, consumer: Consumer) -> EntityId:
        return max(
            self.intermediaries,
            key=lambda iid: (self.achievable_quality(iid, consumer), iid),
        )

    def run(self, rounds: int) -> ScenarioResult:
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        result = ScenarioResult(rounds=rounds, selections=0, optimal_selections=0)
        for _ in range(rounds):
            accurate = 0
            for consumer in self.consumers:
                chosen = self.engine.select(
                    self.category, consumer.consumer_id, now=self.time
                )
                assert chosen is not None
                optimal = self.optimal_for(consumer)
                chosen_quality = self.achievable_quality(chosen, consumer)
                optimal_quality = self.achievable_quality(optimal, consumer)
                result.selections += 1
                result.selection_counts[chosen] = (
                    result.selection_counts.get(chosen, 0) + 1
                )
                if chosen == optimal or (
                    optimal_quality - chosen_quality
                    <= self.optimality_tolerance
                ):
                    result.optimal_selections += 1
                    accurate += 1
                result.regrets.append(optimal_quality - chosen_quality)
                intermediary = self.intermediaries[chosen]
                general = intermediary.best_general(consumer.segment)
                outcome = intermediary.book(
                    consumer, general.general_id, self.invoker, self.time
                )
                feedback = Feedback(
                    rater=consumer.consumer_id,
                    target=chosen,
                    time=self.time,
                    rating=outcome.perceived_quality,
                    facet_ratings=dict(outcome.intermediary_facets),
                    interaction=outcome.interaction,
                )
                self.model.record(feedback)
            result.round_accuracy.append(accurate / len(self.consumers))
            self.time += self.round_length
        return result
