"""Event-driven selection scenario on the discrete-event kernel.

The round-based runners in :mod:`repro.core.scenarios` advance all
consumers in lock-step.  Real service ecosystems are asynchronous:
consumers invoke on their own schedules and feedback reaches the
registry after a delay — during which other consumers select on *stale*
reputation.  :class:`EventDrivenScenario` models exactly that on
:class:`~repro.sim.kernel.Simulator`:

* each consumer issues invocations as a Poisson process
  (exponential inter-arrival times, per-consumer ``arrival_rate``);
* the resulting feedback is filed ``feedback_delay`` time units after
  the invocation (report latency);
* selections between invocation and filing see the old scores.

Metrics match :class:`~repro.core.scenarios.ScenarioResult` semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.randomness import RngLike, make_rng
from repro.core.selection import GreedyPolicy, SelectionPolicy
from repro.models.base import ReputationModel
from repro.services.consumer import Consumer
from repro.services.invocation import InvocationEngine
from repro.services.provider import Service
from repro.services.qos import QoSTaxonomy
from repro.sim.kernel import Simulator


@dataclass
class EventDrivenResult:
    """Outcome of an asynchronous run."""

    horizon: float
    selections: int = 0
    optimal_selections: int = 0
    regrets: List[float] = field(default_factory=list)
    selection_counts: Dict[EntityId, int] = field(default_factory=dict)
    feedback_filed: int = 0

    @property
    def accuracy(self) -> float:
        if self.selections == 0:
            return 0.0
        return self.optimal_selections / self.selections

    @property
    def mean_regret(self) -> float:
        return safe_mean(self.regrets)


class EventDrivenScenario:
    """Asynchronous select-invoke-rate driven by the event kernel."""

    def __init__(
        self,
        services: "list[Service]",
        consumers: "list[Consumer]",
        model: ReputationModel,
        taxonomy: QoSTaxonomy,
        policy: Optional[SelectionPolicy] = None,
        arrival_rate: float = 1.0,
        feedback_delay: float = 0.1,
        optimality_tolerance: float = 0.02,
        rng: RngLike = None,
    ) -> None:
        if not services:
            raise ConfigurationError("scenario needs services")
        if not consumers:
            raise ConfigurationError("scenario needs consumers")
        if arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if feedback_delay < 0:
            raise ConfigurationError("feedback_delay must be >= 0")
        self.services = {s.service_id: s for s in services}
        self.consumers = consumers
        self.model = model
        self.taxonomy = taxonomy
        self.policy = policy or GreedyPolicy()
        self.arrival_rate = arrival_rate
        self.feedback_delay = feedback_delay
        self.optimality_tolerance = optimality_tolerance
        self._rng = make_rng(rng)
        self.simulator = Simulator()
        self.invoker = InvocationEngine(taxonomy, rng=self._rng)

    def _next_arrival(self) -> float:
        return float(self._rng.exponential(1.0 / self.arrival_rate))

    def _handle_arrival(
        self, consumer: Consumer, result: EventDrivenResult, horizon: float
    ) -> None:
        now = self.simulator.now
        ranking = self.model.rank(
            sorted(self.services), consumer.consumer_id, now=now
        )
        chosen = self.policy.choose(ranking)
        truth = {
            sid: svc.true_overall(
                now, consumer.preferences.weights, consumer.segment
            )
            for sid, svc in self.services.items()
        }
        best = max(truth.values())
        regret = best - truth[chosen]
        result.selections += 1
        result.selection_counts[chosen] = (
            result.selection_counts.get(chosen, 0) + 1
        )
        if regret <= self.optimality_tolerance:
            result.optimal_selections += 1
        result.regrets.append(regret)
        interaction = self.invoker.invoke(
            consumer, self.services[chosen], now
        )

        def file_feedback() -> None:
            feedback = consumer.rate(interaction, self.taxonomy)
            self.model.record(feedback)
            result.feedback_filed += 1

        self.simulator.schedule_in(self.feedback_delay, file_feedback)
        next_time = now + self._next_arrival()
        if next_time <= horizon:
            self.simulator.schedule(
                next_time,
                lambda: self._handle_arrival(consumer, result, horizon),
            )

    def run(self, horizon: float) -> EventDrivenResult:
        """Run until simulation time *horizon*."""
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        result = EventDrivenResult(horizon=horizon)
        for consumer in self.consumers:
            first = self._next_arrival()
            if first <= horizon:
                self.simulator.schedule(
                    first,
                    lambda c=consumer: self._handle_arrival(
                        c, result, horizon
                    ),
                )
        self.simulator.run(until=horizon + self.feedback_delay)
        return result
