"""Model registry: names → constructors + typology + citation.

The registry is what makes Figure 4 a *derived* artefact: every
implemented mechanism registers its classification, and
:meth:`ModelRegistry.figure4_tree` rebuilds the paper's tree from the
registrations.  Tests assert the rebuilt tree matches
:data:`repro.core.typology.PAPER_FIGURE_4` leaf for leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.core.typology import Typology, TypologyTree, classification_tree
from repro.models.base import ReputationModel

ModelFactory = Callable[[], ReputationModel]


@dataclass(frozen=True)
class ModelInfo:
    """Registry entry for one mechanism."""

    name: str
    factory: ModelFactory
    typology: Typology
    paper_ref: str
    label: str
    #: whether the paper's Figure 4 lists this system as a leaf
    in_figure_4: bool = True


class ModelRegistry:
    """Name-indexed collection of reputation mechanisms."""

    def __init__(self) -> None:
        self._models: Dict[str, ModelInfo] = {}

    def register(self, info: ModelInfo) -> None:
        if info.name in self._models:
            raise ConfigurationError(f"duplicate model name: {info.name!r}")
        self._models[info.name] = info

    def get(self, name: str) -> ModelInfo:
        try:
            return self._models[name]
        except KeyError:
            raise UnknownEntityError(f"unknown model: {name!r}") from None

    def create(self, name: str) -> ReputationModel:
        return self.get(name).factory()

    def names(self) -> List[str]:
        return sorted(self._models)

    def infos(self) -> List[ModelInfo]:
        return [self._models[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def figure4_tree(self) -> TypologyTree:
        """The paper's Figure 4, rebuilt from the registered systems."""
        systems = {
            info.name: info.typology
            for info in self._models.values()
            if info.in_figure_4
        }
        return classification_tree(systems)


def default_registry(rng_seed: Optional[int] = None) -> ModelRegistry:
    """All implemented mechanisms with default parameters.

    Args:
        rng_seed: seed for models needing randomness (referral wiring).
    """
    # Imports are local so that importing repro.core doesn't pull the
    # whole model zoo until a registry is actually built.
    from repro.models.aberer import AbererDespotovicModel
    from repro.models.amazon import AmazonModel
    from repro.models.beta import BetaReputation
    from repro.models.collaborative import (
        CollaborativeFilteringModel,
        Similarity,
    )
    from repro.models.day import DayExpertSystem, DayNaiveBayes
    from repro.models.ebay import EbayModel
    from repro.models.eigentrust import EigenTrustModel
    from repro.models.epinions import EpinionsModel
    from repro.models.histos import HistosModel
    from repro.models.liu_ngu_zeng import LiuNguZengModel
    from repro.models.maximilien_singh import MaximilienSinghModel
    from repro.models.pagerank import PageRankModel
    from repro.models.peertrust import PeerTrustModel
    from repro.models.socialnetwork import SocialNetworkModel
    from repro.models.sporas import SporasModel
    from repro.models.subjective_logic import SubjectiveLogicModel
    from repro.models.vu_aberer import VuAbererModel
    from repro.models.wang_vassileva import WangVassilevaModel
    from repro.models.xrep import XRepModel
    from repro.models.yolum_singh import YolumSinghModel
    from repro.models.yu_singh import YuSinghModel

    registry = ModelRegistry()
    entries = [
        (EbayModel, "eBay feedback forum", True),
        (SporasModel, "Sporas", True),
        (HistosModel, "Histos", True),
        (PageRankModel, "Google PageRank", True),
        (AmazonModel, "Amazon reviews", True),
        (EpinionsModel, "Epinions web of trust", True),
        (CollaborativeFilteringModel, "Collaborative filtering", True),
        (YuSinghModel, "Yu & Singh belief model", True),
        (WangVassilevaModel, "Wang & Vassileva Bayesian trust", True),
        (XRepModel, "Damiani et al. XRep", True),
        (SocialNetworkModel, "Social-network topology", True),
        (AbererDespotovicModel, "Aberer & Despotovic complaints", True),
        (PeerTrustModel, "PeerTrust", True),
        (EigenTrustModel, "EigenTrust", True),
        (MaximilienSinghModel, "Maximilien & Singh", True),
        (LiuNguZengModel, "Liu, Ngu & Zeng", True),
        (DayExpertSystem, "Day expert system", True),
        (VuAbererModel, "Vu, Hauswirth & Aberer", True),
        # Extras not drawn as Figure 4 leaves:
        (BetaReputation, "Beta reputation baseline", False),
        (DayNaiveBayes, "Day naive Bayes", False),
        (SubjectiveLogicModel, "Subjective logic (Jøsang)", False),
    ]
    for cls, label, in_fig4 in entries:
        assert cls.typology is not None
        registry.register(
            ModelInfo(
                name=cls.name,
                factory=cls,
                typology=cls.typology,
                paper_ref=cls.paper_ref,
                label=label,
                in_figure_4=in_fig4,
            )
        )
    # Yolum & Singh needs a seeded referral network for reproducibility.
    yolum = YolumSinghModel
    registry.register(
        ModelInfo(
            name=yolum.name,
            factory=lambda: YolumSinghModel(rng=rng_seed),
            typology=yolum.typology,
            paper_ref=yolum.paper_ref,
            label="Yolum & Singh referral network",
            in_figure_4=True,
        )
    )
    # Karta's variant: CF with cosine (vector) similarity.
    registry.register(
        ModelInfo(
            name="collaborative_filtering_cosine",
            factory=lambda: CollaborativeFilteringModel(
                similarity=Similarity.COSINE
            ),
            typology=CollaborativeFilteringModel.typology,
            paper_ref="[13]",
            label="Collaborative filtering (vector similarity)",
            in_figure_4=False,
        )
    )
    return registry
