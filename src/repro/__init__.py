"""repro — trust and reputation mechanisms for web service selection.

A library-scale reproduction of Wang & Vassileva, *"A Review on Trust
and Reputation for Web Service Selection"* (ICDCS Workshops 2007): every
system the survey classifies in its Figure 4 typology is implemented on
a common interface, together with the web-service simulation substrate
(QoS ontology, providers, consumers, SLAs, monitoring, UDDI and QoS
registries, P2P overlays) needed to run them head-to-head.

Quickstart::

    from repro import make_world, run_selection_experiment
    from repro.models import EbayModel

    world = make_world(n_providers=5, n_consumers=20, seed=42)
    outcome = run_selection_experiment(EbayModel(), world, rounds=30)
    print(outcome.accuracy, outcome.mean_regret)

Subpackages:

* :mod:`repro.core` — typology (Figure 4), facet trust, selection engine
* :mod:`repro.models` — the ~20 surveyed mechanisms
* :mod:`repro.services` — the simulated web-service world (Figures 1-3)
* :mod:`repro.registry` — UDDI + central QoS registry
* :mod:`repro.p2p` — unstructured overlay, P-Grid, Chord DHT, referrals
* :mod:`repro.robustness` — attacks and unfair-rating defenses
* :mod:`repro.experiments` — workload generators, metrics, harness
"""

from repro.common import Feedback, Interaction, RatingScale
from repro.core import (
    SelectionEngine,
    Typology,
    classification_tree,
    default_registry,
)
from repro.core.scenarios import (
    DirectSelectionScenario,
    MediatedSelectionScenario,
)
from repro.experiments import (
    World,
    make_world,
    run_selection_experiment,
)
from repro.models import ReputationModel

__version__ = "1.0.0"

__all__ = [
    "DirectSelectionScenario",
    "Feedback",
    "Interaction",
    "MediatedSelectionScenario",
    "RatingScale",
    "ReputationModel",
    "SelectionEngine",
    "Typology",
    "World",
    "__version__",
    "classification_tree",
    "default_registry",
    "make_world",
    "run_selection_experiment",
]
