"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The simulation kernel was driven into an invalid state.

    Examples: scheduling an event in the past, or running a simulation
    that has already been stopped.
    """


class UnknownEntityError(ReproError, KeyError):
    """An entity id (service, provider, consumer, node) is not known.

    Inherits from :class:`KeyError` because lookups are dict-like; callers
    may catch either type.
    """


class RegistryError(ReproError):
    """A registry operation failed (duplicate publication, missing record,
    or the registry has been failed by fault injection)."""


class RoutingError(ReproError):
    """A P2P overlay could not route a message to a responsible node."""
