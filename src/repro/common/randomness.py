"""Deterministic randomness plumbing.

Every stochastic component in the library accepts a
:class:`numpy.random.Generator`.  These helpers create generators from
integer seeds and *spawn* statistically independent child generators so
that adding a new consumer of randomness never perturbs the streams of
existing components — the property that makes experiments reproducible
while remaining extensible.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int`` seed, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class SeedSequenceFactory:
    """Spawn independent generators from a single root seed.

    >>> factory = SeedSequenceFactory(42)
    >>> a = factory.rng("consumers")
    >>> b = factory.rng("providers")

    Streams for distinct labels are independent, and the same
    (root seed, label, call index) always yields the same stream.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self._issued: dict = {}

    def rng(self, label: str = "") -> np.random.Generator:
        """Return a fresh independent generator for *label*.

        Repeated calls with the same label return *different* streams
        (one per call), derived deterministically from the root seed.
        """
        count = self._issued.get(label, 0)
        self._issued[label] = count + 1
        # Derive a child deterministically from (label, count).  Python's
        # builtin hash() is salted per process, so a cryptographic hash
        # keeps streams identical across runs.
        digest = hashlib.sha256(f"{label}\x00{count}".encode()).digest()
        key = int.from_bytes(digest[:4], "big")
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(key,)
        )
        return np.random.default_rng(child)

    def spawn(self, label: str) -> int:
        """Derive an independent integer *root seed* for *label*.

        Unlike :meth:`rng`, ``spawn`` is stateless: the result depends
        only on (root entropy, label), never on call order or on how
        many generators were issued before.  That property is what the
        parallel experiment runtime builds on — a batch of trials can
        derive their seeds in any order, on any worker, and still get
        exactly the streams the serial run would have used.

        The derived value is itself suitable as a
        ``SeedSequenceFactory``/:func:`make_rng` root, and streams under
        distinct labels are statistically independent (distinct
        ``spawn_key`` children of the root sequence).
        """
        digest = hashlib.sha256(f"spawn\x00{label}".encode()).digest()
        # 8 bytes keeps the spawn-key space disjoint from rng()'s
        # 4-byte keys except with negligible probability.
        key = int.from_bytes(digest[:8], "big")
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(key,)
        )
        return int(child.generate_state(1, np.uint64)[0])
