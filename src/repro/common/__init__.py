"""Shared low-level utilities used by every subsystem.

This package deliberately has no dependency on any other ``repro``
subpackage; everything else builds on top of it.
"""

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    RegistryError,
    RoutingError,
    SimulationError,
    UnknownEntityError,
)
from repro.common.ids import EntityId, IdFactory
from repro.common.mathutils import (
    clamp,
    cosine_similarity,
    exponential_decay,
    normalize_weights,
    pearson_correlation,
    safe_mean,
    weighted_mean,
)
from repro.common.randomness import SeedSequenceFactory, make_rng
from repro.common.records import (
    UNIT_SCALE,
    Feedback,
    Interaction,
    RatingScale,
    positive,
    ratings_by_rater,
)

__all__ = [
    "ConfigurationError",
    "EntityId",
    "Feedback",
    "IdFactory",
    "Interaction",
    "RatingScale",
    "RegistryError",
    "ReproError",
    "RoutingError",
    "SeedSequenceFactory",
    "SimulationError",
    "UNIT_SCALE",
    "UnknownEntityError",
    "clamp",
    "cosine_similarity",
    "exponential_decay",
    "make_rng",
    "normalize_weights",
    "pearson_correlation",
    "positive",
    "ratings_by_rater",
    "safe_mean",
    "weighted_mean",
]
