"""Integer sim-time: fixed-point ticks for event-time columns.

Float timestamps are fine inside one process, but they are a poor
exchange format: a shard that re-derives ``epoch * rounds * dt`` in a
different association order can disagree with the coordinator in the
last ulp, and a single off-by-one-ulp breaks byte-identical merges.
Columns that cross a process boundary therefore carry **ticks** — an
``int64`` count of ``1 / TICKS_PER_UNIT`` sim-time units.

``TICKS_PER_UNIT`` is a power of two, so every whole-number time and
every dyadic fraction (0.5, 0.25, 1.75, ...) converts exactly and
round-trips bit-for-bit through :func:`to_ticks` / :func:`from_ticks`.
Arbitrary floats are rounded to the nearest tick (~1 microsecond of
sim time at the default resolution); the rounding is monotone, so tick
order never contradicts float order.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "TICKS_PER_UNIT",
    "to_ticks",
    "from_ticks",
    "ticks_array",
    "times_array",
]

#: ticks per 1.0 of sim time; a power of two so dyadic floats are exact.
TICKS_PER_UNIT = 1 << 20

_Scalar = Union[int, float]


def to_ticks(time: _Scalar) -> int:
    """Nearest ``int64`` tick for a float sim-time (exact for dyadics)."""
    return int(round(float(time) * TICKS_PER_UNIT))


def from_ticks(ticks: _Scalar) -> float:
    """The float sim-time a tick count denotes (exact: dyadic divisor)."""
    return float(ticks) / TICKS_PER_UNIT


def ticks_array(times: np.ndarray) -> np.ndarray:
    """Vectorized :func:`to_ticks`: float array -> int64 tick array."""
    scaled = np.asarray(times, dtype=np.float64) * TICKS_PER_UNIT
    return np.rint(scaled).astype(np.int64)


def times_array(ticks: np.ndarray) -> np.ndarray:
    """Vectorized :func:`from_ticks`: int64 tick array -> float64 array."""
    return np.asarray(ticks, dtype=np.float64) / TICKS_PER_UNIT
