"""Stable string identifiers for simulated entities.

Entities (services, providers, consumers, peers) are identified by plain
strings so they serialize trivially and read well in experiment output.
:class:`IdFactory` hands out deterministic, prefixed, zero-padded ids so
that runs are reproducible and ids sort in creation order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

#: Type alias used throughout the library for entity identifiers.
EntityId = str


class IdFactory:
    """Deterministic generator of prefixed entity ids.

    >>> ids = IdFactory()
    >>> ids.next("svc")
    'svc-0000'
    >>> ids.next("svc")
    'svc-0001'
    >>> ids.next("provider")
    'provider-0000'
    """

    def __init__(self, width: int = 4) -> None:
        if width < 1:
            raise ValueError("id width must be >= 1")
        self._width = width
        self._counters: Dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> EntityId:
        """Return the next id for *prefix* and advance its counter."""
        count = self._counters[prefix]
        self._counters[prefix] = count + 1
        return f"{prefix}-{count:0{self._width}d}"

    def count(self, prefix: str) -> int:
        """Number of ids issued so far for *prefix*."""
        return self._counters[prefix]

    def reset(self) -> None:
        """Forget all counters (ids will repeat after this)."""
        self._counters.clear()
