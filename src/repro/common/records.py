"""Core data records exchanged between subsystems.

Two record types flow through every reputation mechanism in the library:

* :class:`Interaction` — the *objective* outcome of one service
  invocation, as observed by the consumer (per-QoS-metric measurements
  plus a success flag).
* :class:`Feedback` — the *subjective* report a consumer files about a
  target (a service or a provider): an overall rating plus optional
  per-facet ratings.

Keeping these small and immutable makes them safe to share between the
central registry, P2P overlays, and defense filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.ids import EntityId


@dataclass(frozen=True)
class RatingScale:
    """A closed rating interval with a neutral midpoint.

    The library default is ``[0, 1]`` with midpoint 0.5; eBay-style models
    internally map to {-1, 0, +1}.
    """

    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError("rating scale low must be < high")

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def to_unit(self, value: float) -> float:
        """Map *value* on this scale to ``[0, 1]``."""
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, value: float) -> float:
        """Map a ``[0, 1]`` value onto this scale."""
        return self.low + value * (self.high - self.low)


#: The library-wide default rating scale.
UNIT_SCALE = RatingScale(0.0, 1.0)


@dataclass(frozen=True)
class Interaction:
    """Objective outcome of a single service invocation.

    Attributes:
        consumer: id of the invoking consumer.
        service: id of the invoked service.
        provider: id of the service's provider.
        time: simulation time of the invocation.
        success: whether the invocation delivered a usable result.
        observations: measured QoS values keyed by metric name (e.g.
            ``{"response_time": 0.42, "accuracy": 0.97}``).  Values are
            raw measurements in each metric's natural unit.
    """

    consumer: EntityId
    service: EntityId
    provider: EntityId
    time: float
    success: bool
    observations: Mapping[str, float] = field(default_factory=dict)

    def observation(self, metric: str, default: float = 0.0) -> float:
        return self.observations.get(metric, default)


@dataclass(frozen=True)
class Feedback:
    """Subjective report filed by a rater about a target.

    Attributes:
        rater: id of the consumer filing the report.
        target: id of the rated entity (a service or a provider).
        time: simulation time at which the report was filed.
        rating: overall rating on ``[0, 1]`` (dishonest raters may lie).
        facet_ratings: optional per-QoS-facet ratings on ``[0, 1]``.
        interaction: the objective interaction backing this report, when
            available (defenses such as Vu et al.'s monitor comparison
            need it; pure rating systems ignore it).
    """

    rater: EntityId
    target: EntityId
    time: float
    rating: float
    facet_ratings: Mapping[str, float] = field(default_factory=dict)
    interaction: Optional[Interaction] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rating <= 1.0:
            raise ValueError(f"rating must be in [0, 1], got {self.rating}")
        for facet, value in self.facet_ratings.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"facet rating {facet!r} must be in [0, 1], got {value}"
                )

    def facet(self, name: str, default: Optional[float] = None) -> float:
        """Rating for one facet, falling back to the overall rating."""
        if default is None:
            default = self.rating
        return self.facet_ratings.get(name, default)

    def with_rating(self, rating: float) -> "Feedback":
        """Copy of this feedback with a different overall rating."""
        return Feedback(
            rater=self.rater,
            target=self.target,
            time=self.time,
            rating=rating,
            facet_ratings=dict(self.facet_ratings),
            interaction=self.interaction,
        )


def feedback_columns(
    feedbacks: Iterable[Feedback],
) -> Tuple[List[EntityId], List[EntityId], List[float], List[float]]:
    """Pivot feedback into ``(raters, targets, ratings, times)`` columns.

    The struct-of-arrays shape :meth:`repro.store.EventStore.extend`
    ingests in bulk; row order is preserved, facet ratings are not
    carried (models that store facet rows append them individually).
    """
    raters: List[EntityId] = []
    targets: List[EntityId] = []
    ratings: List[float] = []
    times: List[float] = []
    for fb in feedbacks:
        raters.append(fb.rater)
        targets.append(fb.target)
        ratings.append(fb.rating)
        times.append(fb.time)
    return raters, targets, ratings, times


def positive(feedback: Feedback, threshold: float = 0.5) -> bool:
    """True when *feedback* counts as a positive report."""
    return feedback.rating > threshold


def ratings_by_rater(
    feedbacks: "list[Feedback]",
) -> Dict[EntityId, Dict[EntityId, float]]:
    """Pivot a feedback list into ``{rater: {target: latest rating}}``.

    When a rater rated the same target several times the *latest* (by
    time, then input order) rating wins — the shape collaborative
    filtering and cluster filtering both consume.
    """
    table: Dict[EntityId, Dict[EntityId, float]] = {}
    latest_time: Dict[tuple, float] = {}
    for fb in feedbacks:
        key = (fb.rater, fb.target)
        if key in latest_time and fb.time < latest_time[key]:
            continue
        latest_time[key] = fb.time
        table.setdefault(fb.rater, {})[fb.target] = fb.rating
    return table
