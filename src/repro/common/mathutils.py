"""Numeric helpers shared by reputation models and the QoS machinery."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple


def clamp(value: float, low: float, high: float) -> float:
    """Restrict *value* to the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty interval: [{low}, {high}]")
    return max(low, min(high, value))


def safe_mean(values: Iterable[float], default: float = 0.0) -> float:
    """Arithmetic mean, or *default* for an empty iterable."""
    values = list(values)
    if not values:
        return default
    return sum(values) / len(values)


def weighted_mean(
    values: Sequence[float],
    weights: Sequence[float],
    default: float = 0.0,
) -> float:
    """Weighted arithmetic mean; *default* when total weight is zero.

    Raises :class:`ValueError` on length mismatch or negative weights.
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total = sum(weights)
    if total <= 0:
        return default
    return sum(v * w for v, w in zip(values, weights)) / total


def normalize_weights(weights: Mapping[str, float]) -> Dict[str, float]:
    """Scale a non-negative weight mapping so it sums to one.

    An all-zero (or empty) mapping yields uniform weights over its keys;
    an empty mapping returns an empty dict.
    """
    if any(w < 0 for w in weights.values()):
        raise ValueError("weights must be non-negative")
    total = sum(weights.values())
    if not weights:
        return {}
    if total <= 0:
        uniform = 1.0 / len(weights)
        return {key: uniform for key in weights}
    return {key: w / total for key, w in weights.items()}


def exponential_decay(age: float, half_life: float) -> float:
    """Weight in ``(0, 1]`` for an observation *age* old.

    ``half_life`` is the age at which the weight is exactly 0.5.  A
    non-positive age yields weight 1.0.
    """
    if half_life <= 0:
        raise ValueError("half_life must be positive")
    if age <= 0:
        return 1.0
    return math.pow(0.5, age / half_life)


def _centered(values: Sequence[float]) -> Tuple[Sequence[float], float]:
    mean = sum(values) / len(values)
    return [v - mean for v in values], mean


def pearson_correlation(
    xs: Sequence[float], ys: Sequence[float]
) -> Optional[float]:
    """Pearson correlation coefficient of two equal-length samples.

    Returns ``None`` when undefined: fewer than two points, or either
    sample has zero variance.
    """
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    n = len(xs)
    if n < 2:
        return None
    cx, _ = _centered(xs)
    cy, _ = _centered(ys)
    sxx = sum(v * v for v in cx)
    syy = sum(v * v for v in cy)
    if sxx <= 0 or syy <= 0:
        return None
    sxy = sum(a * b for a, b in zip(cx, cy))
    return clamp(sxy / math.sqrt(sxx * syy), -1.0, 1.0)


def cosine_similarity(
    xs: Sequence[float], ys: Sequence[float]
) -> Optional[float]:
    """Cosine of the angle between two equal-length vectors.

    Returns ``None`` when either vector is all-zero or empty.
    """
    if len(xs) != len(ys):
        raise ValueError("vectors must have equal length")
    if not xs:
        return None
    nx = math.sqrt(sum(v * v for v in xs))
    ny = math.sqrt(sum(v * v for v in ys))
    if nx <= 0 or ny <= 0:
        return None
    dot = sum(a * b for a, b in zip(xs, ys))
    return clamp(dot / (nx * ny), -1.0, 1.0)
