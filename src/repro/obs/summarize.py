"""Trace summarizer: ``python -m repro.obs summarize trace.jsonl``.

Reads one or more canonical JSONL traces (see :mod:`repro.obs.trace`),
aggregates event counts and metric totals, prices the ``fig2.*`` cost
ledger, and renders a text or JSON report.  Like the
:mod:`repro.analysis` reporters, output order is canonical (sorted
names everywhere) so the same trace always renders byte-identically —
CI diffs the uploaded summary between runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.ledger import ledger_table
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TelemetrySnapshot, load_jsonl

__all__ = ["summarize", "render_text", "render_json", "main"]


def summarize(snapshots: Sequence[TelemetrySnapshot]) -> Dict[str, Any]:
    """Aggregate traces into one canonical summary dict."""
    metrics = MetricsRegistry.merge_snapshots(
        [snap.metrics for snap in snapshots]
    )
    event_counts: Dict[str, int] = {}
    span_time: Dict[str, float] = {}
    for snap in snapshots:
        for event in snap.events:
            event_counts[event.name] = event_counts.get(event.name, 0) + 1
            if event.kind == "span":
                span_time[event.name] = (
                    span_time.get(event.name, 0.0) + event.duration
                )
    metric_totals: Dict[str, Any] = {}
    for name in sorted(metrics):
        entry = metrics[name]
        if entry["kind"] == "counter":
            metric_totals[name] = sum(
                value for _, value in entry["series"]
            )
        elif entry["kind"] == "histogram":
            count = sum(v["count"] for _, v in entry["series"])
            total = sum(v["sum"] for _, v in entry["series"])
            metric_totals[name] = {
                "count": count,
                "sum": total,
                "mean": (total / count) if count else 0.0,
            }
    return {
        "traces": len(snapshots),
        "events": {
            "total": sum(event_counts.values()),
            "by_name": dict(sorted(event_counts.items())),
            "span_sim_time": {
                name: span_time[name] for name in sorted(span_time)
            },
        },
        "metric_totals": metric_totals,
        "metrics": metrics,
        "fig2_costs": ledger_table(metrics),
        "serve": _serve_table(metrics),
    }


def _serve_table(metrics: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-tenant serve SLA rows (empty for traces without ``serve.*``).

    The import is deferred: :mod:`repro.serve` sits above the obs
    layer in the dependency order, and traces from non-serving runs
    should not pay for it.
    """
    if "serve.admission" not in metrics and "serve.requests" not in metrics:
        return []
    from repro.serve.sla import serve_sla_table

    return serve_sla_table(metrics)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_text(summary: Dict[str, Any]) -> str:
    lines: List[str] = []
    lines.append(
        f"traces: {summary['traces']}  "
        f"events: {summary['events']['total']}"
    )
    by_name = summary["events"]["by_name"]
    if by_name:
        lines.append("")
        lines.append("events by name:")
        width = max(len(name) for name in by_name)
        for name in sorted(by_name):
            row = f"  {name:<{width}}  {by_name[name]}"
            sim_time = summary["events"]["span_sim_time"].get(name)
            if sim_time is not None:
                row += f"  (sim time {_fmt(sim_time)})"
            lines.append(row)
    totals = summary["metric_totals"]
    if totals:
        lines.append("")
        lines.append("metric totals:")
        width = max(len(name) for name in totals)
        for name in sorted(totals):
            value = totals[name]
            if isinstance(value, dict):
                lines.append(
                    f"  {name:<{width}}  count={value['count']} "
                    f"sum={_fmt(value['sum'])} mean={_fmt(value['mean'])}"
                )
            else:
                lines.append(f"  {name:<{width}}  {_fmt(value)}")
    costs = summary["fig2_costs"]
    if costs:
        lines.append("")
        lines.append("fig2 cost ledger:")
        header = (
            f"  {'activity':<16} {'probes':>7} {'reports':>8} "
            f"{'feedback':>9} {'negot.':>7} {'checks':>7} {'sensors':>8} "
            f"{'setup':>9} {'running':>9} {'total':>9}"
        )
        lines.append(header)
        for row in costs:
            lines.append(
                f"  {row['activity']:<16} {row['probes']:>7} "
                f"{row['reports']:>8} {row['feedback']:>9} "
                f"{row['negotiations']:>7} {row['checks']:>7} "
                f"{row['sensors']:>8} {_fmt(row['setup_cost']):>9} "
                f"{_fmt(row['running_cost']):>9} "
                f"{_fmt(row['total_cost']):>9}"
            )
    serve = summary.get("serve") or []
    if serve:
        lines.append("")
        lines.append("serve SLA (per tenant):")
        header = (
            f"  {'tenant':<10} {'subm':>6} {'admit':>6} {'shed':>5} "
            f"{'thr':>5} {'ok':>6} {'degr':>5} {'fail':>5} {'exp':>5} "
            f"{'shed%':>7} {'waitp50':>8} {'waitp99':>8} "
            f"{'rankp50':>8} {'rankp99':>8} {'burn':>6}"
        )
        lines.append(header)
        for row in serve:
            lines.append(
                f"  {row['tenant']:<10} {row['submitted']:>6} "
                f"{row['admitted']:>6} {row['shed']:>5} "
                f"{row['throttled']:>5} {row['ok']:>6} "
                f"{row['degraded']:>5} {row['failed']:>5} "
                f"{row['expired']:>5} "
                f"{row['shed_rate'] * 100.0:>6.2f}% "
                f"{_fmt(row['queue_wait_p50']):>8} "
                f"{_fmt(row['queue_wait_p99']):>8} "
                f"{_fmt(row['rank_latency_p50']):>8} "
                f"{_fmt(row['rank_latency_p99']):>8} "
                f"{row['error_budget_burn']:>6.2f}"
            )
    return "\n".join(lines) + "\n"


def render_json(summary: Dict[str, Any]) -> str:
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Deterministic trace tooling for repro.obs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    cmd = sub.add_parser(
        "summarize", help="Aggregate JSONL traces into a cost/usage report."
    )
    cmd.add_argument("traces", nargs="+", help="trace .jsonl file(s)")
    cmd.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    cmd.add_argument(
        "--output", default=None, help="write report here instead of stdout"
    )
    opts = parser.parse_args(argv)

    snapshots: List[TelemetrySnapshot] = []
    for path in opts.traces:
        try:
            snapshots.append(load_jsonl(path))
        except (OSError, ValueError) as exc:
            print(f"repro.obs: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    summary = summarize(snapshots)
    rendered = (
        render_json(summary) if opts.format == "json" else render_text(summary)
    )
    if opts.output:
        with open(opts.output, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(rendered)
    else:
        sys.stdout.write(rendered)
    return 0
