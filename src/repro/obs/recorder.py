"""The recorder facade: one handle for metrics + tracing, off by default.

Instrumented code follows the `logging` pattern — fetch the ambient
recorder and bail out on a single attribute check::

    rec = get_recorder()
    if rec.enabled:
        rec.count("net.messages.sent", labels=(kind,))

The default recorder is a :class:`NoOpRecorder` (``enabled`` is
``False``), so the disabled cost of an instrumentation site is one
global read and one attribute check.  Experiments that want telemetry
install a live :class:`Recorder` for the duration of a trial via
:func:`use_recorder`.

Determinism contract: the recorder never reads wall-clock time.  Its
notion of "now" is the maximum sim time it has been shown via
:meth:`Recorder.advance` (the sim kernel advances it on every event
dispatch).  Code running outside a simulator — e.g. batch scoring in an
experiment loop — records at the last-known sim time, which is still a
pure function of the workload.

The ambient slot is module-global, not thread-local: trials in the
parallel runtime are isolated per *process*, and a worker runs one
trial at a time, so a plain global is deterministic there.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.trace import TelemetrySnapshot, TraceEvent, Tracer

__all__ = [
    "Recorder",
    "NoOpRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
]


class NoOpRecorder:
    """Default recorder: every operation is a cheap no-op.

    ``enabled`` is the hot-path gate — instrumentation sites check it
    before building labels or attr dicts so the disabled cost stays
    within the benchmark budget.
    """

    enabled: bool = False

    @property
    def now(self) -> float:
        return 0.0

    def advance(self, time: float) -> None:
        return None

    def count(
        self,
        name: str,
        amount: float = 1.0,
        labels: Sequence[str] = (),
        label_names: Sequence[str] = (),
    ) -> None:
        return None

    def gauge(
        self,
        name: str,
        value: float,
        labels: Sequence[str] = (),
        label_names: Sequence[str] = (),
    ) -> None:
        return None

    def observe(
        self,
        name: str,
        value: float,
        labels: Sequence[str] = (),
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        return None

    def event(
        self,
        name: str,
        attrs: Optional[Mapping[str, Any]] = None,
        time: Optional[float] = None,
    ) -> Optional[TraceEvent]:
        return None

    def span(
        self,
        name: str,
        duration: float = 0.0,
        attrs: Optional[Mapping[str, Any]] = None,
        time: Optional[float] = None,
    ) -> Optional[TraceEvent]:
        return None

    def snapshot(
        self, meta: Optional[Mapping[str, Any]] = None
    ) -> TelemetrySnapshot:
        return TelemetrySnapshot(meta=dict(meta or {}))


class Recorder(NoOpRecorder):
    """A live recorder: a metrics registry plus a sim-time tracer."""

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, time: float) -> None:
        """Move the recorder's sim clock forward (never backward)."""
        if time > self._now:
            self._now = float(time)

    def count(
        self,
        name: str,
        amount: float = 1.0,
        labels: Sequence[str] = (),
        label_names: Sequence[str] = (),
    ) -> None:
        self.registry.counter(name, labels=label_names).inc(amount, labels)

    def gauge(
        self,
        name: str,
        value: float,
        labels: Sequence[str] = (),
        label_names: Sequence[str] = (),
    ) -> None:
        self.registry.gauge(name, labels=label_names).set(value, labels)

    def observe(
        self,
        name: str,
        value: float,
        labels: Sequence[str] = (),
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.registry.histogram(
            name, labels=label_names, buckets=buckets
        ).observe(value, labels)

    def event(
        self,
        name: str,
        attrs: Optional[Mapping[str, Any]] = None,
        time: Optional[float] = None,
    ) -> Optional[TraceEvent]:
        at = self._now if time is None else float(time)
        self.advance(at)
        return self.tracer.emit(name, time=at, kind="event", attrs=attrs)

    def span(
        self,
        name: str,
        duration: float = 0.0,
        attrs: Optional[Mapping[str, Any]] = None,
        time: Optional[float] = None,
    ) -> Optional[TraceEvent]:
        at = self._now if time is None else float(time)
        self.advance(at + duration)
        return self.tracer.emit(
            name, time=at, kind="span", duration=duration, attrs=attrs
        )

    def snapshot(
        self, meta: Optional[Mapping[str, Any]] = None
    ) -> TelemetrySnapshot:
        return TelemetrySnapshot.capture(self.tracer, self.registry, meta)

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.reset()
        self._now = 0.0


_DEFAULT = NoOpRecorder()
_CURRENT: NoOpRecorder = _DEFAULT


def get_recorder() -> NoOpRecorder:
    """The ambient recorder (a no-op unless one was installed)."""
    return _CURRENT


def set_recorder(recorder: Optional[NoOpRecorder]) -> NoOpRecorder:
    """Install ``recorder`` as ambient; ``None`` restores the no-op.

    Returns the previously installed recorder so callers can restore it.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = recorder if recorder is not None else _DEFAULT
    return previous


@contextmanager
def use_recorder(recorder: NoOpRecorder) -> Iterator[NoOpRecorder]:
    """Scope an ambient recorder to a ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
