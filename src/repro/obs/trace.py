"""Sim-clock-stamped event/span tracer with canonical JSONL export.

Every trace event is stamped with *simulation* time (never wall-clock)
plus a per-tracer sequence number, giving a strict ``(sim_time, seq)``
total order: two events can share a sim time, but never a sequence
number.  Because both components derive purely from the simulated
workload, a trace is byte-identical across runs and across
process-pool worker counts for the same seed.

Serialization is canonical JSON — ``sort_keys=True``, compact
separators, attribute values coerced to plain str/int/float/bool/None —
so exported files can be compared with ``cmp``/sha256 directly.

A :class:`TelemetrySnapshot` bundles a tracer's events with a metrics
snapshot; snapshots from independent trials merge in canonical spec
order (events re-labeled with their trial and ordered by
``(trial_index, seq)``; metric series summed per
:meth:`MetricsRegistry.merge_snapshots`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    IO,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TraceEvent",
    "Tracer",
    "TelemetrySnapshot",
    "canonical_json",
    "write_jsonl",
    "dump_jsonl",
    "read_jsonl",
    "load_jsonl",
]

#: Trace format version, stamped into the JSONL meta line.
TRACE_VERSION = 1

AttrValue = Union[str, int, float, bool, None]


def _coerce_attr(value: Any) -> AttrValue:
    """Force attribute values to canonical JSON scalars.

    Numpy scalars, Enums, and other exotica would serialize
    inconsistently (or not at all); pin everything to plain Python
    str/int/float/bool/None before it enters the trace.
    """
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    # Numpy integer/floating expose item(); anything else becomes str.
    item = getattr(value, "item", None)
    if callable(item):
        return _coerce_attr(item())
    return str(value)


@dataclass(frozen=True)
class TraceEvent:
    """One point ("event") or interval ("span") in sim time."""

    time: float
    seq: int
    name: str
    kind: str = "event"  # "event" | "span"
    duration: float = 0.0  # sim-time width; 0 for point events
    attrs: Tuple[Tuple[str, AttrValue], ...] = ()

    def sort_key(self) -> Tuple[float, int]:
        return (self.time, self.seq)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t": self.time,
            "seq": self.seq,
            "name": self.name,
            "kind": self.kind,
            "dur": self.duration,
            "attrs": {k: v for k, v in self.attrs},
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "TraceEvent":
        attrs = payload.get("attrs", {})
        return TraceEvent(
            time=float(payload["t"]),
            seq=int(payload["seq"]),
            name=str(payload["name"]),
            kind=str(payload.get("kind", "event")),
            duration=float(payload.get("dur", 0.0)),
            attrs=tuple(sorted((str(k), _coerce_attr(v)) for k, v in attrs.items())),
        )


class Tracer:
    """Collects :class:`TraceEvent` records in ``(sim_time, seq)`` order.

    The tracer does not own a clock; callers pass sim time explicitly
    (usually via :class:`repro.obs.recorder.Recorder`, which tracks the
    max sim time it has seen).  The ``seq`` counter breaks ties between
    events at the same instant and makes the order total.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._seq = 0

    def emit(
        self,
        name: str,
        time: float,
        kind: str = "event",
        duration: float = 0.0,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> TraceEvent:
        if duration < 0:
            raise ConfigurationError(
                f"span {name!r} has negative duration {duration}"
            )
        packed: Tuple[Tuple[str, AttrValue], ...] = ()
        if attrs:
            packed = tuple(
                sorted((str(k), _coerce_attr(v)) for k, v in attrs.items())
            )
        event = TraceEvent(
            time=float(time),
            seq=self._seq,
            name=name,
            kind=kind,
            duration=float(duration),
            attrs=packed,
        )
        self._seq += 1
        self.events.append(event)
        return event

    def reset(self) -> None:
        self.events = []
        self._seq = 0


@dataclass
class TelemetrySnapshot:
    """A trial's telemetry: trace events + a metrics snapshot.

    ``meta`` carries identifying context (trial label, seed, model);
    its values must be canonical JSON scalars.
    """

    events: List[TraceEvent] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, AttrValue] = field(default_factory=dict)

    @staticmethod
    def capture(
        tracer: Tracer,
        registry: MetricsRegistry,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> "TelemetrySnapshot":
        return TelemetrySnapshot(
            events=list(tracer.events),
            metrics=registry.snapshot(),
            meta={
                str(k): _coerce_attr(v) for k, v in (meta or {}).items()
            },
        )

    @staticmethod
    def merge(
        snapshots: Sequence["TelemetrySnapshot"],
        labels: Optional[Sequence[str]] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> "TelemetrySnapshot":
        """Merge per-trial snapshots in the given (canonical) order.

        Events gain a ``trial`` attribute and are re-sequenced by
        ``(trial_index, seq)`` so the merged stream is identical no
        matter how many workers produced the inputs.  Metrics merge per
        :meth:`MetricsRegistry.merge_snapshots`.
        """
        if labels is not None and len(labels) != len(snapshots):
            raise ConfigurationError(
                f"{len(labels)} labels for {len(snapshots)} snapshots"
            )
        events: List[TraceEvent] = []
        seq = 0
        for index, snap in enumerate(snapshots):
            label = labels[index] if labels is not None else str(index)
            for event in snap.events:
                events.append(
                    TraceEvent(
                        time=event.time,
                        seq=seq,
                        name=event.name,
                        kind=event.kind,
                        duration=event.duration,
                        attrs=tuple(
                            sorted(dict(event.attrs, trial=label).items())
                        ),
                    )
                )
                seq += 1
        merged_meta: Dict[str, AttrValue] = {
            "trials": len(snapshots),
        }
        if labels is not None:
            merged_meta["labels"] = ",".join(labels)
        for k, v in (meta or {}).items():
            merged_meta[str(k)] = _coerce_attr(v)
        return TelemetrySnapshot(
            events=events,
            metrics=MetricsRegistry.merge_snapshots(
                [snap.metrics for snap in snapshots]
            ),
            meta=merged_meta,
        )


def canonical_json(obj: Any) -> str:
    """Canonical, byte-stable JSON encoding (sorted keys, compact)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def write_jsonl(snapshot: TelemetrySnapshot, stream: IO[str]) -> None:
    """Write a snapshot as canonical JSONL.

    Line 1 is a ``meta`` record (format version + snapshot meta), then
    one ``event`` record per trace event in ``(time, seq)`` order, then
    a final ``metrics`` record.
    """
    header = {
        "record": "meta",
        "version": TRACE_VERSION,
        "meta": dict(sorted(snapshot.meta.items())),
    }
    stream.write(canonical_json(header) + "\n")
    for event in sorted(snapshot.events, key=TraceEvent.sort_key):
        payload = event.to_dict()
        payload["record"] = "event"
        stream.write(canonical_json(payload) + "\n")
    stream.write(
        canonical_json({"record": "metrics", "metrics": snapshot.metrics})
        + "\n"
    )


def dump_jsonl(snapshot: TelemetrySnapshot, path: str) -> None:
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        write_jsonl(snapshot, handle)


def read_jsonl(lines: Iterable[str]) -> TelemetrySnapshot:
    """Parse a JSONL trace back into a :class:`TelemetrySnapshot`."""
    snapshot = TelemetrySnapshot()
    for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        payload = json.loads(raw)
        record = payload.get("record")
        if record == "meta":
            snapshot.meta = {
                str(k): _coerce_attr(v)
                for k, v in payload.get("meta", {}).items()
            }
        elif record == "event":
            snapshot.events.append(TraceEvent.from_dict(payload))
        elif record == "metrics":
            snapshot.metrics = payload.get("metrics", {})
        else:
            raise ConfigurationError(
                f"unknown trace record type {record!r}"
            )
    return snapshot


def load_jsonl(path: str) -> TelemetrySnapshot:
    with open(path, "r", encoding="utf-8") as handle:
        return read_jsonl(handle)
