"""repro.obs — deterministic observability: metrics, traces, cost ledgers.

Telemetry that obeys the repo's reproducibility contract: everything is
stamped with *simulation* time (never wall-clock), ordered by a strict
``(sim_time, seq)`` key, and serialized canonically, so a trace of a
seeded experiment is byte-identical across runs and across
process-pool worker counts.  The default ambient recorder is a no-op;
instrumentation sites cost one attribute check unless a trial installs
a live :class:`Recorder` (see DESIGN.md §11).
"""

from repro.obs.ledger import (
    MESSAGE_COST,
    NEGOTIATION_COST,
    PROBE_COST,
    SENSOR_COST,
    ActivityLedger,
    ledger_table,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import (
    NoOpRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
)
from repro.obs.trace import (
    TelemetrySnapshot,
    TraceEvent,
    Tracer,
    canonical_json,
    dump_jsonl,
    load_jsonl,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "TraceEvent",
    "Tracer",
    "TelemetrySnapshot",
    "canonical_json",
    "write_jsonl",
    "dump_jsonl",
    "read_jsonl",
    "load_jsonl",
    "Recorder",
    "NoOpRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "ActivityLedger",
    "ledger_table",
    "SENSOR_COST",
    "PROBE_COST",
    "MESSAGE_COST",
    "NEGOTIATION_COST",
]
