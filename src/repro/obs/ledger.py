"""Figure-2 activity cost accounting on top of the metrics registry.

The paper's Figure 2 argues about *cost*: third-party monitoring is
"very costly … only suitable for a small number of services" while
consumer feedback scales.  This module turns those claims into a
uniform ledger: each activity (``advertised``, ``sla``, ``sensors``,
``central_monitor``, ``feedback``) charges countable cost drivers to
``fig2.*`` counters labeled by activity, and :func:`ledger_table`
prices them with the shared cost model so a trace, a benchmark, and an
:class:`~repro.experiments.activities.ApproachReport` all agree on the
same numbers.

Cost model (arbitrary units, sensors deliberately expensive as the
paper argues: "the cost will be huge"):

* setup   = sensors × ``SENSOR_COST`` + negotiations × ``NEGOTIATION_COST``
* running = probes × ``PROBE_COST``
          + (reports + feedback + checks) × ``MESSAGE_COST``
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SENSOR_COST",
    "PROBE_COST",
    "MESSAGE_COST",
    "NEGOTIATION_COST",
    "COST_DRIVERS",
    "ActivityLedger",
    "ledger_table",
    "merged_ledger_table",
]

SENSOR_COST = 10.0
PROBE_COST = 0.1
MESSAGE_COST = 0.01
NEGOTIATION_COST = 1.0

#: Countable drivers the ledger tracks, each a ``fig2.<driver>`` counter.
COST_DRIVERS = (
    "probes",
    "reports",
    "feedback",
    "negotiations",
    "checks",
    "sensors",
)


class ActivityLedger:
    """Charges Figure-2 cost drivers to per-activity counters."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            driver: self.registry.counter(
                f"fig2.{driver}",
                help=f"Figure-2 cost driver: {driver}",
                labels=("activity",),
            )
            for driver in COST_DRIVERS
        }

    def charge(
        self,
        activity: str,
        probes: int = 0,
        reports: int = 0,
        feedback: int = 0,
        negotiations: int = 0,
        checks: int = 0,
        sensors: int = 0,
    ) -> None:
        amounts = {
            "probes": probes,
            "reports": reports,
            "feedback": feedback,
            "negotiations": negotiations,
            "checks": checks,
            "sensors": sensors,
        }
        for driver in COST_DRIVERS:
            amount = amounts[driver]
            if amount:
                self._counters[driver].inc(amount, labels=(activity,))

    def touch(self, activity: str) -> None:
        """Register an activity with zero charges (so it shows in tables)."""
        for driver in COST_DRIVERS:
            self._counters[driver].inc(0, labels=(activity,))

    def totals(self, activity: str) -> Dict[str, int]:
        return {
            driver: int(self._counters[driver].value(labels=(activity,)))
            for driver in COST_DRIVERS
        }

    def activities(self) -> List[str]:
        names = set()
        for counter in self._counters.values():
            for (activity,), _ in counter.items():
                names.add(activity)
        return sorted(names)

    def table(self) -> List[Dict[str, Any]]:
        return ledger_table(self.registry.snapshot())


def _driver_totals(
    metrics: Mapping[str, Any],
) -> Dict[str, Dict[str, float]]:
    """Per-activity driver counts from a metrics snapshot."""
    per_activity: Dict[str, Dict[str, float]] = {}
    for driver in COST_DRIVERS:
        entry = metrics.get(f"fig2.{driver}")
        if not entry:
            continue
        for key, value in entry["series"]:
            activity = key[0] if key else ""
            slot = per_activity.setdefault(
                activity, {d: 0.0 for d in COST_DRIVERS}
            )
            slot[driver] += float(value)
    return per_activity


def ledger_table(metrics: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Price the ``fig2.*`` counters in a metrics snapshot.

    Returns one row per activity (sorted by name) with raw driver
    counts plus derived ``setup_cost`` / ``running_cost`` /
    ``total_cost`` / ``messages`` — the same decomposition
    :class:`~repro.experiments.activities.ApproachReport` carries.
    """
    rows: List[Dict[str, Any]] = []
    for activity, drivers in sorted(_driver_totals(metrics).items()):
        setup = (
            drivers["sensors"] * SENSOR_COST
            + drivers["negotiations"] * NEGOTIATION_COST
        )
        messages = drivers["reports"] + drivers["feedback"] + drivers["checks"]
        running = drivers["probes"] * PROBE_COST + messages * MESSAGE_COST
        row: Dict[str, Any] = {"activity": activity}
        for driver in COST_DRIVERS:
            row[driver] = int(drivers[driver])
        row["messages"] = int(messages)
        row["setup_cost"] = round(setup, 10)
        row["running_cost"] = round(running, 10)
        row["total_cost"] = round(setup + running, 10)
        rows.append(row)
    return rows


def merged_ledger_table(
    snapshots: "List[Mapping[str, Any]]",
) -> List[Dict[str, Any]]:
    """One priced Figure-2 table across several registry snapshots.

    The per-shard case: each shard charges its own ledger, the
    coordinator merges the snapshots (counter sums) and prices the
    result once.  A shard that only :meth:`ActivityLedger.touch`-ed an
    activity — it ran but nothing was charged — still contributes its
    zero-valued series, so the merged table lists the activity instead
    of silently dropping the quiet shard's row.
    """
    if not snapshots:
        return []
    return ledger_table(MetricsRegistry.merge_snapshots(list(snapshots)))
