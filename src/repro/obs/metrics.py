"""Deterministic metrics registry: counters, gauges, histograms.

The registry is the one place cost and performance counters live.  It
is deliberately boring: plain dict storage, fixed histogram bucket
boundaries, and label values carried as tuples of strings — no
wall-clock reads, no ambient randomness, no hash-order iteration — so a
snapshot of a registry is a pure function of the operations applied to
it and serializes byte-identically across runs, interpreters, and
process-pool workers.

Three metric kinds:

* :class:`Counter` — monotonically increasing totals (messages sent,
  probes issued, cache hits).
* :class:`Gauge` — last-written values (queue depth, breaker state).
* :class:`Histogram` — value distributions over *fixed* bucket
  boundaries chosen at registration time (batch sizes, iteration
  counts).  Fixed boundaries make merged snapshots well-defined:
  bucket counts from different trials add.

Metrics are labeled (``labels=("model",)``) and every distinct label
tuple owns an independent series.  :meth:`MetricsRegistry.snapshot`
renders everything to a JSON-able dict with sorted names and sorted
series keys; :meth:`MetricsRegistry.merge_snapshots` merges snapshots
in the caller's (canonical) order.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

LabelValues = Tuple[str, ...]

#: Default histogram boundaries: a 1-2-5 ladder wide enough for batch
#: sizes, iteration counts, and message tallies.  An implicit overflow
#: bucket catches everything above the last boundary.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


def _as_number(value: float) -> Union[int, float]:
    """Integral floats render as ints in snapshots (stable and readable)."""
    number = float(value)
    if number.is_integer():
        return int(number)
    return number


class Metric:
    """Base class: a named family of labeled series."""

    kind = "abstract"

    def __init__(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> None:
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self.series: Dict[LabelValues, Any] = {}

    def _key(self, labels: Sequence[str]) -> LabelValues:
        key = tuple(str(v) for v in labels)
        if len(key) != len(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {key!r}"
            )
        return key

    def items(self) -> List[Tuple[LabelValues, Any]]:
        """Series in sorted label order (deterministic)."""
        return sorted(self.series.items())

    def _series_snapshot(self, value: Any) -> Any:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view: sorted series, label values as lists."""
        return {
            "kind": self.kind,
            "labels": list(self.label_names),
            "series": [
                [list(key), self._series_snapshot(value)]
                for key, value in self.items()
            ],
        }


class Counter(Metric):
    """A monotonically increasing total per label tuple."""

    kind = "counter"

    def inc(self, amount: float = 1.0, labels: Sequence[str] = ()) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        key = self._key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def value(self, labels: Sequence[str] = ()) -> float:
        return float(self.series.get(self._key(labels), 0.0))

    def total(self) -> float:
        """Sum across all label tuples."""
        return float(sum(self.series[key] for key, _ in self.items()))

    def _series_snapshot(self, value: Any) -> Any:
        return _as_number(value)


class Gauge(Metric):
    """A last-written value per label tuple."""

    kind = "gauge"

    def set(self, value: float, labels: Sequence[str] = ()) -> None:
        self.series[self._key(labels)] = float(value)

    def value(
        self, labels: Sequence[str] = (), default: float = 0.0
    ) -> float:
        return float(self.series.get(self._key(labels), default))

    def _series_snapshot(self, value: Any) -> Any:
        return _as_number(value)


class Histogram(Metric):
    """Bucketed value distribution with *fixed* boundaries.

    A series holds ``len(boundaries) + 1`` non-cumulative bucket counts
    (the final bucket is the overflow above the last boundary), plus
    the running count and sum — enough to merge across trials and to
    report means without storing samples.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.buckets: Tuple[float, ...] = bounds

    def observe(self, value: float, labels: Sequence[str] = ()) -> None:
        key = self._key(labels)
        entry = self.series.get(key)
        if entry is None:
            entry = {
                "counts": [0] * (len(self.buckets) + 1),
                "count": 0,
                "sum": 0.0,
            }
            self.series[key] = entry
        value = float(value)
        entry["counts"][bisect.bisect_left(self.buckets, value)] += 1
        entry["count"] += 1
        entry["sum"] += value

    def count(self, labels: Sequence[str] = ()) -> int:
        entry = self.series.get(self._key(labels))
        return int(entry["count"]) if entry else 0

    def sum(self, labels: Sequence[str] = ()) -> float:
        entry = self.series.get(self._key(labels))
        return float(entry["sum"]) if entry else 0.0

    def mean(self, labels: Sequence[str] = ()) -> float:
        entry = self.series.get(self._key(labels))
        if not entry or not entry["count"]:
            return 0.0
        return float(entry["sum"]) / float(entry["count"])

    def _series_snapshot(self, value: Any) -> Any:
        return {
            "buckets": [_as_number(b) for b in self.buckets],
            "counts": list(value["counts"]),
            "count": int(value["count"]),
            "sum": _as_number(value["sum"]),
        }


class MetricsRegistry:
    """Get-or-create home for metrics, with deterministic snapshots."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(
        self, cls: type, name: str, help: str, labels: Sequence[str], **kwargs: Any
    ) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        if metric.label_names != tuple(labels):
            raise ConfigurationError(
                f"metric {name!r} already registered with labels "
                f"{metric.label_names}, got {tuple(labels)}"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        metric = self._get_or_create(Counter, name, help, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        metric = self._get_or_create(Gauge, name, help, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )
        assert isinstance(metric, Histogram)
        return metric

    def metric(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Clear every series (metric registrations survive)."""
        for name in self.names():
            self._metrics[name].series = {}

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-able view of every metric."""
        return {
            name: self._metrics[name].snapshot() for name in self.names()
        }

    @staticmethod
    def merge_snapshots(
        snapshots: Sequence[Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Merge snapshots in the given (canonical) order.

        Counters and histogram series add; gauges take the value from
        the *last* snapshot carrying the series.  Metric kind/label
        mismatches across snapshots are configuration errors.
        """
        merged: Dict[str, Dict[str, Any]] = {}
        for snap in snapshots:
            for name in sorted(snap):
                entry = snap[name]
                slot = merged.get(name)
                if slot is None:
                    slot = {
                        "kind": entry["kind"],
                        "labels": list(entry["labels"]),
                        "series": {},
                    }
                    merged[name] = slot
                elif (
                    slot["kind"] != entry["kind"]
                    or slot["labels"] != list(entry["labels"])
                ):
                    raise ConfigurationError(
                        f"cannot merge metric {name!r}: kind/label mismatch"
                    )
                for key_list, value in entry["series"]:
                    key = tuple(key_list)
                    _merge_series(slot, key, value, entry["kind"])
        return {
            name: {
                "kind": slot["kind"],
                "labels": slot["labels"],
                "series": [
                    [list(key), value]
                    for key, value in sorted(slot["series"].items())
                ],
            }
            for name, slot in sorted(merged.items())
        }


def _merge_series(
    slot: Dict[str, Any], key: LabelValues, value: Any, kind: str
) -> None:
    existing = slot["series"].get(key)
    if kind == "counter":
        base = existing if existing is not None else 0
        slot["series"][key] = _as_number(float(base) + float(value))
    elif kind == "gauge":
        slot["series"][key] = value  # last writer wins
    elif kind == "histogram":
        if existing is None:
            slot["series"][key] = {
                "buckets": list(value["buckets"]),
                "counts": list(value["counts"]),
                "count": int(value["count"]),
                "sum": value["sum"],
            }
        else:
            if existing["buckets"] != list(value["buckets"]):
                raise ConfigurationError(
                    "cannot merge histogram series with different buckets"
                )
            existing["counts"] = [
                a + b for a, b in zip(existing["counts"], value["counts"])
            ]
            existing["count"] = int(existing["count"]) + int(value["count"])
            existing["sum"] = _as_number(
                float(existing["sum"]) + float(value["sum"])
            )
    else:
        raise ConfigurationError(f"unknown metric kind {kind!r}")
