"""Shared segment-reduction kernels over store columns.

Thin, well-specified wrappers around the numpy idioms every columnar
scoring kernel leans on (``np.bincount`` segment sums, lexsorted
latest-per-group extraction), so model code states *what* it reduces
rather than re-deriving the index arithmetic.

A property worth knowing when chasing exact parity: ``np.bincount``
accumulates its weights **in input order** (one sequential add per
row), so a kernel that feeds rows in the same order as the scalar
recursion performs bit-identical additions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["group_counts", "group_sums", "latest_rows"]


def group_sums(
    codes: np.ndarray,
    minlength: int,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-code sums of *weights* (or counts) as a dense float64 array.

    Rows with negative codes (unseen / overall-facet markers) must be
    filtered out by the caller — bincount rejects them.
    """
    return np.bincount(codes, weights=weights, minlength=minlength).astype(
        np.float64, copy=False
    )


def group_counts(codes: np.ndarray, minlength: int) -> np.ndarray:
    """Per-code row counts as an int64 array."""
    return np.bincount(codes, minlength=minlength)


def latest_rows(
    keys: np.ndarray, times: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(unique_keys, row_ids)``: the winning row per key.

    The winner of each key group is the row with the greatest
    ``(time, row id)`` — exactly the "later report with ``time >=``
    replaces" update rule the scalar models apply per event.
    ``unique_keys`` is ascending; ``row_ids`` aligns with it.
    """
    if not len(keys):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.lexsort((times, keys))
    grouped = keys[order]
    is_last = np.empty(len(grouped), dtype=bool)
    is_last[-1] = True
    np.not_equal(grouped[1:], grouped[:-1], out=is_last[:-1])
    rows = order[is_last]
    return grouped[is_last], rows
