"""Append-only columnar event store (struct-of-arrays feedback log).

Every feedback event is one logical row across five parallel columns:

====================  =======  ==========================================
column                dtype    meaning
====================  =======  ==========================================
``rater``             int32    interned consumer id (shared entity table)
``target``            int32    interned provider/service id (same table)
``facet``             int32    interned facet name; ``-1`` = overall
``value``             float64  the rating on ``[0, 1]``
``time``              float64  simulation time the report was filed
                      /int64   (int64 tick stores: ``repro.common.simtime``)
====================  =======  ==========================================

Rows live in sealed fixed-size numpy chunks plus a mutable Python-list
tail, so ``append`` is a few list appends (no numpy realloc per event)
while kernels see contiguous arrays via :meth:`EventStore.snapshot`.
The implicit row number (append order) is the store's int64 sequence
column — kernels that need "latest wins" tie-breaking get it from row
position, which is why the logical row order is part of the canonical
encoding.

Invariants the property suite pins:

* **chunking is invisible** — the same event stream produces the same
  :meth:`canonical_bytes` for any ``chunk_size``, because the encoding
  covers logical row order and interner tables only;
* **merge is concatenation + re-interning** — :meth:`merge_from`
  appends the other store's rows in their logical order, translating
  codes through this store's interners (the same canonical-merge
  discipline the obs registry uses);
* **indexes are views** — :meth:`by_target` etc. return group slices
  (stable argsort + searchsorted) over the snapshot, never copies of
  the event data.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.store.interner import Interner

__all__ = ["ColumnSet", "EventStore", "GroupIndex", "OVERALL_FACET"]

#: Facet code of the overall rating (facet column is -1 for rows that
#: carry the feedback's overall rating rather than one facet's).
OVERALL_FACET = -1

_EMPTY_I4 = np.empty(0, dtype=np.int32)
_EMPTY_F8 = np.empty(0, dtype=np.float64)
_EMPTY_I8 = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class ColumnSet:
    """An immutable struct-of-arrays view of the store at one version."""

    rater: np.ndarray
    target: np.ndarray
    facet: np.ndarray
    value: np.ndarray
    time: np.ndarray

    @property
    def n(self) -> int:
        return len(self.value)

    def pair_keys(self) -> np.ndarray:
        """int64 ``(rater << 32) | target`` keys, one per row."""
        return (self.rater.astype(np.int64) << 32) | self.target.astype(
            np.int64
        )

    def target_facet_keys(self) -> np.ndarray:
        """int64 ``(target << 32) | (facet + 1)`` keys, one per row."""
        return (self.target.astype(np.int64) << 32) | (
            self.facet.astype(np.int64) + 1
        )


class GroupIndex:
    """Zero-copy group slices over one code column.

    ``order`` is a stable argsort of the codes, so within one group the
    rows keep their logical (append) order unless a *secondary* sort
    key was supplied at build time.  ``rows(code)`` returns the row ids
    of one group as a slice of ``order`` — a view, not a copy.
    """

    __slots__ = ("order", "codes", "starts", "ends")

    def __init__(
        self, keys: np.ndarray, secondary: Optional[np.ndarray] = None
    ) -> None:
        if secondary is None:
            self.order = np.argsort(keys, kind="stable")
        else:
            # lexsort is a sequence of stable sorts: primary = keys,
            # secondary = the supplied key, full ties keep append order.
            self.order = np.lexsort((secondary, keys))
        grouped = keys[self.order]
        self.codes, self.starts = np.unique(grouped, return_index=True)
        self.ends = np.append(self.starts[1:], len(grouped))

    def __len__(self) -> int:
        return len(self.codes)

    def slot(self, code: int) -> int:
        """Position of *code* in :attr:`codes`, or -1 when absent."""
        i = int(np.searchsorted(self.codes, code))
        if i < len(self.codes) and self.codes[i] == code:
            return i
        return -1

    def rows(self, code: int) -> np.ndarray:
        """Row ids of one group (empty array when absent) — a view."""
        i = self.slot(code)
        if i < 0:
            return _EMPTY_I8
        return self.order[self.starts[i]: self.ends[i]]

    def group_sizes(self) -> np.ndarray:
        return self.ends - self.starts

    def ranks(self) -> np.ndarray:
        """Rank of each *sorted* position within its group (0-based).

        Aligned with :attr:`order`: ``ranks()[i]`` is the rank of row
        ``order[i]`` inside its group.
        """
        n = len(self.order)
        ranks = np.arange(n, dtype=np.int64)
        if len(self.starts):
            offsets = np.zeros(n, dtype=np.int64)
            offsets[self.starts] = self.starts
            np.maximum.accumulate(offsets, out=offsets)
            ranks -= offsets
        return ranks


class _Chunk:
    """One sealed, immutable block of rows."""

    __slots__ = ("rater", "target", "facet", "value", "time")

    def __init__(
        self,
        rater: np.ndarray,
        target: np.ndarray,
        facet: np.ndarray,
        value: np.ndarray,
        time: np.ndarray,
    ) -> None:
        self.rater = rater
        self.target = target
        self.facet = facet
        self.value = value
        self.time = time

    def __len__(self) -> int:
        return len(self.value)


class EventStore:
    """Append-only columnar feedback log with interned id columns.

    Args:
        chunk_size: rows per sealed chunk; purely a performance knob —
            the canonical encoding (and every query result) is
            independent of it.
        time_dtype: ``"float64"`` (default) or ``"int64"``.  An int64
            store keeps the time column as exact integer ticks
            (``repro.common.simtime``), the exchange format shard
            deltas use; its canonical encoding carries a distinct
            header tag, and :meth:`merge_from` refuses to mix the two.
    """

    _HEADERS = {
        np.dtype(np.float64): b"repro.store.v1\x00",
        np.dtype(np.int64): b"repro.store.v1:i64\x00",
    }

    def __init__(
        self,
        chunk_size: int = 4096,
        time_dtype: Union[str, np.dtype] = "float64",
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self.time_dtype = np.dtype(time_dtype)
        if self.time_dtype not in self._HEADERS:
            raise ValueError(
                "time_dtype must be 'float64' or 'int64', "
                f"got {time_dtype!r}"
            )
        self._time_is_int = self.time_dtype == np.dtype(np.int64)
        #: one shared table for raters *and* targets — several surveyed
        #: mechanisms (Sporas, Histos, PeerTrust) relate an entity's
        #: behaviour as rater to its standing as target, which needs a
        #: single code space.
        self.entities = Interner()
        self.facets = Interner()
        self._chunks: List[_Chunk] = []
        self._tail_rater: List[int] = []
        self._tail_target: List[int] = []
        self._tail_facet: List[int] = []
        self._tail_value: List[float] = []
        self._tail_time: List[float] = []
        self._sealed_rows = 0
        #: cached (version, ColumnSet) snapshot
        self._snapshot: Optional[Tuple[int, ColumnSet]] = None
        #: cached group indexes: name -> (version, GroupIndex)
        self._indexes: Dict[str, Tuple[int, GroupIndex]] = {}
        #: True while the time column is non-decreasing in append
        #: order — lets time-ordered kernels skip their lexsort.
        self._times_sorted = True
        self._last_time: Optional[float] = None

    # -- writing -------------------------------------------------------
    def __len__(self) -> int:
        return self._sealed_rows + len(self._tail_value)

    @property
    def version(self) -> int:
        """Monotone change counter (the store is append-only, so the
        row count is the version)."""
        return len(self)

    @property
    def times_monotonic(self) -> bool:
        """Whether every append so far arrived in non-decreasing time."""
        return self._times_sorted

    def append(
        self,
        rater: str,
        target: str,
        value: float,
        time: float,
        facet: Optional[str] = None,
    ) -> None:
        """Append one row (the ``record`` hot path)."""
        if self._time_is_int:
            # Rejects floats outright: silent truncation of a float
            # timestamp is exactly the bug tick stores exist to prevent.
            time = operator.index(time)
        self._tail_rater.append(self.entities.intern(rater))
        self._tail_target.append(self.entities.intern(target))
        self._tail_facet.append(
            OVERALL_FACET if facet is None else self.facets.intern(facet)
        )
        self._tail_value.append(value)
        self._tail_time.append(time)
        if self._times_sorted:
            last = self._last_time
            if last is not None and time < last:
                self._times_sorted = False
        self._last_time = time
        if len(self._tail_value) >= self.chunk_size:
            self._seal_tail()

    def extend(
        self,
        raters: Sequence[str],
        targets: Sequence[str],
        values: Sequence[float],
        times: Sequence[float],
    ) -> None:
        """Bulk-append overall rows from parallel columns.

        Produces exactly the rows the equivalent :meth:`append` loop
        would (same codes, same order); it just skips the per-event
        Python frame and list growth.
        """
        n = len(values)
        if not n:
            return
        # Intern rater/target interleaved per row — interning all raters
        # first would assign different codes than the append loop when a
        # new id shows up in both columns.
        intern = self.entities.intern
        rater_codes = [0] * n
        target_codes = [0] * n
        for i, (rater, target) in enumerate(zip(raters, targets)):
            rater_codes[i] = intern(rater)
            target_codes[i] = intern(target)
        self._tail_rater.extend(rater_codes)
        self._tail_target.extend(target_codes)
        self._tail_facet.extend([OVERALL_FACET] * n)
        self._tail_value.extend(values)
        arr = self._as_time_array(times)
        self._tail_time.extend(arr.tolist())
        if self._times_sorted:
            last = self._last_time
            if (last is not None and len(arr) and arr[0] < last) or (
                len(arr) > 1 and bool(np.any(np.diff(arr) < 0))
            ):
                self._times_sorted = False
        self._last_time = self._py_time(arr[n - 1])
        while len(self._tail_value) >= self.chunk_size:
            self._seal_tail(self.chunk_size)

    def _as_time_array(self, times: Sequence[float]) -> np.ndarray:
        arr = np.asarray(times)
        if not self._time_is_int:
            return arr.astype(np.float64, copy=False)
        if arr.dtype.kind not in "iu":
            raise TypeError(
                "int64-time store requires integer tick times "
                f"(got dtype {arr.dtype}); convert with "
                "repro.common.simtime.to_ticks"
            )
        return arr.astype(np.int64, copy=False)

    def _py_time(self, value: Union[int, float, np.number]) -> Union[int, float]:
        return int(value) if self._time_is_int else float(value)

    def _seal_tail(self, limit: Optional[int] = None) -> None:
        take = len(self._tail_value) if limit is None else limit
        if not take:
            return
        chunk = _Chunk(
            np.asarray(self._tail_rater[:take], dtype=np.int32),
            np.asarray(self._tail_target[:take], dtype=np.int32),
            np.asarray(self._tail_facet[:take], dtype=np.int32),
            np.asarray(self._tail_value[:take], dtype=np.float64),
            np.asarray(self._tail_time[:take], dtype=self.time_dtype),
        )
        self._chunks.append(chunk)
        self._sealed_rows += take
        del self._tail_rater[:take]
        del self._tail_target[:take]
        del self._tail_facet[:take]
        del self._tail_value[:take]
        del self._tail_time[:take]

    # -- reading -------------------------------------------------------
    def snapshot(self) -> ColumnSet:
        """Contiguous column arrays covering every row (cached per
        version; chunk boundaries are invisible in the result)."""
        version = self.version
        cached = self._snapshot
        if cached is not None and cached[0] == version:
            return cached[1]
        chunks = self._chunks
        tail_n = len(self._tail_value)
        if not chunks and not tail_n:
            columns = ColumnSet(
                _EMPTY_I4,
                _EMPTY_I4,
                _EMPTY_I4,
                _EMPTY_F8,
                _EMPTY_I8 if self._time_is_int else _EMPTY_F8,
            )
        else:
            parts: List[Tuple[np.ndarray, ...]] = [
                (c.rater, c.target, c.facet, c.value, c.time)
                for c in chunks
            ]
            if tail_n:
                parts.append(
                    (
                        np.asarray(self._tail_rater, dtype=np.int32),
                        np.asarray(self._tail_target, dtype=np.int32),
                        np.asarray(self._tail_facet, dtype=np.int32),
                        np.asarray(self._tail_value, dtype=np.float64),
                        np.asarray(self._tail_time, dtype=self.time_dtype),
                    )
                )
            if len(parts) == 1:
                columns = ColumnSet(*parts[0])
            else:
                columns = ColumnSet(
                    *(
                        np.concatenate([p[i] for p in parts])
                        for i in range(5)
                    )
                )
        self._snapshot = (version, columns)
        return columns

    def iter_rows(
        self, start: int = 0
    ) -> Iterator[Tuple[int, int, int, float, float]]:
        """Yield ``(rater, target, facet, value, time)`` per row from
        logical row *start*, without materializing a snapshot — the
        scalar reference replays consume this."""
        base = 0
        for chunk in self._chunks:
            n = len(chunk)
            if base + n > start:
                lo = max(0, start - base)
                yield from zip(
                    chunk.rater[lo:].tolist(),
                    chunk.target[lo:].tolist(),
                    chunk.facet[lo:].tolist(),
                    chunk.value[lo:].tolist(),
                    chunk.time[lo:].tolist(),
                )
            base += n
        lo = max(0, start - base)
        if lo < len(self._tail_value):
            yield from zip(
                self._tail_rater[lo:],
                self._tail_target[lo:],
                self._tail_facet[lo:],
                self._tail_value[lo:],
                self._tail_time[lo:],
            )

    def _index(
        self, name: str, build: Callable[[ColumnSet], GroupIndex]
    ) -> GroupIndex:
        version = self.version
        cached = self._indexes.get(name)
        if cached is not None and cached[0] == version:
            return cached[1]
        index = build(self.snapshot())
        self._indexes[name] = (version, index)
        return index

    def by_target(self) -> GroupIndex:
        """Rows grouped by target code, append order within groups."""
        return self._index("target", lambda c: GroupIndex(c.target))

    def by_rater(self) -> GroupIndex:
        """Rows grouped by rater code, append order within groups."""
        return self._index("rater", lambda c: GroupIndex(c.rater))

    def by_pair(self) -> GroupIndex:
        """Rows grouped by (rater, target), append order within groups."""
        return self._index(
            "pair", lambda c: GroupIndex(c.pair_keys())
        )

    def by_target_time(self) -> GroupIndex:
        """Rows grouped by target, time-ordered (ties keep append
        order) within groups — the windowed-history view."""
        if self._times_sorted:
            return self.by_target()
        return self._index(
            "target_time",
            lambda c: GroupIndex(c.target, secondary=c.time),
        )

    def by_target_facet(self) -> GroupIndex:
        """Rows grouped by (target, facet), append order within groups."""
        return self._index(
            "target_facet", lambda c: GroupIndex(c.target_facet_keys())
        )

    # -- canonical encoding / merge ------------------------------------
    def canonical_bytes(self) -> bytes:
        """Deterministic byte encoding of the store's logical content.

        Covers the interner tables (insertion order) and the five
        columns in logical row order; chunk boundaries and tail state
        are invisible, so equal event streams encode equal regardless
        of ``chunk_size`` — the merge/snapshot discipline the obs
        registry established, applied to event data.

        The header tags the time dtype, so a float64 store and an
        int64 tick store can never encode equal (and existing float64
        encodings are byte-unchanged).
        """
        columns = self.snapshot()
        return b"".join(
            (
                self._HEADERS[self.time_dtype],
                self.entities.canonical_bytes(),
                self.facets.canonical_bytes(),
                len(columns.value).to_bytes(8, "little"),
                np.ascontiguousarray(columns.rater).tobytes(),
                np.ascontiguousarray(columns.target).tobytes(),
                np.ascontiguousarray(columns.facet).tobytes(),
                np.ascontiguousarray(columns.value).tobytes(),
                np.ascontiguousarray(columns.time).tobytes(),
            )
        )

    def merge_from(self, other: "EventStore") -> None:
        """Append *other*'s rows (in their logical order), translating
        its codes through this store's interners.

        Both stores must share a time dtype — merging float64 times
        into an int64 tick column (or vice versa) would silently
        reintroduce the rounding drift tick stores exist to rule out.
        """
        if other.time_dtype != self.time_dtype:
            raise ValueError(
                f"cannot merge a {other.time_dtype} time column into a "
                f"{self.time_dtype} store; convert with "
                "repro.common.simtime first"
            )
        columns = other.snapshot()
        if not columns.n:
            return
        entity_map = self.entities.intern_many(other.entities.values())
        facet_values = other.facets.values()
        facet_map = (
            self.facets.intern_many(facet_values)
            if facet_values
            else _EMPTY_I4
        )
        raters = entity_map[columns.rater]
        targets = entity_map[columns.target]
        overall = columns.facet == OVERALL_FACET
        facets = np.where(
            overall,
            np.int32(OVERALL_FACET),
            facet_map[np.where(overall, 0, columns.facet)]
            if len(facet_map)
            else np.int32(OVERALL_FACET),
        ).astype(np.int32)
        self._tail_rater.extend(raters.tolist())
        self._tail_target.extend(targets.tolist())
        self._tail_facet.extend(facets.tolist())
        self._tail_value.extend(columns.value.tolist())
        self._tail_time.extend(columns.time.tolist())
        times = columns.time
        if self._times_sorted and len(times):
            last = self._last_time
            if (last is not None and times[0] < last) or (
                len(times) > 1 and bool(np.any(np.diff(times) < 0))
            ):
                self._times_sorted = False
        self._last_time = self._py_time(times[-1])
        while len(self._tail_value) >= self.chunk_size:
            self._seal_tail(self.chunk_size)
