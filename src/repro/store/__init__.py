"""repro.store — the append-only columnar feedback event store.

The struct-of-arrays substrate behind the vectorized scoring kernels:
:class:`EventStore` holds feedback as interned-int32/float64 numpy
chunks, :class:`Interner` provides the stable string<->code tables, and
:mod:`repro.store.kernels` the segment reductions kernels share.  See
DESIGN.md §12 for the layout and the chunk/merge invariants.
"""

from repro.store.interner import MISSING_CODE, Interner
from repro.store.kernels import group_counts, group_sums, latest_rows
from repro.store.store import (
    OVERALL_FACET,
    ColumnSet,
    EventStore,
    GroupIndex,
)

__all__ = [
    "ColumnSet",
    "EventStore",
    "GroupIndex",
    "Interner",
    "MISSING_CODE",
    "OVERALL_FACET",
    "group_counts",
    "group_sums",
    "latest_rows",
]
