"""Stable string interning for columnar ids.

Entity and facet ids are strings everywhere above the store, but a
columnar kernel wants dense ``int32`` codes it can feed to
``np.bincount`` / ``searchsorted``.  :class:`Interner` maps strings to
codes in **first-appearance order** — the same stream of ids always
produces the same codes, no matter how the stream was chunked into
``record`` / ``record_many`` calls.  That stability is what makes the
store's canonical byte encoding (and therefore snapshot/merge
byte-identity) possible; the property suite pins it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["Interner", "MISSING_CODE"]

#: Code returned for ids the interner has never seen (query-side only;
#: appends always intern).
MISSING_CODE = -1


class Interner:
    """Insertion-ordered ``str -> int32`` code table."""

    __slots__ = ("_index", "_values")

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._values: List[str] = []

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: str) -> bool:
        return value in self._index

    def intern(self, value: str) -> int:
        """Code for *value*, assigning the next code on first sight."""
        code = self._index.get(value)
        if code is None:
            code = len(self._values)
            self._index[value] = code
            self._values.append(value)
        return code

    def intern_many(self, values: Iterable[str]) -> np.ndarray:
        """Codes for *values* (interning new ones), as an int32 array."""
        intern = self.intern
        return np.fromiter(
            (intern(v) for v in values), dtype=np.int32, count=-1
        )

    def code(self, value: str, default: int = MISSING_CODE) -> int:
        """Code for *value* without interning; *default* if unseen."""
        return self._index.get(value, default)

    def codes(self, values: Sequence[str]) -> np.ndarray:
        """Query-side bulk lookup; unseen ids map to :data:`MISSING_CODE`."""
        get = self._index.get
        return np.fromiter(
            (get(v, MISSING_CODE) for v in values),
            dtype=np.int32,
            count=len(values),
        )

    def value(self, code: int) -> str:
        """The string interned as *code*."""
        return self._values[code]

    def values(self) -> Tuple[str, ...]:
        """All interned strings in code order."""
        return tuple(self._values)

    def canonical_bytes(self) -> bytes:
        """Deterministic encoding of the table: count + NUL-joined ids.

        Two interners that saw the same ids in the same order encode
        identically; ids may not contain NUL (ids here are entity/facet
        names, which never do).
        """
        joined = "\x00".join(self._values)
        return (
            len(self._values).to_bytes(8, "little")
            + joined.encode("utf-8")
        )
