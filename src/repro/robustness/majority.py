"""Sen & Sajja: robustness of reputation-based trust, Boolean case.

"Robustness of reputation-based trust: Boolean case" (AAMAS 2002):
an agent selects a service processor by polling *N* witnesses for a
Boolean good/bad opinion and believing the majority.  With liar
fraction *p* below one half, the probability the majority is correct
grows with *N*; the paper derives the minimum number of witnesses that
guarantees a target confidence.  Both the probability and the minimum-N
computation are reproduced (exact binomial tail, no approximation).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.records import Feedback


def _binomial_pmf(n: int, k: int, p: float) -> float:
    return math.comb(n, k) * (p ** k) * ((1.0 - p) ** (n - k))


def majority_correct_probability(
    witnesses: int, liar_fraction: float
) -> float:
    """P(majority of *witnesses* opinions is truthful).

    Witnesses lie independently with probability *liar_fraction*; ties
    (even splits) count as failure — the conservative reading.
    """
    if witnesses < 1:
        raise ConfigurationError("witnesses must be >= 1")
    if not 0.0 <= liar_fraction <= 1.0:
        raise ConfigurationError("liar_fraction must be in [0, 1]")
    needed = witnesses // 2 + 1
    tail = sum(
        _binomial_pmf(witnesses, k, 1.0 - liar_fraction)
        for k in range(needed, witnesses + 1)
    )
    # The pmf terms are each correctly rounded but their sum can land a
    # few ulps above 1; clamp so the result is a probability.
    return min(1.0, tail)


def required_witnesses(
    liar_fraction: float,
    confidence: float = 0.95,
    max_witnesses: int = 2001,
) -> Optional[int]:
    """Minimum witnesses for majority correctness >= *confidence*.

    Returns None when unreachable (liar fraction >= 0.5 — the honest
    majority assumption is violated and no N suffices).
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    if liar_fraction >= 0.5:
        return None
    for n in range(1, max_witnesses + 1, 2):  # odd N avoids ties
        if majority_correct_probability(n, liar_fraction) >= confidence:
            return n
    return None


class MajorityOpinion:
    """Boolean majority aggregation over witness feedback.

    Args:
        positive_threshold: rating above this is a "good" opinion.
        max_witnesses: cap on opinions polled per decision (Sen &
            Sajja's query budget).
    """

    def __init__(
        self,
        positive_threshold: float = 0.5,
        max_witnesses: Optional[int] = None,
    ) -> None:
        if max_witnesses is not None and max_witnesses < 1:
            raise ConfigurationError("max_witnesses must be >= 1")
        self.positive_threshold = positive_threshold
        self.max_witnesses = max_witnesses

    def opinions(self, feedbacks: Sequence[Feedback]) -> List[bool]:
        """One Boolean opinion per distinct witness (their latest)."""
        latest: dict = {}
        for fb in sorted(feedbacks, key=lambda f: f.time):
            latest[fb.rater] = fb.rating > self.positive_threshold
        opinions = [latest[rater] for rater in sorted(latest)]
        if self.max_witnesses is not None:
            opinions = opinions[: self.max_witnesses]
        return opinions

    def verdict(self, feedbacks: Sequence[Feedback]) -> Optional[bool]:
        """Majority verdict; None with no opinions or a tie."""
        opinions = self.opinions(feedbacks)
        if not opinions:
            return None
        good = sum(opinions)
        bad = len(opinions) - good
        if good == bad:
            return None
        return good > bad

    def score(self, feedbacks: Sequence[Feedback]) -> float:
        """Score on [0, 1]: the majority direction, 0.5 when undecided."""
        verdict = self.verdict(feedbacks)
        if verdict is None:
            return 0.5
        return 1.0 if verdict else 0.0
