"""Attack strategies: dishonest rating behaviours.

Each factory returns a
:class:`~repro.services.consumer.RatingStrategy` — a drop-in for the
honest strategy on any :class:`~repro.services.consumer.Consumer` — so
the same simulation code runs honest and adversarial populations.

Covered attacks:

* **badmouthing** — report victims' quality as terrible,
* **ballot stuffing** — report allies' quality as perfect,
* **collusion rings** — stuff allies *and* badmouth everyone else,
* **complementary lying** — always report the opposite of experience,
* **random lying** — unreliable rather than strategic raters.

Whitewashing and Sybil floods are identity-level attacks; helpers here
mint the extra identities, and experiments re-join them to the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng
from repro.common.records import Interaction
from repro.services.consumer import Consumer, RatingStrategy


def _all_low(facet_scores: Dict[str, float], level: float) -> Dict[str, float]:
    if not facet_scores:
        return {}
    return {facet: level for facet in facet_scores}


def _all_high(facet_scores: Dict[str, float], level: float) -> Dict[str, float]:
    if not facet_scores:
        return {}
    return {facet: level for facet in facet_scores}


def badmouth_strategy(
    victims: Optional[Iterable[EntityId]] = None,
    low: float = 0.05,
) -> RatingStrategy:
    """Report *victims* (every target when None) as terrible."""
    victim_set: Optional[Set[EntityId]] = (
        set(victims) if victims is not None else None
    )

    def strategy(
        consumer: Consumer,
        interaction: Interaction,
        facet_scores: Dict[str, float],
    ) -> Dict[str, float]:
        if victim_set is None or interaction.service in victim_set:
            return _all_low(facet_scores, low)
        return facet_scores

    return strategy


def ballot_stuffing_strategy(
    allies: Iterable[EntityId],
    high: float = 0.95,
) -> RatingStrategy:
    """Report *allies* as excellent regardless of experience."""
    ally_set = set(allies)
    if not ally_set:
        raise ConfigurationError("ballot stuffing needs at least one ally")

    def strategy(
        consumer: Consumer,
        interaction: Interaction,
        facet_scores: Dict[str, float],
    ) -> Dict[str, float]:
        if interaction.service in ally_set:
            # Even failed invocations of allies are praised.
            if not facet_scores:
                return {"overall": high}
            return _all_high(facet_scores, high)
        return facet_scores

    return strategy


def collusion_strategy(
    allies: Iterable[EntityId],
    high: float = 0.95,
    low: float = 0.05,
) -> RatingStrategy:
    """The full ring: stuff allies, badmouth every competitor."""
    ally_set = set(allies)
    if not ally_set:
        raise ConfigurationError("collusion needs at least one ally")

    def strategy(
        consumer: Consumer,
        interaction: Interaction,
        facet_scores: Dict[str, float],
    ) -> Dict[str, float]:
        if interaction.service in ally_set:
            if not facet_scores:
                return {"overall": high}
            return _all_high(facet_scores, high)
        return _all_low(facet_scores, low)

    return strategy


def complementary_liar_strategy() -> RatingStrategy:
    """Always report the complement of the honest experience."""

    def strategy(
        consumer: Consumer,
        interaction: Interaction,
        facet_scores: Dict[str, float],
    ) -> Dict[str, float]:
        return {facet: 1.0 - s for facet, s in facet_scores.items()}

    return strategy


def random_liar_strategy(
    lie_probability: float = 0.5, rng: RngLike = None
) -> RatingStrategy:
    """Replace each report with uniform noise with some probability."""
    if not 0.0 <= lie_probability <= 1.0:
        raise ConfigurationError("lie_probability must be in [0, 1]")
    gen = make_rng(rng)

    def strategy(
        consumer: Consumer,
        interaction: Interaction,
        facet_scores: Dict[str, float],
    ) -> Dict[str, float]:
        if gen.random() >= lie_probability:
            return facet_scores
        return {facet: float(gen.random()) for facet in facet_scores}

    return strategy


@dataclass
class AttackPlan:
    """A population-level attack configuration.

    Attributes:
        liar_fraction: share of consumers given the dishonest strategy.
        strategy_factory: builds one strategy per liar (factories may
            close over shared state, e.g. a collusion ring's ally list).
        sybil_count: extra fake rater identities the attacker controls
            (each files the same dishonest reports).
        whitewash: liars re-join under fresh identities when caught
            (experiments interpret this flag).
    """

    liar_fraction: float = 0.0
    strategy_factory: Optional[object] = None
    sybil_count: int = 0
    whitewash: bool = False
    sybil_ids: List[EntityId] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.liar_fraction <= 1.0:
            raise ConfigurationError("liar_fraction must be in [0, 1]")
        if self.sybil_count < 0:
            raise ConfigurationError("sybil_count must be >= 0")

    def liars_among(self, consumers: "list[Consumer]") -> List[Consumer]:
        """The deterministic liar subset (first k consumers by id)."""
        k = int(round(self.liar_fraction * len(consumers)))
        ordered = sorted(consumers, key=lambda c: c.consumer_id)
        return ordered[:k]

    def apply(self, consumers: "list[Consumer]") -> List[Consumer]:
        """Install the dishonest strategy on the liar subset.

        Returns the consumers chosen as liars.
        """
        if self.strategy_factory is None or self.liar_fraction <= 0:
            return []
        liars = self.liars_among(consumers)
        for liar in liars:
            liar.rating_strategy = self.strategy_factory()  # type: ignore[operator]
        return liars

    def mint_sybils(self, prefix: str = "sybil") -> List[EntityId]:
        """Create the attacker's fake rater identities."""
        self.sybil_ids = [f"{prefix}-{i:03d}" for i in range(self.sybil_count)]
        return list(self.sybil_ids)
