"""Dellarocas' cluster filtering of unfair ratings.

"Immunizing online reputation reporting systems against unfair ratings
and discriminatory behavior" (EC 2000): before aggregating ratings for
a target, divide them into two clusters by value; when the clusters are
well separated and one side is a minority, that side is presumed unfair
(ballot-stuffers rate conspicuously high, badmouthers conspicuously
low) and dropped.

:func:`two_means_split` is the 1-D 2-means used for the division;
:class:`ClusterFilter` applies the policy to feedback lists and can wrap
any model's input stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.mathutils import safe_mean
from repro.common.records import Feedback


def two_means_split(
    values: Sequence[float], max_iter: int = 50
) -> Tuple[List[int], List[int], float, float]:
    """1-D 2-means clustering.

    Returns ``(low_indices, high_indices, low_centre, high_centre)``.
    Degenerate inputs (fewer than 2 points, or all equal) put everything
    in the low cluster with equal centres.
    """
    n = len(values)
    if n < 2 or max(values) - min(values) <= 1e-12:
        centre = safe_mean(values)
        return list(range(n)), [], centre, centre
    low_c, high_c = min(values), max(values)
    assignment = [0] * n
    for _ in range(max_iter):
        changed = False
        for i, v in enumerate(values):
            cluster = 0 if abs(v - low_c) <= abs(v - high_c) else 1
            if cluster != assignment[i]:
                assignment[i] = cluster
                changed = True
        lows = [values[i] for i in range(n) if assignment[i] == 0]
        highs = [values[i] for i in range(n) if assignment[i] == 1]
        if not lows or not highs:
            break
        low_c = safe_mean(lows)
        high_c = safe_mean(highs)
        if not changed:
            break
    low_indices = [i for i in range(n) if assignment[i] == 0]
    high_indices = [i for i in range(n) if assignment[i] == 1]
    return low_indices, high_indices, low_c, high_c


class FilterMode(enum.Enum):
    """Which unfair direction to filter."""

    HIGH = "high"  # ballot stuffing
    LOW = "low"  # badmouthing
    BOTH = "both"


@dataclass
class FilterReport:
    """What one filtering pass did."""

    kept: List[Feedback]
    dropped: List[Feedback]

    @property
    def drop_fraction(self) -> float:
        total = len(self.kept) + len(self.dropped)
        return len(self.dropped) / total if total else 0.0


class ClusterFilter:
    """Dellarocas-style divisive filtering.

    Args:
        mode: filter suspiciously high, low, or both directions.
        separation_threshold: minimum centre distance for a cluster to
            be deemed an unfair bloc (small gaps are honest variance).
        max_minority: a cluster is only dropped when it holds at most
            this fraction of the ratings — the majority is presumed
            honest (the same assumption Sen & Sajja make explicit).
        min_ratings: below this many ratings, nothing is filtered.
    """

    def __init__(
        self,
        mode: FilterMode = FilterMode.BOTH,
        separation_threshold: float = 0.3,
        max_minority: float = 0.5,
        min_ratings: int = 4,
    ) -> None:
        if not 0.0 < separation_threshold <= 1.0:
            raise ConfigurationError(
                "separation_threshold must be in (0, 1]"
            )
        if not 0.0 < max_minority <= 0.5:
            raise ConfigurationError("max_minority must be in (0, 0.5]")
        if min_ratings < 2:
            raise ConfigurationError("min_ratings must be >= 2")
        self.mode = mode
        self.separation_threshold = separation_threshold
        self.max_minority = max_minority
        self.min_ratings = min_ratings

    def filter(self, feedbacks: Sequence[Feedback]) -> FilterReport:
        """Split ratings and drop the presumed-unfair cluster."""
        if len(feedbacks) < self.min_ratings:
            return FilterReport(kept=list(feedbacks), dropped=[])
        values = [fb.rating for fb in feedbacks]
        low_idx, high_idx, low_c, high_c = two_means_split(values)
        if not high_idx or high_c - low_c < self.separation_threshold:
            return FilterReport(kept=list(feedbacks), dropped=[])
        n = len(feedbacks)
        drop: List[int] = []
        if (
            self.mode in (FilterMode.HIGH, FilterMode.BOTH)
            and len(high_idx) <= self.max_minority * n
        ):
            drop = high_idx
        elif (
            self.mode in (FilterMode.LOW, FilterMode.BOTH)
            and len(low_idx) <= self.max_minority * n
        ):
            drop = low_idx
        if not drop:
            return FilterReport(kept=list(feedbacks), dropped=[])
        drop_set = set(drop)
        kept = [fb for i, fb in enumerate(feedbacks) if i not in drop_set]
        dropped = [fb for i, fb in enumerate(feedbacks) if i in drop_set]
        return FilterReport(kept=kept, dropped=dropped)

    def filtered_mean(self, feedbacks: Sequence[Feedback]) -> float:
        """The defended aggregate: mean of surviving ratings."""
        report = self.filter(feedbacks)
        if not report.kept:
            return 0.5
        return safe_mean(fb.rating for fb in report.kept)
