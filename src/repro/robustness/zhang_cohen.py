"""Zhang & Cohen: trusting advice from other buyers (ICEC 2006).

A *personalized* defense against unfair ratings: a buyer judges each
advisor's credibility by comparing the advisor's ratings of a seller
with the buyer's **own** ratings of the same seller in matching time
windows — advice that historically agreed with first-hand experience
earns trust (a private, Beta-evidence estimate).  When private evidence
is thin, a *public* component (the advisor's agreement with the all-
buyer consensus) fills in, weighted by how much private evidence exists.
The defended reputation of a seller is then the credibility-weighted
mean of advisor ratings blended with the buyer's own experience.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.records import Feedback


class ZhangCohenDefense:
    """Personalized + public advisor credibility.

    Args:
        window: time-window length for matching advisor ratings against
            own experience.
        agreement_tolerance: max |advisor − own| counted as agreement.
        min_private: private evidence pairs at which private credibility
            fully dominates the public component.
    """

    def __init__(
        self,
        window: float = 10.0,
        agreement_tolerance: float = 0.2,
        min_private: int = 5,
    ) -> None:
        if window <= 0:
            raise ConfigurationError("window must be positive")
        if not 0.0 < agreement_tolerance <= 1.0:
            raise ConfigurationError("agreement_tolerance must be in (0, 1]")
        if min_private < 1:
            raise ConfigurationError("min_private must be >= 1")
        self.window = window
        self.agreement_tolerance = agreement_tolerance
        self.min_private = min_private
        #: buyer -> seller -> [(time, rating)] first-hand experiences
        self._own: Dict[EntityId, Dict[EntityId, List[Tuple[float, float]]]] = (
            defaultdict(lambda: defaultdict(list))
        )
        #: advisor -> seller -> [(time, rating)] filed ratings
        self._advice: Dict[
            EntityId, Dict[EntityId, List[Tuple[float, float]]]
        ] = defaultdict(lambda: defaultdict(list))

    # -- evidence ----------------------------------------------------------
    def record_own(self, feedback: Feedback) -> None:
        """A buyer's first-hand experience with a seller."""
        self._own[feedback.rater][feedback.target].append(
            (feedback.time, feedback.rating)
        )

    def record_advice(self, feedback: Feedback) -> None:
        """An advisor's public rating of a seller."""
        self._advice[feedback.rater][feedback.target].append(
            (feedback.time, feedback.rating)
        )

    def record(self, feedback: Feedback) -> None:
        """Convenience: every report is both advice and (for its rater)
        own experience."""
        self.record_own(feedback)
        self.record_advice(feedback)

    # -- credibility ----------------------------------------------------------
    def _window_pairs(
        self, buyer: EntityId, advisor: EntityId
    ) -> List[Tuple[float, float]]:
        """(advisor_rating, own_rating) pairs in matching windows."""
        pairs: List[Tuple[float, float]] = []
        for seller, advice in self._advice.get(advisor, {}).items():
            own = self._own.get(buyer, {}).get(seller)
            if not own:
                continue
            for advice_time, advice_rating in advice:
                window_own = [
                    r
                    for t, r in own
                    if abs(t - advice_time) <= self.window
                ]
                if window_own:
                    pairs.append((advice_rating, safe_mean(window_own)))
        return pairs

    def private_credibility(
        self, buyer: EntityId, advisor: EntityId
    ) -> Tuple[float, int]:
        """(Beta-expected credibility, #evidence pairs) from own data."""
        pairs = self._window_pairs(buyer, advisor)
        agree = sum(
            1
            for advice, own in pairs
            if abs(advice - own) <= self.agreement_tolerance
        )
        disagree = len(pairs) - agree
        credibility = (agree + 1.0) / (agree + disagree + 2.0)
        return credibility, len(pairs)

    def public_credibility(self, advisor: EntityId) -> float:
        """Agreement of *advisor* with the all-advisor consensus."""
        agree = 0
        disagree = 0
        for seller, advice in self._advice.get(advisor, {}).items():
            others = [
                r
                for other, filed in self._advice.items()
                if other != advisor
                for t, r in filed.get(seller, ())
            ]
            if not others:
                continue
            consensus = safe_mean(others)
            for _, rating in advice:
                if abs(rating - consensus) <= self.agreement_tolerance:
                    agree += 1
                else:
                    disagree += 1
        return (agree + 1.0) / (agree + disagree + 2.0)

    def credibility(self, buyer: EntityId, advisor: EntityId) -> float:
        """The blended (private-weighted) advisor credibility."""
        private, evidence = self.private_credibility(buyer, advisor)
        public = self.public_credibility(advisor)
        w = min(1.0, evidence / self.min_private)
        return w * private + (1.0 - w) * public

    # -- defended reputation ------------------------------------------------------
    def robust_score(
        self, buyer: EntityId, seller: EntityId
    ) -> float:
        """Credibility-weighted seller reputation for *buyer*."""
        own = self._own.get(buyer, {}).get(seller, [])
        own_mean = safe_mean((r for _, r in own)) if own else None
        total = 0.0
        weight_sum = 0.0
        for advisor, filed in self._advice.items():
            if advisor == buyer or seller not in filed:
                continue
            cred = self.credibility(buyer, advisor)
            advisor_mean = safe_mean(r for _, r in filed[seller])
            # Low-credibility advisors' influence is attenuated toward
            # zero rather than inverted.
            weight = max(0.0, 2.0 * cred - 1.0)
            total += weight * advisor_mean
            weight_sum += weight
        advice_part = total / weight_sum if weight_sum > 0 else None
        if own_mean is None and advice_part is None:
            return 0.5
        if own_mean is None:
            assert advice_part is not None
            return advice_part
        if advice_part is None:
            return own_mean
        own_weight = min(1.0, len(own) / self.min_private)
        return own_weight * own_mean + (1.0 - own_weight) * advice_part
