"""Dishonest feedback: attacks and defenses (paper Section 3.1, Q3).

"It is inevitable that some users may provide false feedback to
badmouth or raise the reputation of a service on purpose."  This
package provides the attack strategies (pluggable consumer rating
strategies) and the three defense families the paper cites: Dellarocas'
cluster filtering, Sen & Sajja's majority opinion, and Zhang & Cohen's
personalized advisor-credibility approach.
"""

from repro.robustness.attacks import (
    AttackPlan,
    badmouth_strategy,
    ballot_stuffing_strategy,
    collusion_strategy,
    complementary_liar_strategy,
    random_liar_strategy,
)
from repro.robustness.cluster_filtering import (
    ClusterFilter,
    FilterMode,
    FilterReport,
    two_means_split,
)
from repro.robustness.majority import (
    MajorityOpinion,
    majority_correct_probability,
    required_witnesses,
)
from repro.robustness.discrimination import (
    DiscriminationDetector,
    DiscriminationReport,
)
from repro.robustness.zhang_cohen import ZhangCohenDefense

__all__ = [
    "AttackPlan",
    "ClusterFilter",
    "DiscriminationDetector",
    "DiscriminationReport",
    "FilterMode",
    "FilterReport",
    "MajorityOpinion",
    "ZhangCohenDefense",
    "badmouth_strategy",
    "ballot_stuffing_strategy",
    "collusion_strategy",
    "complementary_liar_strategy",
    "majority_correct_probability",
    "random_liar_strategy",
    "required_witnesses",
    "two_means_split",
]
