"""Detection of discriminatory behaviour (Dellarocas [5], second half).

"Immunizing online reputation reporting systems against unfair ratings
**and discriminatory behavior**": besides raters lying, *providers* can
discriminate — serving most consumers well but a targeted subset badly
(or vice versa, favouring cronies).  A single averaged reputation then
misleads the discriminated group.

Detection follows Dellarocas' clustering idea applied to the *per-buyer
outcome* axis: aggregate each rater's mean experience with the
provider, split the raters into two clusters, and flag the provider
when the clusters are far apart and both substantial — honest variance
produces one blob, discrimination produces two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.records import Feedback
from repro.robustness.cluster_filtering import two_means_split


@dataclass(frozen=True)
class DiscriminationReport:
    """Outcome of screening one provider."""

    target: EntityId
    discriminating: bool
    favoured: Tuple[EntityId, ...]
    disfavoured: Tuple[EntityId, ...]
    favoured_mean: float
    disfavoured_mean: float

    @property
    def gap(self) -> float:
        return self.favoured_mean - self.disfavoured_mean


class DiscriminationDetector:
    """Flags providers whose per-buyer outcomes split into two camps.

    Args:
        separation_threshold: minimum gap between the camp means.
        min_group_fraction: both camps must hold at least this share of
            raters (a lone outlier is rater noise, not discrimination).
        min_raters: don't judge below this many distinct raters.
    """

    def __init__(
        self,
        separation_threshold: float = 0.3,
        min_group_fraction: float = 0.2,
        min_raters: int = 6,
    ) -> None:
        if not 0.0 < separation_threshold <= 1.0:
            raise ConfigurationError(
                "separation_threshold must be in (0, 1]"
            )
        if not 0.0 < min_group_fraction <= 0.5:
            raise ConfigurationError(
                "min_group_fraction must be in (0, 0.5]"
            )
        if min_raters < 2:
            raise ConfigurationError("min_raters must be >= 2")
        self.separation_threshold = separation_threshold
        self.min_group_fraction = min_group_fraction
        self.min_raters = min_raters

    def per_rater_means(
        self, feedbacks: Sequence[Feedback]
    ) -> Dict[EntityId, float]:
        by_rater: Dict[EntityId, List[float]] = {}
        for fb in feedbacks:
            by_rater.setdefault(fb.rater, []).append(fb.rating)
        return {rater: safe_mean(vals) for rater, vals in by_rater.items()}

    def screen(
        self, target: EntityId, feedbacks: Sequence[Feedback]
    ) -> DiscriminationReport:
        """Screen *target* using all feedback about it."""
        means = self.per_rater_means(
            [fb for fb in feedbacks if fb.target == target]
        )
        raters = sorted(means)
        if len(raters) < self.min_raters:
            return DiscriminationReport(
                target=target, discriminating=False,
                favoured=tuple(raters), disfavoured=(),
                favoured_mean=safe_mean(means.values(), 0.5),
                disfavoured_mean=safe_mean(means.values(), 0.5),
            )
        values = [means[r] for r in raters]
        low_idx, high_idx, low_c, high_c = two_means_split(values)
        n = len(raters)
        gap = high_c - low_c
        substantial = (
            len(low_idx) >= self.min_group_fraction * n
            and len(high_idx) >= self.min_group_fraction * n
        )
        discriminating = bool(
            high_idx and gap >= self.separation_threshold and substantial
        )
        favoured = tuple(raters[i] for i in high_idx)
        disfavoured = tuple(raters[i] for i in low_idx)
        if not discriminating:
            overall = safe_mean(values, 0.5)
            return DiscriminationReport(
                target=target, discriminating=False,
                favoured=tuple(raters), disfavoured=(),
                favoured_mean=overall, disfavoured_mean=overall,
            )
        return DiscriminationReport(
            target=target, discriminating=True,
            favoured=favoured, disfavoured=disfavoured,
            favoured_mean=high_c, disfavoured_mean=low_c,
        )

    def personalized_score(
        self,
        perspective: EntityId,
        target: EntityId,
        feedbacks: Sequence[Feedback],
    ) -> float:
        """Reputation of *target* as *perspective* should read it.

        For a discriminating provider, only the camp containing (or
        likely to contain) the asking consumer is informative: a member
        of the disfavoured camp gets the disfavoured mean, not the
        flattering average.  Consumers with no history get the
        *disfavoured* mean — the conservative reading.
        """
        report = self.screen(target, feedbacks)
        if not report.discriminating:
            relevant = [
                fb.rating for fb in feedbacks if fb.target == target
            ]
            return safe_mean(relevant, 0.5)
        if perspective in report.favoured:
            return report.favoured_mean
        return report.disfavoured_mean
