"""reprolint — AST-based determinism & contract linter for the
reputation stack.

The parallel runtime (DESIGN.md §9) and the incremental scoring engine
(§8) rest on invariants no type checker sees: no ambient randomness or
wall-clock reads, no hash-salted iteration feeding a ranking, cache
version counters bumped on every ``record()``, batch kernels covered
by the parity gate, picklable world builders, and no bare float
equality on scores.  This package checks them statically:

    python -m repro.analysis src/repro

Rules R001-R011 are catalogued in DESIGN.md §10, along with the
``# reprolint: disable=R00x`` suppression and baseline workflow.
R009-R011 run on the interprocedural dataflow engine in
:mod:`repro.analysis.flow` (per-function summaries composed over the
project call graph to a fixpoint).
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.cli import main
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    RuleRegistry,
    run_analysis,
)
from repro.analysis.flow import FlowAnalysis, FlowPolicy, SymbolTable
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules import DEFAULT_REGISTRY, default_registry

__all__ = [
    "AnalysisConfig",
    "Baseline",
    "BaselineError",
    "DEFAULT_REGISTRY",
    "Finding",
    "FlowAnalysis",
    "FlowPolicy",
    "ModuleInfo",
    "Project",
    "Rule",
    "RuleRegistry",
    "SymbolTable",
    "default_registry",
    "main",
    "render_json",
    "render_sarif",
    "render_text",
    "run_analysis",
]
