"""Interprocedural dataflow over the shared :class:`Project`.

The per-module rules (R001-R008) see one file at a time, so a helper
that draws from an ambient RNG two calls away from a canonical sink —
or that mutates an epoch-frozen snapshot view it received as a
parameter — sails through untouched.  This module closes that gap with
the classic *intraprocedural summaries composed interprocedurally*
recipe:

* :class:`SymbolTable` — every module-level function and class method
  in the project, indexed by a stable qualified name
  (``relpath::Class.method``), plus import-alias and local-type
  resolution so call sites can be linked to their targets across
  files.
* :class:`FunctionSummary` — one function's externally visible
  dataflow: which taint kinds its return value carries, which
  parameters flow to its return value, which parameters reach a
  canonical sink inside it (transitively), which parameters it
  mutates, and whether it returns a frozen view.
* :class:`FlowAnalysis` — computes all summaries to a fixpoint over
  the call graph (the lattice is finite and monotone: summary sets
  only grow), then replays each function body once more against the
  final summaries to collect *events*: a tainted value meeting a sink
  (:class:`TaintEvent`) or a frozen view being mutated
  (:class:`MutationEvent`).  Rules turn events into findings.

What counts as a source, sink, frozen producer, or mutator is not
hard-coded here: the engine takes a :class:`FlowPolicy` so the
machinery stays reusable (and unit-testable) independent of the
repro-specific vocabulary in ``rules/taint.py``.

The analysis is deliberately conservative and branch-insensitive, in
the same spirit as R002/R007's scope inference: a name counts as
tainted/frozen if *any* binding in the scope makes it one, calls that
cannot be resolved propagate the union of their argument taints, and
subscripts of frozen arrays are treated as fresh copies (numpy basic
slices are views, but boolean/fancy indexing — the dominant idiom in
the kernels — copies; flagging copies would drown the signal).
Suppression comments handle the rare residual false positive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.core import ModuleInfo, Project

__all__ = [
    "RNG",
    "ORDER",
    "CallView",
    "FlowAnalysis",
    "FlowPolicy",
    "FunctionInfo",
    "FunctionSummary",
    "MutationEvent",
    "SymbolTable",
    "TaintEvent",
]

#: taint kind: value derived from an ambient nondeterminism source
#: (RNG singleton state, wall clock, uuid, OS entropy)
RNG = "rng"
#: taint kind: value depends on hash-salted set iteration order
ORDER = "order"

_KINDS = frozenset({RNG, ORDER})
_PARAM = "param:"

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _param_token(index: int) -> str:
    return f"{_PARAM}{index}"


def _token_param(token: str) -> Optional[int]:
    if token.startswith(_PARAM):
        return int(token[len(_PARAM):])
    return None


# ---------------------------------------------------------------------------
# Symbol table
# ---------------------------------------------------------------------------


def _import_maps(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, str]]:
    """(module aliases, from-import aliases) for one module.

    Module aliases map a local name to a dotted module path
    (``import numpy as np`` → ``np: numpy``); from-import aliases map a
    local name to ``module.attr`` (``from repro.store import
    EventStore`` → ``EventStore: repro.store.EventStore``).
    """
    modules: Dict[str, str] = {}
    members: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                modules[local] = item.name if item.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:
                continue  # relative imports stay unresolved
            for item in node.names:
                local = item.asname or item.name
                members[local] = f"{node.module}.{item.name}"
    return modules, members


@dataclass
class FunctionInfo:
    """One project function or method, addressable by qualified name."""

    qname: str
    module: ModuleInfo
    node: _FunctionNode
    class_name: Optional[str] = None
    is_staticmethod: bool = False

    @property
    def param_names(self) -> List[str]:
        args = self.node.args
        return [
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        ]

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.param_names.index(name)
        except ValueError:
            return None


@dataclass
class ClassInfo:
    """One project class: methods, bases, and typed ``self.`` attributes."""

    name: str
    relpath: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> class name, from ``self.x = ClassName(...)``
    attr_types: Dict[str, str] = field(default_factory=dict)


class SymbolTable:
    """Project-wide function/class index with call resolution support."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: qname -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: relpath -> {module-level function name -> FunctionInfo}
        self.module_functions: Dict[str, Dict[str, FunctionInfo]] = {}
        #: bare class name -> ClassInfo (last definition wins on collision)
        self.classes: Dict[str, ClassInfo] = {}
        #: relpath -> (module aliases, from-import aliases)
        self.imports: Dict[str, Tuple[Dict[str, str], Dict[str, str]]] = {}
        #: dotted module path suffix (a/b) -> relpath, for import linking
        self._module_paths: Dict[str, str] = {}
        for module in project.modules:
            self._index_module(module)
        self._link_attr_types()

    # -- construction --------------------------------------------------

    def _index_module(self, module: ModuleInfo) -> None:
        relpath = module.relpath
        self.imports[relpath] = _import_maps(module.tree)
        stem = relpath[:-3] if relpath.endswith(".py") else relpath
        if stem.endswith("/__init__"):
            stem = stem[: -len("/__init__")]
        self._module_paths[stem] = relpath
        table: Dict[str, FunctionInfo] = {}
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qname=f"{relpath}::{node.name}",
                    module=module,
                    node=node,
                )
                table[node.name] = info
                self.functions[info.qname] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node)
        self.module_functions[relpath] = table

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        bases: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        cls = ClassInfo(
            name=node.name,
            relpath=module.relpath,
            node=node,
            bases=bases,
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                static = any(
                    isinstance(d, ast.Name) and d.id == "staticmethod"
                    for d in item.decorator_list
                )
                info = FunctionInfo(
                    qname=f"{module.relpath}::{node.name}.{item.name}",
                    module=module,
                    node=item,
                    class_name=node.name,
                    is_staticmethod=static,
                )
                cls.methods[item.name] = info
                self.functions[info.qname] = info
        self.classes[node.name] = cls

    def _link_attr_types(self) -> None:
        """Second pass: ``self.x = ClassName(...)`` attribute typing
        (needs the full class index to recognise constructor names)."""
        for cls in self.classes.values():
            imports = self.imports.get(cls.relpath, ({}, {}))
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                    ):
                        continue
                    target = node.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    typed = self._constructor_class(node.value, imports)
                    if typed is not None:
                        cls.attr_types.setdefault(target.attr, typed)

    def _constructor_class(
        self,
        node: ast.AST,
        imports: Tuple[Dict[str, str], Dict[str, str]],
    ) -> Optional[str]:
        """Class name when *node* is ``ClassName(...)`` for a known or
        imported class."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in self.classes:
            return name
        # from-imported class that is not part of the scanned tree:
        # keep the bare name so type-driven policies still match.
        member = imports[1].get(name)
        if member is not None and name and name[0].isupper():
            return name
        return None

    # -- resolution ----------------------------------------------------

    def module_relpath_for(self, dotted: str) -> Optional[str]:
        """relpath of the project module a dotted import path names."""
        parts = dotted.split(".")
        # Strip any leading package segments down to a path the
        # package-relative relpath convention can match (``repro.a.b``
        # and plain ``a.b`` both reach ``a/b.py``).
        for start in range(len(parts)):
            stem = "/".join(parts[start:])
            relpath = self._module_paths.get(stem)
            if relpath is not None:
                return relpath
        return None

    def function_in_module(
        self, relpath: str, name: str
    ) -> Optional[FunctionInfo]:
        return self.module_functions.get(relpath, {}).get(name)

    def resolve_method(
        self, class_name: str, method: str
    ) -> Optional[FunctionInfo]:
        """Look *method* up on *class_name*, walking project-local bases."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            info = cls.methods.get(method)
            if info is not None:
                return info
            queue.extend(cls.bases)
        return None

    def imported_member(
        self, relpath: str, local_name: str
    ) -> Optional[str]:
        """``module.attr`` a local name was from-imported as, if any."""
        return self.imports.get(relpath, ({}, {}))[1].get(local_name)


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------


@dataclass
class CallView:
    """A call site, pre-digested for policy decisions."""

    call: ast.Call
    #: bare callee name (``append`` for ``x.append(...)``)
    name: str
    #: alias-resolved dotted path when the callee is a plain name chain
    #: (``time.perf_counter`` for ``import time; time.perf_counter()``)
    dotted: Optional[str]
    #: receiver expression for attribute calls, else None
    receiver: Optional[ast.expr]
    #: inferred class name of the receiver, if any
    receiver_type: Optional[str]
    #: trailing identifier of the receiver chain (``_store`` for
    #: ``self._store.append``), lowercased; empty when no receiver
    receiver_name: str


class FlowPolicy:
    """What the engine should treat as sources, sinks, and frozen state.

    The base policy is inert (no sources, no sinks); subclasses
    override the hooks they care about.  All hooks receive a
    :class:`CallView` so they never re-derive receiver types.
    """

    #: method names that mutate their receiver in place
    mutator_methods: FrozenSet[str] = frozenset()
    #: annotation names whose parameters are frozen on entry
    frozen_annotations: FrozenSet[str] = frozenset()
    #: methods on a frozen receiver that return another frozen view
    frozen_view_methods: FrozenSet[str] = frozenset()

    def source_kinds(self, cv: CallView) -> FrozenSet[str]:
        """Taint kinds produced by calling *cv* (empty = not a source)."""
        return frozenset()

    def sink_label(self, cv: CallView) -> Optional[str]:
        """Canonical-sink label when arguments of *cv* must be clean."""
        return None

    def attr_store_sink(
        self, base_type: Optional[str], attr: str
    ) -> Optional[str]:
        """Sink label when assigning to ``base.attr`` must be clean."""
        return None

    def is_frozen_producer(self, cv: CallView) -> bool:
        """Whether calling *cv* returns an epoch-frozen view."""
        return False

    def call_result_type(self, cv: CallView) -> Optional[str]:
        """Class name of *cv*'s result, for receiver typing (e.g. the
        ambient-recorder accessor)."""
        return None


# ---------------------------------------------------------------------------
# Summaries and events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionSummary:
    """One function's externally visible dataflow."""

    #: taint tokens carried by the return value: kinds (``rng``,
    #: ``order``) plus ``param:i`` markers for parameter pass-through
    returns: FrozenSet[str] = frozenset()
    #: parameter indices whose values reach a canonical sink inside
    sink_params: FrozenSet[int] = frozenset()
    #: parameter indices the function mutates (directly or via callees)
    mutated_params: FrozenSet[int] = frozenset()
    #: whether the return value is a frozen view
    returns_frozen: bool = False

    def returns_kinds(self) -> FrozenSet[str]:
        return self.returns & _KINDS

    def return_params(self) -> FrozenSet[int]:
        return frozenset(
            p
            for p in (_token_param(t) for t in self.returns)
            if p is not None
        )


@dataclass(frozen=True)
class TaintEvent:
    """A tainted value reaching a canonical sink."""

    module: ModuleInfo = field(compare=False)
    lineno: int = 0
    col: int = 0
    sink: str = ""
    kinds: FrozenSet[str] = frozenset()
    #: callee qname when the sink is inside a callee (else empty)
    via: str = ""


@dataclass(frozen=True)
class MutationEvent:
    """A frozen view being mutated."""

    module: ModuleInfo = field(compare=False)
    lineno: int = 0
    col: int = 0
    what: str = ""
    #: callee qname when the mutation happens inside a callee
    via: str = ""


# ---------------------------------------------------------------------------
# The per-scope abstract interpreter
# ---------------------------------------------------------------------------


class _ScopeFlow:
    """Branch-insensitive taint/frozen propagation for one scope."""

    def __init__(
        self,
        analysis: "FlowAnalysis",
        module: ModuleInfo,
        body: Sequence[ast.stmt],
        fn: Optional[FunctionInfo],
        collect_events: bool,
    ) -> None:
        self.analysis = analysis
        self.policy = analysis.policy
        self.table = analysis.table
        self.module = module
        self.body = [
            s
            for s in body
            if not isinstance(
                s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        self.fn = fn
        self.collect_events = collect_events
        self.class_name = fn.class_name if fn is not None else None
        #: name -> taint tokens
        self.taint: Dict[str, Set[str]] = {}
        #: names bound to frozen views
        self.frozen: Set[str] = set()
        #: name -> parameter indices it aliases
        self.aliases: Dict[str, Set[int]] = {}
        #: name -> inferred class name
        self.types: Dict[str, str] = {}
        # summary accumulators
        self.ret_tokens: Set[str] = set()
        self.ret_frozen = False
        self.sink_params: Set[int] = set()
        self.mutated_params: Set[int] = set()
        # events (deduplicated by site+label)
        self._events: Set[Tuple[str, int, int, str, FrozenSet[str], str]] = (
            set()
        )
        self.taint_events: List[TaintEvent] = []
        self.mutation_events: List[MutationEvent] = []
        self._seed_params()
        self._set_names = self._infer_sets()
        self._run()

    # -- setup ---------------------------------------------------------

    def _seed_params(self) -> None:
        if self.fn is None:
            return
        bound_method = (
            self.fn.class_name is not None and not self.fn.is_staticmethod
        )
        for index, arg in enumerate(self._all_args(self.fn.node.args)):
            self.taint[arg.arg] = {_param_token(index)}
            self.aliases[arg.arg] = {index}
            ann = _annotation_name(arg.annotation)
            if ann is not None:
                if ann in self.policy.frozen_annotations:
                    self.frozen.add(arg.arg)
                self.types[arg.arg] = ann
            if index == 0 and bound_method and self.fn.class_name:
                self.types.setdefault(arg.arg, self.fn.class_name)

    @staticmethod
    def _all_args(args: ast.arguments) -> List[ast.arg]:
        return (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )

    def _infer_sets(self) -> Set[str]:
        """Names statically known to be sets (for ORDER taint)."""
        from repro.analysis.rules.determinism import _ScopeInference

        params = self.fn.node.args if self.fn is not None else None
        return _ScopeInference(list(self.body), {}, params).set_names

    # -- driver --------------------------------------------------------

    def _run(self) -> None:
        # Local fixpoint: later bindings can feed earlier uses through
        # loops; the lattice only grows, so iterate until stable.
        for _ in range(10):
            before = self._state_size()
            for stmt in self.body:
                self._stmt(stmt)
            if self._state_size() == before:
                break

    def _state_size(self) -> int:
        return (
            sum(len(v) for v in self.taint.values())
            + len(self.frozen)
            + sum(len(v) for v in self.aliases.values())
            + len(self.ret_tokens)
            + len(self.sink_params)
            + len(self.mutated_params)
            + len(self._events)
            + int(self.ret_frozen)
        )

    # -- statements ----------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are their own scope
            if isinstance(node, ast.Assign):
                self._assign(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign):
                self._ann_assign(node)
            elif isinstance(node, ast.AugAssign):
                self._aug_assign(node)
            elif isinstance(node, ast.Return) and node.value is not None:
                self.ret_tokens |= self._taint_of(node.value)
                if self._is_frozen(node.value):
                    self.ret_frozen = True
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._loop_bind(node.target, node.iter)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    self._assign([node.optional_vars], node.context_expr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._check_mutation_target(target, "del")
            elif isinstance(node, ast.Call):
                # Evaluate for sink/mutation side effects even when the
                # result is discarded.
                self._taint_of(node)

    def _assign(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        tokens = self._taint_of(value)
        frozen = self._is_frozen(value)
        aliases = self._aliases_of(value)
        typed = self._type_of(value)
        for target in targets:
            self._bind(target, value, tokens, frozen, aliases, typed)

    def _bind(
        self,
        target: ast.expr,
        value: ast.expr,
        tokens: Set[str],
        frozen: bool,
        aliases: Set[int],
        typed: Optional[str],
    ) -> None:
        if isinstance(target, ast.Name):
            if tokens:
                self.taint.setdefault(target.id, set()).update(tokens)
            if frozen:
                self.frozen.add(target.id)
            if aliases:
                self.aliases.setdefault(target.id, set()).update(aliases)
            if typed is not None:
                self.types.setdefault(target.id, typed)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                for t, v in zip(target.elts, value.elts):
                    self._bind(
                        t,
                        v,
                        self._taint_of(v),
                        self._is_frozen(v),
                        self._aliases_of(v),
                        self._type_of(v),
                    )
            else:
                for t in target.elts:
                    self._bind(t, value, tokens, False, aliases, None)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._check_mutation_target(target, "assignment")
            self._check_attr_store_sink(target, tokens)

    def _ann_assign(self, node: ast.AnnAssign) -> None:
        ann = _annotation_name(node.annotation)
        if isinstance(node.target, ast.Name) and ann is not None:
            if ann in self.policy.frozen_annotations:
                self.frozen.add(node.target.id)
            self.types.setdefault(node.target.id, ann)
        if node.value is not None:
            self._assign([node.target], node.value)

    def _aug_assign(self, node: ast.AugAssign) -> None:
        target = node.target
        tokens = self._taint_of(node.value)
        if isinstance(target, ast.Name):
            if target.id in self.frozen:
                self._mutation(node, f"augmented assignment to {target.id!r}")
            for index in self.aliases.get(target.id, ()):
                self.mutated_params.add(index)
            if tokens:
                self.taint.setdefault(target.id, set()).update(tokens)
        else:
            self._check_mutation_target(target, "augmented assignment")
            self._check_attr_store_sink(target, tokens)

    def _loop_bind(self, target: ast.expr, source: ast.expr) -> None:
        tokens = set(self._taint_of(source))
        if self._is_set_expr(source):
            tokens.add(ORDER)
        if tokens:
            for name in _target_names(target):
                self.taint.setdefault(name, set()).update(tokens)

    # -- mutation checks -----------------------------------------------

    def _check_mutation_target(self, target: ast.expr, how: str) -> None:
        base: Optional[ast.expr] = None
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value
        if base is None:
            return
        if self._is_frozen(base):
            self._mutation(target, f"{how} through a frozen view")
        for index in self._aliases_of(base):
            self.mutated_params.add(index)

    def _check_attr_store_sink(
        self, target: ast.expr, tokens: Set[str]
    ) -> None:
        if not isinstance(target, ast.Attribute):
            return
        label = self.policy.attr_store_sink(
            self._type_of(target.value), target.attr
        )
        if label is None:
            return
        self._record_sink(target, label, tokens, via="")

    def _mutation(self, node: ast.AST, what: str, via: str = "") -> None:
        key = (
            "mut",
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            what,
            frozenset(),
            via,
        )
        if key in self._events:
            return
        self._events.add(key)
        if self.collect_events:
            self.mutation_events.append(
                MutationEvent(
                    module=self.module,
                    lineno=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    what=what,
                    via=via,
                )
            )

    def _record_sink(
        self, node: ast.AST, label: str, tokens: Set[str], via: str
    ) -> None:
        kinds = frozenset(tokens & _KINDS)
        for token in tokens:
            index = _token_param(token)
            if index is not None:
                self.sink_params.add(index)
        if not kinds:
            return
        key = (
            "taint",
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            label,
            kinds,
            via,
        )
        if key in self._events:
            return
        self._events.add(key)
        if self.collect_events:
            self.taint_events.append(
                TaintEvent(
                    module=self.module,
                    lineno=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    sink=label,
                    kinds=kinds,
                    via=via,
                )
            )

    # -- expressions ---------------------------------------------------

    def _taint_of(self, node: ast.expr) -> Set[str]:
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Name):
            return set(self.taint.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            return self._taint_of(node.value)
        if isinstance(node, ast.Subscript):
            return self._taint_of(node.value) | self._taint_of_any(
                [node.slice]
            )
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(
            node,
            (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
        ):
            tokens: Set[str] = set()
            for gen in node.generators:
                tokens |= self._taint_of(gen.iter)
                if self._is_set_expr(gen.iter):
                    tokens.add(ORDER)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    tokens |= self._taint_of(child)
            return tokens
        # Generic: union over child expressions (BinOp, BoolOp,
        # Compare, IfExp, f-strings, containers, Starred, ...).
        return self._taint_of_any(
            [c for c in ast.iter_child_nodes(node) if isinstance(c, ast.expr)]
        )

    def _taint_of_any(self, nodes: Iterable[ast.expr]) -> Set[str]:
        tokens: Set[str] = set()
        for node in nodes:
            tokens |= self._taint_of(node)
        return tokens

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        return False

    # -- calls ---------------------------------------------------------

    def _call_view(self, call: ast.Call) -> CallView:
        func = call.func
        name = ""
        receiver: Optional[ast.expr] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            receiver = func.value
        dotted = self._resolved_dotted(func)
        receiver_type = (
            self._type_of(receiver) if receiver is not None else None
        )
        receiver_name = ""
        if isinstance(receiver, ast.Attribute):
            receiver_name = receiver.attr.lower()
        elif isinstance(receiver, ast.Name):
            receiver_name = receiver.id.lower()
        return CallView(
            call=call,
            name=name,
            dotted=dotted,
            receiver=receiver,
            receiver_type=receiver_type,
            receiver_name=receiver_name,
        )

    def _resolved_dotted(self, func: ast.expr) -> Optional[str]:
        parts: List[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        modules, members = self.table.imports.get(
            self.module.relpath, ({}, {})
        )
        head = parts[0]
        if head in modules:
            parts[0] = modules[head]
        elif head in members:
            parts[0] = members[head]
        return ".".join(parts)

    def _call(self, call: ast.Call) -> Set[str]:
        cv = self._call_view(call)
        arg_tokens = [self._taint_of(a) for a in call.args]
        kw_tokens = [
            (kw.arg, self._taint_of(kw.value)) for kw in call.keywords
        ]
        all_tokens: Set[str] = set()
        for tokens in arg_tokens:
            all_tokens |= tokens
        for _, tokens in kw_tokens:
            all_tokens |= tokens

        source = self.policy.source_kinds(cv)
        if source:
            return set(source) | all_tokens

        if cv.name == "sorted" and cv.receiver is None:
            # sorted() is the canonical ORDER sanitizer: the result no
            # longer depends on the input's iteration order.  RNG taint
            # survives — sorting random values is still random.
            return all_tokens - {ORDER}

        label = self.policy.sink_label(cv)
        if label is not None:
            for node, tokens in self._sink_args(call, arg_tokens, kw_tokens):
                self._record_sink(node, label, tokens, via="")

        resolved, bound = self._resolve(cv)
        if resolved is not None:
            return self._apply_summary(call, cv, resolved, bound)

        # Unresolved call: mutator-method heuristic, then conservative
        # taint union over receiver and arguments.
        if cv.receiver is not None and cv.name in self.policy.mutator_methods:
            if self._is_frozen(cv.receiver):
                self._mutation(call, f"{cv.name}() on a frozen view")
            for index in self._aliases_of(cv.receiver):
                self.mutated_params.add(index)
        if cv.receiver is not None:
            all_tokens |= self._taint_of(cv.receiver)
        return all_tokens

    def _sink_args(
        self,
        call: ast.Call,
        arg_tokens: List[Set[str]],
        kw_tokens: List[Tuple[Optional[str], Set[str]]],
    ) -> List[Tuple[ast.AST, Set[str]]]:
        sites: List[Tuple[ast.AST, Set[str]]] = []
        for node, tokens in zip(call.args, arg_tokens):
            if tokens:
                sites.append((call, tokens))
        for (_, tokens), kw in zip(kw_tokens, call.keywords):
            if tokens:
                sites.append((call, tokens))
        return sites

    def _resolve(
        self, cv: CallView
    ) -> Tuple[Optional[FunctionInfo], bool]:
        """(callee, receiver-bound?) for a call, when it can be linked."""
        call = cv.call
        func = call.func
        table = self.table
        relpath = self.module.relpath
        if isinstance(func, ast.Name):
            local = table.function_in_module(relpath, func.id)
            if local is not None:
                return local, False
            member = table.imported_member(relpath, func.id)
            if member is not None:
                module_path, _, name = member.rpartition(".")
                target = table.module_relpath_for(module_path)
                if target is not None:
                    info = table.function_in_module(target, name)
                    if info is not None:
                        return info, False
            return None, False
        if isinstance(func, ast.Attribute) and cv.receiver is not None:
            receiver = cv.receiver
            # module alias: np.helper() / parallel.run_trial()
            if isinstance(receiver, ast.Name):
                modules, _ = table.imports.get(relpath, ({}, {}))
                dotted = modules.get(receiver.id)
                if dotted is not None:
                    target = table.module_relpath_for(dotted)
                    if target is not None:
                        info = table.function_in_module(target, func.attr)
                        if info is not None:
                            return info, False
                # unbound class access: ClassName.method(obj, ...)
                cls_name = self._class_named(receiver.id)
                if cls_name is not None:
                    info = table.resolve_method(cls_name, func.attr)
                    if info is not None:
                        return info, False
            receiver_type = cv.receiver_type
            if receiver_type is not None:
                info = table.resolve_method(receiver_type, func.attr)
                if info is not None:
                    return info, True
        return None, False

    def _class_named(self, name: str) -> Optional[str]:
        if name in self.table.classes:
            return name
        member = self.table.imported_member(self.module.relpath, name)
        if member is not None:
            bare = member.rpartition(".")[2]
            if bare in self.table.classes:
                return bare
        return None

    def _apply_summary(
        self,
        call: ast.Call,
        cv: CallView,
        callee: FunctionInfo,
        bound: bool,
    ) -> Set[str]:
        summary = self.analysis.summaries.get(
            callee.qname, FunctionSummary()
        )
        offset = (
            1
            if bound and callee.class_name and not callee.is_staticmethod
            else 0
        )
        mapped: List[Tuple[int, ast.expr]] = []
        if bound and offset == 1 and cv.receiver is not None:
            mapped.append((0, cv.receiver))
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            mapped.append((position + offset, arg))
        for kw in call.keywords:
            if kw.arg is None:
                continue
            index = callee.param_index(kw.arg)
            if index is not None:
                mapped.append((index, kw.value))

        taint_by_param: Dict[int, Set[str]] = {}
        for index, arg in mapped:
            taint_by_param.setdefault(index, set()).update(
                self._taint_of(arg)
            )
            if index in summary.sink_params:
                tokens = self._taint_of(arg)
                self._record_sink(
                    call,
                    f"a canonical sink inside {callee.qname}",
                    tokens,
                    via=callee.qname,
                )
            if index in summary.mutated_params:
                if self._is_frozen(arg):
                    self._mutation(
                        call,
                        f"passed to {callee.qname}, which mutates it",
                        via=callee.qname,
                    )
                for alias in self._aliases_of(arg):
                    self.mutated_params.add(alias)

        result: Set[str] = set(summary.returns_kinds())
        for index in summary.return_params():
            result |= taint_by_param.get(index, set())
        return result

    # -- frozen / alias / type inference -------------------------------

    def _is_frozen(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.frozen
        if isinstance(node, ast.Attribute):
            # A field of a frozen view (ColumnSet columns, GroupIndex
            # arrays, snapshot event lists) is part of the view.
            return self._is_frozen(node.value)
        if isinstance(node, ast.Call):
            cv = self._call_view(node)
            if self.policy.is_frozen_producer(cv):
                return True
            if (
                cv.receiver is not None
                and cv.name in self.policy.frozen_view_methods
                and self._is_frozen(cv.receiver)
            ):
                return True
            resolved, _ = self._resolve(cv)
            if resolved is not None:
                summary = self.analysis.summaries.get(
                    resolved.qname, FunctionSummary()
                )
                return summary.returns_frozen
        # Subscripts are deliberately NOT frozen: boolean/fancy
        # indexing copies, and that is the dominant idiom in kernels.
        return False

    def _aliases_of(self, node: ast.expr) -> Set[int]:
        if isinstance(node, ast.Name):
            return set(self.aliases.get(node.id, ()))
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            return self._aliases_of(node.value)
        return set()

    def _type_of(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._type_of(node.value)
            if base is not None:
                cls = self.table.classes.get(base)
                if cls is not None:
                    return cls.attr_types.get(node.attr)
            return None
        if isinstance(node, ast.Call):
            cv = self._call_view(node)
            typed = self.policy.call_result_type(cv)
            if typed is not None:
                return typed
            constructed = self._class_named(cv.name) if cv.receiver is None else None
            if constructed is not None:
                return constructed
            # Bare-name constructor of a class we only know by import
            # (EventStore in a fixture tree without store sources).
            if (
                cv.receiver is None
                and cv.name
                and cv.name[0].isupper()
                and self.table.imported_member(
                    self.module.relpath, cv.name
                )
                is not None
            ):
                return cv.name
        return None


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _annotation_name(ann: Optional[ast.expr]) -> Optional[str]:
    """Bare class name from an annotation (through Optional/quotes)."""
    if ann is None:
        return None
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            return _annotation_name(ast.parse(ann.value, mode="eval").body)
        except SyntaxError:
            return None
    if isinstance(ann, ast.Subscript):
        base = _annotation_name(ann.value)
        if base == "Optional":
            inner = ann.slice
            return _annotation_name(inner) if isinstance(
                inner, ast.expr
            ) else None
    return None


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class FlowAnalysis:
    """Summaries at fixpoint + per-module taint/mutation events."""

    #: safety valve; real projects converge in a handful of rounds
    MAX_ROUNDS = 16

    def __init__(self, project: Project, policy: FlowPolicy) -> None:
        self.project = project
        self.policy = policy
        self.table = SymbolTable(project)
        self.summaries: Dict[str, FunctionSummary] = {}
        self.rounds = 0
        self._compute_summaries()
        self._taint_events: Dict[str, List[TaintEvent]] = {}
        self._mutation_events: Dict[str, List[MutationEvent]] = {}
        self._collect_events()

    # -- summaries -----------------------------------------------------

    def _compute_summaries(self) -> None:
        functions = list(self.table.functions.values())
        for info in functions:
            self.summaries[info.qname] = FunctionSummary()
        for round_index in range(self.MAX_ROUNDS):
            self.rounds = round_index + 1
            changed = False
            for info in functions:
                updated = self._summarize(info)
                if updated != self.summaries[info.qname]:
                    self.summaries[info.qname] = updated
                    changed = True
            if not changed:
                break

    def _summarize(self, info: FunctionInfo) -> FunctionSummary:
        flow = _ScopeFlow(
            self,
            info.module,
            info.node.body,
            info,
            collect_events=False,
        )
        return FunctionSummary(
            returns=frozenset(flow.ret_tokens),
            sink_params=frozenset(flow.sink_params),
            mutated_params=frozenset(flow.mutated_params),
            returns_frozen=flow.ret_frozen,
        )

    # -- events --------------------------------------------------------

    def _collect_events(self) -> None:
        for module in self.project.modules:
            taint: List[TaintEvent] = []
            mutations: List[MutationEvent] = []
            scopes = self._module_scopes(module)
            for body, info in scopes:
                flow = _ScopeFlow(
                    self, module, body, info, collect_events=True
                )
                taint.extend(flow.taint_events)
                mutations.extend(flow.mutation_events)
            self._taint_events[module.relpath] = taint
            self._mutation_events[module.relpath] = mutations

    def _module_scopes(
        self, module: ModuleInfo
    ) -> List[Tuple[Sequence[ast.stmt], Optional[FunctionInfo]]]:
        scopes: List[Tuple[Sequence[ast.stmt], Optional[FunctionInfo]]] = [
            (module.tree.body, None)
        ]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._info_for(module, node)
                scopes.append((node.body, info))
        return scopes

    def _info_for(
        self, module: ModuleInfo, node: _FunctionNode
    ) -> FunctionInfo:
        for info in self.table.functions.values():
            if info.node is node:
                return info
        # Nested def: analyzable, but not addressable by callers.
        return FunctionInfo(
            qname=f"{module.relpath}::<nested>.{node.name}",
            module=module,
            node=node,
            class_name=_enclosing_class(module.tree, node),
        )

    def taint_events(self, module: ModuleInfo) -> List[TaintEvent]:
        return self._taint_events.get(module.relpath, [])

    def mutation_events(self, module: ModuleInfo) -> List[MutationEvent]:
        return self._mutation_events.get(module.relpath, [])


def _enclosing_class(
    tree: ast.Module, fn: _FunctionNode
) -> Optional[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for child in ast.walk(node):
                if child is fn:
                    return node.name
    return None
