"""The ``python -m repro.analysis`` command line.

Exit codes: 0 clean (after suppressions and baseline), 1 findings,
2 usage or configuration error — so CI can distinguish "contract
violated" from "lint run itself broke".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.config import (
    DEFAULT_BASELINE_NAME,
    AnalysisConfig,
    load_pyproject_config,
    resolve_baseline_path,
)
from repro.analysis.core import Finding, iter_python_files, run_analysis
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules import DEFAULT_REGISTRY

__all__ = ["main", "build_parser", "run"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: AST-based determinism & contract linter for "
            "the reputation stack (rules R001-R007, see DESIGN.md §10)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: from "
        "[tool.reprolint] paths, else src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text); sarif targets GitHub "
        "code scanning",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="baseline file of grandfathered findings "
        "(default: nearest reprolint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the resolved baseline (default: "
        f"./{DEFAULT_BASELINE_NAME}) from current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_rules(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _default_paths(pyproject: dict, cwd: Path) -> List[Path]:
    configured = pyproject.get("paths")
    if isinstance(configured, list) and configured:
        return [cwd / str(p) for p in configured]
    fallback = cwd / "src" / "repro"
    return [fallback if fallback.is_dir() else cwd]


def run(config: AnalysisConfig) -> int:
    """Execute one analysis run; returns the process exit code."""
    for path in config.paths:
        if not path.exists():
            print(
                f"reprolint: no such path: {path}", file=sys.stderr
            )
            return EXIT_USAGE
    try:
        rules = DEFAULT_REGISTRY.rules(
            select=config.select, ignore=config.ignore
        )
    except KeyError as exc:
        print(f"reprolint: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE

    findings: List[Finding] = run_analysis(config.paths, rules)
    files_scanned = len(iter_python_files(config.paths))

    if config.update_baseline:
        target = config.baseline or Path.cwd() / DEFAULT_BASELINE_NAME
        Baseline.empty().write(target, findings)
        print(
            f"reprolint: baseline updated with {len(findings)} "
            f"finding(s) at {target}"
        )
        return EXIT_CLEAN

    if config.write_baseline:
        if config.baseline is None:
            print(
                "reprolint: --write-baseline needs --baseline FILE "
                "(or a discoverable reprolint-baseline.json)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        Baseline.empty().write(config.baseline, findings)
        print(
            f"reprolint: wrote {len(findings)} finding(s) to "
            f"{config.baseline}"
        )
        return EXIT_CLEAN

    grandfathered = 0
    if config.baseline is not None and config.baseline.exists():
        try:
            baseline = Baseline.load(config.baseline)
        except BaselineError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        findings, grandfathered = baseline.filter(findings)

    if config.output_format == "sarif":
        report = render_sarif(
            findings, files_scanned, grandfathered, rules=rules
        )
    elif config.output_format == "json":
        report = render_json(findings, files_scanned, grandfathered)
    else:
        report = render_text(findings, files_scanned, grandfathered)
    if config.output_file is not None:
        config.output_file.write_text(report, encoding="utf-8")
    print(report, end="")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in DEFAULT_REGISTRY.ids():
            rule = DEFAULT_REGISTRY.get(rule_id)
            print(f"{rule_id}  {rule.title}")
        return EXIT_CLEAN

    cwd = Path.cwd()
    pyproject = load_pyproject_config(cwd)
    paths = list(args.paths) or _default_paths(pyproject, cwd)

    select = _split_rules(args.select)
    if select is None:
        configured = pyproject.get("select")
        if isinstance(configured, list) and configured:
            select = [str(rule) for rule in configured]
    ignore = _split_rules(args.ignore)
    if ignore is None:
        configured = pyproject.get("ignore")
        ignore = (
            [str(rule) for rule in configured]
            if isinstance(configured, list)
            else []
        )

    baseline = resolve_baseline_path(
        explicit=args.baseline,
        no_baseline=args.no_baseline,
        pyproject_value=pyproject.get("baseline"),
        cwd=cwd,
    )
    config = AnalysisConfig(
        paths=paths,
        select=select,
        ignore=ignore,
        baseline=baseline,
        output_format=args.format,
        output_file=args.output,
        write_baseline=args.write_baseline,
        update_baseline=args.update_baseline,
    )
    return run(config)
