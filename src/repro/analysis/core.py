"""reprolint core: findings, rules, suppressions, and the analysis driver.

The linter turns the repository's determinism and cache-coherence
invariants (DESIGN.md §6, §8, §9) into machine-checked rules that run
at lint time instead of test time.  The moving parts:

* :class:`Finding` — one diagnostic, anchored at (path, line, col).
* :class:`Rule` — a named check over one parsed module, with access to
  the whole :class:`Project` for cross-file contracts (e.g. "every
  ``score_many`` override must be in the batch-parity registry").
* :class:`Project` — every scanned module parsed once, shared by all
  rules, so project-level rules stay O(files) not O(files²).
* suppressions — ``# reprolint: disable=R001`` on the offending line
  (or on a comment line directly above it) silences a finding.
* the driver — :func:`run_analysis` walks paths, parses, runs rules,
  applies suppressions and the baseline, and returns findings sorted
  by ``(path, line, col, rule)`` so output is byte-stable across runs.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "RuleRegistry",
    "dotted_name",
    "iter_python_files",
    "parse_module",
    "run_analysis",
    "suppressed_rules",
]

#: ``# reprolint: disable=R001,R002`` / ``# reprolint: disable=all``
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+|all)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic.

    Ordering is (path, line, col, rule) — the canonical report order,
    which keeps CI diffs and baseline files deterministic.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    #: the stripped source line, used for drift-tolerant baseline matching
    content: str = field(compare=False, default="")

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "content": self.content,
        }


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    #: path relative to the ``repro`` package root (or the scan root),
    #: with ``/`` separators — what rule scopes match against
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str]

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(
        self, node: ast.AST, rule: str, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.relpath,
            line=lineno,
            col=col,
            rule=rule,
            message=message,
            content=self.line_at(lineno).strip(),
        )


@dataclass
class Project:
    """Every scanned module, parsed once and shared by all rules."""

    modules: List[ModuleInfo]
    #: scratch space for cross-rule memoisation (e.g. the flow engine
    #: builds one symbol table + summary fixpoint per project, shared
    #: by R009/R010/R011); keyed by a caller-chosen string
    caches: Dict[str, object] = field(default_factory=dict)
    _by_relpath: Dict[str, ModuleInfo] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_relpath = {m.relpath: m for m in self.modules}

    def module(self, relpath: str) -> Optional[ModuleInfo]:
        return self._by_relpath.get(relpath)

    def modules_under(self, prefix: str) -> List[ModuleInfo]:
        return [
            m for m in self.modules if m.relpath.startswith(prefix)
        ]


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id`/:attr:`title` and implement
    :meth:`check`.  :meth:`applies_to` scopes the rule to parts of the
    tree (paths are package-relative, ``/``-separated).
    """

    rule_id: str = ""
    title: str = ""
    #: relpath prefixes the rule runs on; empty tuple = every file
    scopes: Tuple[str, ...] = ()
    #: relpath prefixes the rule never runs on (e.g. the blessed
    #: randomness module)
    exempt: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if any(relpath.startswith(prefix) for prefix in self.exempt):
            return False
        if not self.scopes:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scopes)

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.rule_id}: {self.title}>"


class RuleRegistry:
    """Rule-id-indexed collection with select/ignore filtering."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if not rule.rule_id:
            raise ValueError("rule must set rule_id")
        if rule.rule_id in self._rules:
            raise ValueError(f"duplicate rule id: {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown rule: {rule_id!r}") from None

    def ids(self) -> List[str]:
        return sorted(self._rules)

    def rules(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> List[Rule]:
        wanted = list(select) if select else self.ids()
        unknown = [r for r in wanted if r not in self._rules]
        unknown += [r for r in (ignore or ()) if r not in self._rules]
        if unknown:
            raise KeyError(
                "unknown rule(s): " + ", ".join(sorted(set(unknown)))
            )
        dropped = set(ignore or ())
        return [
            self._rules[rid] for rid in sorted(wanted) if rid not in dropped
        ]

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def suppressed_rules(module: ModuleInfo, lineno: int) -> frozenset:
    """Rule ids silenced at *lineno*.

    A suppression comment counts when it sits on the flagged line
    itself or alone on the line directly above it; ``disable=all``
    returns the sentinel ``{"all"}``.
    """
    ids: set = set()
    for candidate in (lineno, lineno - 1):
        text = module.line_at(candidate)
        if candidate != lineno and not text.lstrip().startswith("#"):
            continue
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        spec = match.group(1).strip()
        if spec == "all":
            return frozenset({"all"})
        ids.update(part.strip() for part in spec.split(",") if part.strip())
    return frozenset(ids)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under *paths*, sorted for determinism."""
    files: set = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def package_relpath(path: Path) -> str:
    """Path relative to the innermost ``repro`` package directory.

    ``src/repro/models/beta.py`` → ``models/beta.py`` so rule scopes
    are stable no matter where the tree is checked out or how the CLI
    was pointed at it.  Files outside a ``repro`` directory keep their
    trailing two components (enough for fixture trees).
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1:])
    return "/".join(parts[-2:]) if len(parts) >= 2 else path.name


def parse_module(path: Path) -> Optional[ModuleInfo]:
    """Parse one file; returns None for unreadable/unparsable files."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    return ModuleInfo(
        path=path,
        relpath=package_relpath(path),
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def build_project(paths: Sequence[Path]) -> Project:
    modules = []
    for file in iter_python_files(paths):
        info = parse_module(file)
        if info is not None:
            modules.append(info)
    return Project(modules=modules)


def run_analysis(
    paths: Sequence[Path],
    rules: Iterable[Rule],
) -> List[Finding]:
    """Run *rules* over every Python file under *paths*.

    Findings are de-duplicated, suppression comments are honoured, and
    the result is sorted by ``(path, line, col, rule)`` — the stability
    contract that keeps CI diffs and baseline files deterministic.
    """
    project = build_project(paths)
    findings: set = set()
    for rule in rules:
        for module in project.modules:
            if not rule.applies_to(module.relpath):
                continue
            for finding in rule.check(module, project):
                silenced = suppressed_rules(module, finding.line)
                if "all" in silenced or finding.rule in silenced:
                    continue
                findings.add(finding)
    return sorted(findings)
