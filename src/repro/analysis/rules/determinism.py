"""Determinism rules.

R001 — no global nondeterminism sources.  Every stochastic component
must draw from an injected ``numpy.random.Generator`` (see
``repro/common/randomness.py``, the one blessed module).  Global
``random`` state, the ``numpy.random`` legacy singleton, wall-clock
reads, uuid4, and ``os.urandom`` all make ``parallel == serial``
unprovable, so they are banned at lint time.

R002 — no iteration over unordered collections on scoring, ranking, or
parallel merge paths.  ``set``/``frozenset`` iteration order depends on
hash values, and ``str`` hashing is salted per process — so a float
accumulation or a dict built in set order can differ between a pool
worker and the serial fallback.  Dict views are insertion-ordered in
CPython and therefore deterministic given deterministic insertion;
they only become unordered when pulled into set algebra, which this
rule tracks.  The fix is always ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
)

__all__ = ["GlobalNondeterminismRule", "UnorderedIterationRule"]


# ---------------------------------------------------------------------------
# R001
# ---------------------------------------------------------------------------

#: exact dotted names that read ambient nondeterministic state
_BANNED_EXACT = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid1": "nondeterministic id",
    "uuid.uuid4": "nondeterministic id",
    "os.urandom": "OS entropy",
}

#: members of numpy.random that are seeded constructors, not the
#: legacy global singleton
_NUMPY_RANDOM_ALLOWED = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "RandomState",  # explicit seeded instance; the singleton is the hazard
}

#: members of the stdlib random module that construct an instance
#: rather than touching module-level state
_RANDOM_ALLOWED = {"Random"}


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted path, from the module's imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                canonical = item.name if item.asname else local
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:
                continue  # relative imports never reach the banned modules
            for item in node.names:
                local = item.asname or item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases


class GlobalNondeterminismRule(Rule):
    rule_id = "R001"
    title = "no global nondeterminism sources"
    exempt = ("common/randomness.py",)

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            dotted = dotted_name(node)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            canonical = aliases.get(head)
            if canonical is None:
                continue
            full = canonical + ("." + rest if rest else "")
            message = self._violation(full)
            if message is not None:
                yield module.finding(node, self.rule_id, message)

    @staticmethod
    def _violation(full: str) -> Optional[str]:
        parts = full.split(".")
        if full in _BANNED_EXACT:
            return (
                f"{full} is a {_BANNED_EXACT[full]}; inject time/ids "
                "through the simulation clock or a seeded generator"
            )
        if parts[0] == "secrets" and len(parts) > 1:
            return (
                f"{full} draws OS entropy; use "
                "repro.common.randomness.make_rng"
            )
        if parts[0] == "random" and len(parts) > 1:
            if parts[1] in _RANDOM_ALLOWED:
                return None
            return (
                f"{full} touches the random module's global state; use "
                "a numpy Generator from repro.common.randomness"
            )
        if (
            len(parts) > 2
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] not in _NUMPY_RANDOM_ALLOWED
        ):
            return (
                f"{full} uses numpy's global RNG singleton; use "
                "repro.common.randomness.make_rng / SeedSequenceFactory"
            )
        return None


# ---------------------------------------------------------------------------
# R002
# ---------------------------------------------------------------------------

_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}

#: builtins whose output leaks iteration order (sorted() is the remedy
#: and set()/frozenset()/len()/any()/all() are order-insensitive)
_ORDER_SENSITIVE_CALLS = {
    "list",
    "tuple",
    "sum",
    "min",
    "max",
    "enumerate",
    "zip",
    "map",
    "filter",
    "iter",
    "next",
    "reversed",
}


def _annotation_kind(ann: Optional[ast.AST]) -> Optional[str]:
    """'set' / 'dict_of_set' / None from a type annotation node."""
    if ann is None:
        return None
    if isinstance(ann, ast.Name):
        return "set" if ann.id in {"set", "frozenset"} else None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            return _annotation_kind(
                ast.parse(ann.value, mode="eval").body
            )
        except SyntaxError:
            return None
    if isinstance(ann, ast.Subscript):
        base = ann.value
        base_name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if base_name in {"Set", "FrozenSet", "set", "frozenset"}:
            return "set"
        if base_name in {"Dict", "dict", "DefaultDict", "defaultdict"}:
            sl = ann.slice
            if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
                if _annotation_kind(sl.elts[1]) == "set":
                    return "dict_of_set"
    return None


class _AttrTypes:
    """Instance-attribute kinds for one class: name -> 'set'/'dict_of_set'."""

    def __init__(self, cls: ast.ClassDef) -> None:
        self.kinds: Dict[str, str] = {}
        for stmt in cls.body:
            if (
                isinstance(stmt, ast.FunctionDef)
                and stmt.name == "__init__"
            ):
                for node in ast.walk(stmt):
                    self._harvest(node)

    def _harvest(self, node: ast.AST) -> None:
        target: Optional[ast.AST] = None
        kind: Optional[str] = None
        if isinstance(node, ast.AnnAssign):
            target = node.target
            kind = _annotation_kind(node.annotation)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if _is_set_literalish(node.value):
                kind = "set"
        if (
            kind is not None
            and isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.kinds[target.attr] = kind


def _is_set_literalish(node: ast.AST) -> bool:
    """Expressions that construct a set regardless of context."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


class _ScopeInference:
    """Branch-insensitive set inference for one function (or module) body.

    Over-approximates: a name counts as a set if *any* binding in the
    scope makes it one.  Suppression comments handle the rare false
    positive; missing a genuine unordered iteration is the worse error.
    """

    def __init__(
        self,
        body: List[ast.stmt],
        attr_types: Dict[str, str],
        params: Optional[ast.arguments] = None,
        seed: Optional[Set[str]] = None,
    ) -> None:
        self.attr_types = attr_types
        self.set_names: Set[str] = set(seed or ())
        if params is not None:
            for arg in (
                list(params.posonlyargs)
                + list(params.args)
                + list(params.kwonlyargs)
            ):
                if _annotation_kind(arg.annotation) == "set":
                    self.set_names.add(arg.arg)
        # Fixed-point over local bindings: `a = set(); b = a` needs two
        # passes when bindings appear out of order.
        for _ in range(2):
            before = len(self.set_names)
            for stmt in body:
                for node in ast.walk(stmt):
                    self._bind(node)
            if len(self.set_names) == before:
                break

    def _bind(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and self.is_set(node.value):
                self.set_names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and _annotation_kind(node.annotation) == "set"
            ):
                self.set_names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            self._bind_loop(node.target, node.iter)

    def _bind_loop(self, target: ast.AST, source: ast.AST) -> None:
        """Loop targets drawn from Dict[..., Set[...]] values are sets."""
        view = _dict_view_call(source)
        if view is None:
            return
        method, receiver = view
        if self._receiver_kind(receiver) != "dict_of_set":
            return
        if method == "values" and isinstance(target, ast.Name):
            self.set_names.add(target.id)
        elif (
            method == "items"
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(target.elts[1], ast.Name)
        ):
            self.set_names.add(target.elts[1].id)

    def _receiver_kind(self, node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return self.attr_types.get(node.attr)
        return None

    def is_set(self, node: ast.AST) -> bool:
        """Whether *node* statically evaluates to a set/frozenset."""
        if _is_set_literalish(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            return self._receiver_kind(node) == "set"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set(func.value)
            ):
                return True
            # self._attr.get(k, set()) / .setdefault(k, set())
            if (
                isinstance(func, ast.Attribute)
                and func.attr in {"get", "setdefault"}
            ):
                if self._receiver_kind(func.value) == "dict_of_set":
                    return True
                if len(node.args) >= 2 and _is_set_literalish(
                    node.args[1]
                ):
                    return True
        if isinstance(node, ast.Subscript):
            return self._receiver_kind(node.value) == "dict_of_set"
        return False


def _dict_view_call(
    node: ast.AST,
) -> Optional[Tuple[str, ast.AST]]:
    """(method, receiver) for ``X.keys()/.values()/.items()`` calls."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in {"keys", "values", "items"}
        and not node.args
        and not node.keywords
    ):
        return node.func.attr, node.func.value
    return None


class UnorderedIterationRule(Rule):
    rule_id = "R002"
    title = "no unordered iteration on scoring/ranking/merge paths"
    scopes = (
        "models/",
        "core/selection.py",
        "experiments/parallel.py",
        "experiments/sharded.py",
        "obs/",
        "serve/",
    )

    _MESSAGE = (
        "iteration over a set has hash-salted, process-dependent order "
        "on a scoring/ranking/merge path; wrap the iterable in sorted(...)"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        empty_attrs: Dict[str, str] = {}
        # Module-level set bindings (`PEERS = {...}`) are visible in
        # every function below them — seed each scope with them.
        module_sets = _ScopeInference(
            self._toplevel_stmts(module.tree.body), empty_attrs
        ).set_names
        # Module-level statements (outside any class/function).
        yield from self._check_scope(
            module, module.tree.body, empty_attrs, None, toplevel=True
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                attrs = _AttrTypes(node).kinds
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        yield from self._check_scope(
                            module, item.body, attrs, item.args,
                            seed=module_sets,
                        )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and not self._is_method(node, module.tree):
                yield from self._check_scope(
                    module, node.body, empty_attrs, node.args,
                    seed=module_sets,
                )

    @staticmethod
    def _is_method(fn: ast.AST, tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and fn in node.body:
                return True
        return False

    @staticmethod
    def _toplevel_stmts(body: List[ast.stmt]) -> List[ast.stmt]:
        """Direct statements only; nested defs get their own scope."""
        return [
            s
            for s in body
            if not isinstance(
                s,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            )
        ]

    def _check_scope(
        self,
        module: ModuleInfo,
        body: List[ast.stmt],
        attr_types: Dict[str, str],
        params: Optional[ast.arguments],
        toplevel: bool = False,
        seed: Optional[Set[str]] = None,
    ) -> Iterator[Finding]:
        stmts = self._toplevel_stmts(body) if toplevel else body
        scope = _ScopeInference(stmts, attr_types, params, seed)
        seen: Set[Tuple[int, int]] = set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if not toplevel and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue  # nested defs are visited as methods/functions
                for site in self._order_sensitive_sites(node, scope):
                    key = (
                        getattr(site, "lineno", 0),
                        getattr(site, "col_offset", 0),
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    yield module.finding(
                        site, self.rule_id, self._MESSAGE
                    )

    @staticmethod
    def _order_sensitive_sites(
        node: ast.AST, scope: _ScopeInference
    ) -> List[ast.AST]:
        sites: List[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if scope.is_set(node.iter):
                sites.append(node.iter)
        elif isinstance(
            node,
            (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
        ):
            for gen in node.generators:
                if scope.is_set(gen.iter):
                    sites.append(gen.iter)
        elif isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            if name in _ORDER_SENSITIVE_CALLS or name == "join":
                for arg in node.args:
                    if scope.is_set(arg):
                        sites.append(arg)
        return sites
