"""Columnar kernel rule.

R007 — no per-row Python loops over store columns in model kernels.
The columnar :class:`~repro.store.EventStore` exists so scoring math
runs as numpy reductions (``bincount``/``lexsort`` over the snapshot's
column arrays); a ``for`` loop or comprehension over those columns —
or over ``iter_rows(...)`` — reintroduces the per-event Python frame
the store was built to eliminate, silently costing the 10-100x the
benchmarks gate on.  The scalar replay paths that *define* model
semantics are the sanctioned exception: they carry
``# reprolint: disable=R007`` with a comment naming them as the
reference implementation.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set

from repro.analysis.core import Finding, ModuleInfo, Project, Rule

__all__ = ["ColumnarLoopRule"]

#: the five ColumnSet arrays; ``columns.<attr>`` marks a column value
_COLUMN_ATTRS = {"rater", "target", "facet", "value", "time"}


class _ColumnScope:
    """Column-array inference for one function (or module) body.

    Branch-insensitive and over-approximate, like R002's set inference:
    a name counts as a snapshot/column/row-iterator if *any* binding in
    the scope makes it one.  Suppression comments handle the rare false
    positive.
    """

    def __init__(self, body: Sequence[ast.stmt]) -> None:
        self.snapshot_names: Set[str] = set()
        self.column_names: Set[str] = set()
        self.rowiter_names: Set[str] = set()
        # Fixed point over local bindings (`cols = store.snapshot();
        # vals = cols.value` needs two passes when out of order).
        for _ in range(2):
            before = (
                len(self.snapshot_names)
                + len(self.column_names)
                + len(self.rowiter_names)
            )
            for stmt in body:
                for node in ast.walk(stmt):
                    self._bind(node)
            after = (
                len(self.snapshot_names)
                + len(self.column_names)
                + len(self.rowiter_names)
            )
            if after == before:
                break

    def _bind(self, node: ast.AST) -> None:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            return
        kind = self.kind(node.value)
        if kind == "snapshot":
            self.snapshot_names.add(node.targets[0].id)
        elif kind == "column":
            self.column_names.add(node.targets[0].id)
        elif kind == "rows":
            self.rowiter_names.add(node.targets[0].id)

    def kind(self, node: ast.AST) -> Optional[str]:
        """'snapshot' / 'column' / 'rows' / None for an expression."""
        if isinstance(node, ast.Name):
            if node.id in self.snapshot_names:
                return "snapshot"
            if node.id in self.column_names:
                return "column"
            if node.id in self.rowiter_names:
                return "rows"
            return None
        if isinstance(node, ast.Attribute):
            if (
                node.attr in _COLUMN_ATTRS
                and self.kind(node.value) == "snapshot"
            ):
                return "column"
            return None
        if isinstance(node, ast.Subscript):
            # A sliced/fancy-indexed column is still a column.
            return (
                "column" if self.kind(node.value) == "column" else None
            )
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr == "snapshot" and not node.args:
                return "snapshot"
            if node.func.attr == "iter_rows":
                return "rows"
            if node.func.attr == "tolist":
                # Materializing a column then looping it is the same
                # per-row frame with an extra allocation.
                return (
                    "column"
                    if self.kind(node.func.value) == "column"
                    else None
                )
        return None

    def loop_hazard(self, iter_node: ast.AST) -> Optional[ast.AST]:
        """The offending sub-expression when *iter_node* walks store
        rows, else None."""
        if self.kind(iter_node) in {"column", "rows"}:
            return iter_node
        # zip(columns.value, columns.time) / enumerate(column) wrappers.
        if isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Name
        ):
            if iter_node.func.id in {"zip", "enumerate", "reversed"}:
                for arg in iter_node.args:
                    if self.kind(arg) in {"column", "rows"}:
                        return arg
        return None


class ColumnarLoopRule(Rule):
    rule_id = "R007"
    title = "no per-row python loops over store columns"
    scopes = ("models/",)

    _MESSAGE = (
        "per-row python loop over store columns defeats the columnar "
        "kernels; use vectorized reductions (repro.store.kernels "
        "bincount/lexsort over the snapshot) — scalar reference paths "
        "carry an explicit disable comment"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        yield from self._check_scope(
            module, self._toplevel_stmts(module.tree.body)
        )
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(
                    module, self._toplevel_stmts(node.body)
                )

    @staticmethod
    def _toplevel_stmts(body: Sequence[ast.stmt]) -> List[ast.stmt]:
        """Direct statements only; nested defs get their own scope."""
        return [
            stmt
            for stmt in body
            if not isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            )
        ]

    def _check_scope(
        self, module: ModuleInfo, stmts: Sequence[ast.stmt]
    ) -> Iterator[Finding]:
        scope = _ColumnScope(stmts)
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue  # visited as their own scope
                yield from self._sites(module, node, scope)

    def _sites(
        self, module: ModuleInfo, node: ast.AST, scope: _ColumnScope
    ) -> Iterator[Finding]:
        iters: List[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(
            node,
            (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
        ):
            iters.extend(gen.iter for gen in node.generators)
        for iter_node in iters:
            site = scope.loop_hazard(iter_node)
            if site is not None:
                yield module.finding(site, self.rule_id, self._MESSAGE)
