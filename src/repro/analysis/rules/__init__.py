"""The reprolint rule catalogue.

Importing this package builds :data:`DEFAULT_REGISTRY` — the rules the
CLI runs.  To add a rule: subclass :class:`repro.analysis.core.Rule`
in one of the modules here (or a new one), then register it below.
DESIGN.md §10 documents the workflow end to end.
"""

from __future__ import annotations

from repro.analysis.core import RuleRegistry
from repro.analysis.rules.columnar import ColumnarLoopRule
from repro.analysis.rules.contracts import (
    BatchParityRegistryRule,
    CacheVersionBumpRule,
    PicklableWorldBuilderRule,
)
from repro.analysis.rules.determinism import (
    GlobalNondeterminismRule,
    UnorderedIterationRule,
)
from repro.analysis.rules.floatcmp import FloatEqualityRule
from repro.analysis.rules.sharding import ShardDeltaOrderRule
from repro.analysis.rules.taint import (
    AmbientTaintRule,
    FrozenViewMutationRule,
    SwallowedExceptionRule,
)

__all__ = ["DEFAULT_REGISTRY", "default_registry"]


def default_registry() -> RuleRegistry:
    """A fresh registry holding every shipped rule."""
    registry = RuleRegistry()
    registry.register(GlobalNondeterminismRule())
    registry.register(UnorderedIterationRule())
    registry.register(CacheVersionBumpRule())
    registry.register(BatchParityRegistryRule())
    registry.register(PicklableWorldBuilderRule())
    registry.register(FloatEqualityRule())
    registry.register(ColumnarLoopRule())
    registry.register(ShardDeltaOrderRule())
    registry.register(AmbientTaintRule())
    registry.register(FrozenViewMutationRule())
    registry.register(SwallowedExceptionRule())
    return registry


DEFAULT_REGISTRY = default_registry()
