"""R006 — no bare float equality on scores, trust values, or ratings.

Model code computes scores through float accumulation, decay weights,
and power iterations; two mathematically-equal paths routinely differ
in the last ulp.  ``score == 0.5`` therefore encodes a coincidence of
rounding, not a semantic condition.  Use an ordering comparison, an
explicit tolerance (``math.isclose`` / ``abs(a - b) <= eps``), or an
integer/boolean encoding of the condition instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.core import Finding, ModuleInfo, Project, Rule

__all__ = ["FloatEqualityRule"]

#: identifier segments that mark a value as a score/trust quantity
_SCORE_SEGMENTS = {
    "score",
    "scores",
    "trust",
    "trusts",
    "rating",
    "ratings",
    "reputation",
    "similarity",
    "credibility",
    "satisfaction",
}

#: segments that mark the identifier as an integer/categorical quantity
#: even when a score segment is present (rating_count, trust_index, ...)
_NONFLOAT_SEGMENTS = {
    "count",
    "counts",
    "total",
    "totals",
    "num",
    "idx",
    "index",
    "id",
    "ids",
    "name",
    "names",
    "key",
    "keys",
    "sign",
    "signs",
    "kind",
    "label",
    "labels",
    "version",
}


def _identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _identifier(node.func)
    return None


def _is_scorelike(node: ast.AST) -> bool:
    name = _identifier(node)
    if name is None:
        return False
    segments: Set[str] = set(name.strip("_").lower().split("_"))
    if segments & _NONFLOAT_SEGMENTS:
        return False
    return bool(segments & _SCORE_SEGMENTS)


def _is_exempt_operand(node: ast.AST) -> bool:
    """Operands whose equality is identity-like, not numeric."""
    return isinstance(node, ast.Constant) and (
        node.value is None
        or isinstance(node.value, (str, bool))
    )


class FloatEqualityRule(Rule):
    rule_id = "R006"
    title = "no bare float equality on score/trust values"
    scopes = ("models/",)

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_exempt_operand(left) or _is_exempt_operand(right):
                    continue
                if _is_scorelike(left) or _is_scorelike(right):
                    yield module.finding(
                        node,
                        self.rule_id,
                        "bare float equality on a score/trust value; "
                        "use an ordering comparison or an explicit "
                        "tolerance (abs(a - b) <= eps)",
                    )
                    break
