"""Sharded-execution rules.

R008 — cross-shard delta application must iterate in canonical spec
order.  The sharded runner's whole invariant (``1 shard == N shards``,
byte for byte) rests on merging per-shard deltas in a deterministic
order: shard-index lists, spec-ordered sequences, lexsorted key
columns.  Feeding a merge primitive (``merge_from``,
``merge_snapshots``, ``apply_delta``, ``merge_delta``) from a
``set``/``frozenset`` — whose iteration order is hash-salted and
process-dependent — silently breaks the invariant only on some
machines, which is the worst way to break it.  The rule flags merge
calls inside loops or comprehensions over set-ish iterables, and
set-ish expressions passed to a merge primitive directly.  The fix is
always the same: keep deltas in a list (or ``sorted(...)`` the
collection) before merging.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleInfo, Project, Rule
from repro.analysis.rules.determinism import (
    _AttrTypes,
    _ScopeInference,
)

__all__ = ["ShardDeltaOrderRule"]


class ShardDeltaOrderRule(Rule):
    rule_id = "R008"
    title = "cross-shard delta merges must iterate in canonical order"
    scopes = (
        "experiments/sharded.py",
        "experiments/parallel.py",
        "store/",
        "obs/",
        "sim/network.py",
    )

    #: merge primitives whose call order becomes interner/counter order
    _MERGE_METHODS = frozenset(
        {"merge_from", "merge_snapshots", "apply_delta", "merge_delta"}
    )

    _LOOP_MESSAGE = (
        "delta merge inside a loop over a set has hash-salted, "
        "process-dependent order; merge shard deltas from a list in "
        "spec order (or sorted(...))"
    )
    _ARG_MESSAGE = (
        "a set passed to a merge primitive is consumed in hash-salted "
        "order; pass a spec-ordered list (or sorted(...))"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        empty_attrs: Dict[str, str] = {}
        module_sets = _ScopeInference(
            self._toplevel_stmts(module.tree.body), empty_attrs
        ).set_names
        yield from self._check_scope(
            module, self._toplevel_stmts(module.tree.body), empty_attrs,
            None,
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                attrs = _AttrTypes(node).kinds
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        yield from self._check_scope(
                            module, item.body, attrs, item.args,
                            seed=module_sets,
                        )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and not self._is_method(node, module.tree):
                yield from self._check_scope(
                    module, node.body, empty_attrs, node.args,
                    seed=module_sets,
                )

    @staticmethod
    def _is_method(fn: ast.AST, tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and fn in node.body:
                return True
        return False

    @staticmethod
    def _toplevel_stmts(body: List[ast.stmt]) -> List[ast.stmt]:
        return [
            s
            for s in body
            if not isinstance(
                s,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            )
        ]

    def _check_scope(
        self,
        module: ModuleInfo,
        body: List[ast.stmt],
        attr_types: Dict[str, str],
        params: Optional[ast.arguments],
        seed: Optional[Set[str]] = None,
    ) -> Iterator[Finding]:
        scope = _ScopeInference(body, attr_types, params, seed)
        seen: Set[Tuple[int, int]] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                for site, message in self._sites(node, scope):
                    key = (
                        getattr(site, "lineno", 0),
                        getattr(site, "col_offset", 0),
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    yield module.finding(site, self.rule_id, message)

    def _sites(
        self, node: ast.AST, scope: _ScopeInference
    ) -> List[Tuple[ast.AST, str]]:
        sites: List[Tuple[ast.AST, str]] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if scope.is_set(node.iter) and self._has_merge_call(node.body):
                sites.append((node.iter, self._LOOP_MESSAGE))
        elif isinstance(
            node,
            (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
        ):
            if self._has_merge_call([node]):
                for gen in node.generators:
                    if scope.is_set(gen.iter):
                        sites.append((gen.iter, self._LOOP_MESSAGE))
        elif isinstance(node, ast.Call):
            if self._merge_name(node) is not None:
                for arg in node.args:
                    if scope.is_set(arg):
                        sites.append((arg, self._ARG_MESSAGE))
        return sites

    def _merge_name(self, call: ast.Call) -> Optional[str]:
        func = call.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        return name if name in self._MERGE_METHODS else None

    def _has_merge_call(self, body: List[ast.AST]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and self._merge_name(node):
                    return True
        return False
