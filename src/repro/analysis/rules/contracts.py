"""Contract rules for the incremental-scoring and parallel runtimes.

R003 — a :class:`ReputationModel` subclass that maintains a versioned
cache (any ``self.version`` / ``self.*_version`` counter assigned in
``__init__``) must keep it coherent: its ``record()`` override has to
bump the counter, call a helper method that bumps it, or delegate to
``super().record()``.  A silent miss leaves warm stationary vectors
stale — exactly the failure mode the batch-scoring hypothesis suite
catches only after the fact.

R004 — a subclass that overrides ``score_many()`` must be registered
in ``default_registry`` (``core/registry.py``), because the
batch-parity gate (``tests/test_models/test_batch_scoring.py``)
parametrizes over registry names.  An unregistered kernel is an
unverified kernel.

R005 — world builders passed to ``register_world_builder`` must be
module-level functions.  Lambdas, closures, and local defs don't
pickle, so a spec naming them silently falls back to serial execution
(or fails outright under the spawn start method).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleInfo, Project, Rule

__all__ = [
    "CacheVersionBumpRule",
    "BatchParityRegistryRule",
    "PicklableWorldBuilderRule",
]

_ROOT_MODEL = "ReputationModel"


def _is_version_attr(name: str) -> bool:
    return name == "version" or name.endswith("_version")


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """Attribute name for ``self.X`` assignment targets."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _touched_version_attrs(fn: ast.FunctionDef) -> Set[str]:
    """Version-counter attributes assigned/augmented anywhere in *fn*."""
    touched: Set[str] = set()
    for node in ast.walk(fn):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr = _self_attr_target(target)
            if attr is not None and _is_version_attr(attr):
                touched.add(attr)
    return touched


def _calls_super_record(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "record"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            return True
    return False


def _self_method_calls(fn: ast.FunctionDef) -> Set[str]:
    calls: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            attr = _self_attr_target(node.func)
            if attr is not None:
                calls.add(attr)
    return calls


class _ModelIndex:
    """Project-wide view of the model class hierarchy under ``models/``."""

    def __init__(self, project: Project) -> None:
        #: class name -> (module, ClassDef)
        self.classes: Dict[str, Tuple[ModuleInfo, ast.ClassDef]] = {}
        #: class name -> base-class names
        self.bases: Dict[str, List[str]] = {}
        for module in project.modules_under("models/"):
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    names = []
                    for base in node.bases:
                        if isinstance(base, ast.Name):
                            names.append(base.id)
                        elif isinstance(base, ast.Attribute):
                            names.append(base.attr)
                    self.classes[node.name] = (module, node)
                    self.bases[node.name] = names
        self.model_classes = self._transitive_subclasses(_ROOT_MODEL)

    def _transitive_subclasses(self, root: str) -> Set[str]:
        found = {root}
        changed = True
        while changed:
            changed = False
            for name, bases in self.bases.items():
                if name not in found and any(b in found for b in bases):
                    found.add(name)
                    changed = True
        found.discard(root)
        return found

    def ancestry(self, name: str) -> List[str]:
        """*name* plus its project-local ancestors, nearest first."""
        order: List[str] = []
        queue = [name]
        while queue:
            current = queue.pop(0)
            if current in order or current not in self.classes:
                continue
            order.append(current)
            queue.extend(self.bases.get(current, []))
        return order

    def method(
        self, class_name: str, method_name: str
    ) -> Optional[ast.FunctionDef]:
        entry = self.classes.get(class_name)
        if entry is None:
            return None
        for item in entry[1].body:
            if (
                isinstance(item, ast.FunctionDef)
                and item.name == method_name
            ):
                return item
        return None


class CacheVersionBumpRule(Rule):
    rule_id = "R003"
    title = "record() overrides must keep the cache version coherent"
    scopes = ("models/",)

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        index = _ModelIndex(project)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in index.model_classes:
                continue
            record = index.method(node.name, "record")
            if record is None:
                continue  # inherited record keeps the ancestor's contract
            version_attrs = self._version_attrs(node.name, index)
            if not version_attrs:
                continue  # no versioned cache, nothing to keep coherent
            if self._record_is_coherent(node.name, record, index):
                continue
            attrs = ", ".join(sorted(version_attrs))
            yield module.finding(
                record,
                self.rule_id,
                f"{node.name}.record() never bumps its cache version "
                f"({attrs}) and does not call super().record(); "
                "incremental caches will serve stale scores",
            )

    @staticmethod
    def _version_attrs(name: str, index: _ModelIndex) -> Set[str]:
        attrs: Set[str] = set()
        for ancestor in index.ancestry(name):
            init = index.method(ancestor, "__init__")
            if init is not None:
                attrs |= _touched_version_attrs(init)
        return attrs

    @staticmethod
    def _record_is_coherent(
        name: str, record: ast.FunctionDef, index: _ModelIndex
    ) -> bool:
        if _touched_version_attrs(record):
            return True
        if _calls_super_record(record):
            return True
        # One level of indirection: record() -> self.helper() where the
        # helper bumps the counter (PageRank.record -> add_edge).
        called = _self_method_calls(record)
        for ancestor in index.ancestry(name):
            for method_name in called:
                helper = index.method(ancestor, method_name)
                if helper is not None and _touched_version_attrs(helper):
                    return True
        return False


class BatchParityRegistryRule(Rule):
    rule_id = "R004"
    title = "score_many() overrides must be in the batch-parity registry"
    scopes = ("models/",)

    _REGISTRY_PATH = "core/registry.py"
    _REGISTRY_FN = "default_registry"

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        registered = self._registered_names(project)
        if registered is None:
            return  # no registry module in the scanned tree
        index = _ModelIndex(project)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name == _ROOT_MODEL:
                continue  # the base default, not an override
            if node.name not in index.model_classes:
                continue
            override = index.method(node.name, "score_many")
            if override is None:
                continue
            if node.name in registered:
                continue
            yield module.finding(
                node,
                self.rule_id,
                f"{node.name} overrides score_many() but is not "
                f"registered in {self._REGISTRY_FN}; the batch == scalar "
                "hypothesis gate will never exercise its kernel",
            )

    def _registered_names(
        self, project: Project
    ) -> Optional[Set[str]]:
        registry = project.module(self._REGISTRY_PATH)
        if registry is None:
            return None
        for node in ast.walk(registry.tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == self._REGISTRY_FN
            ):
                return {
                    n.id
                    for n in ast.walk(node)
                    if isinstance(n, ast.Name)
                }
        return None


class PicklableWorldBuilderRule(Rule):
    rule_id = "R005"
    title = "registered world builders must be module-level functions"

    #: registration entry points sharing the pickling contract: the
    #: per-trial table (parallel) and the per-shard table (sharded).
    _TARGETS = ("register_world_builder", "register_shard_world_builder")

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        module_level = self._module_level_names(module.tree)
        nested_defs = self._nested_def_names(module.tree)
        for call, inside_fn in self._target_calls(module.tree):
            builder = self._builder_arg(call)
            if builder is None:
                continue
            if isinstance(builder, ast.Lambda):
                yield module.finding(
                    builder,
                    self.rule_id,
                    "world builders must be module-level functions; a "
                    "lambda does not pickle, so specs naming it "
                    "cannot cross the process boundary",
                )
                continue
            if isinstance(builder, ast.Name):
                if (
                    builder.id in nested_defs
                    and builder.id not in module_level
                ):
                    yield module.finding(
                        builder,
                        self.rule_id,
                        f"world builder {builder.id!r} is a local/closure "
                        "def; move it to module level so it pickles",
                    )
                    continue
            if inside_fn:
                yield module.finding(
                    call,
                    self.rule_id,
                    f"{self._call_name(call)}() called inside a function; "
                    "register at module import time so every pool worker "
                    "sees the same builder table",
                )

    def _target_calls(
        self, tree: ast.Module
    ) -> List[Tuple[ast.Call, bool]]:
        calls: List[Tuple[ast.Call, bool]] = []

        def visit(node: ast.AST, inside_fn: bool) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                inside_fn = True
            if isinstance(node, ast.Call):
                if self._call_name(node) in self._TARGETS:
                    calls.append((node, inside_fn))
            for child in ast.iter_child_nodes(node):
                visit(child, inside_fn)

        visit(tree, False)
        return calls

    @staticmethod
    def _call_name(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return ""

    @staticmethod
    def _builder_arg(call: ast.Call) -> Optional[ast.AST]:
        for kw in call.keywords:
            if kw.arg == "builder":
                return kw.value
        if len(call.args) >= 2:
            return call.args[1]
        return None

    @staticmethod
    def _module_level_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for item in node.names:
                    names.add(item.asname or item.name.split(".")[0])
        return names

    @staticmethod
    def _nested_def_names(tree: ast.Module) -> Set[str]:
        nested: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                for inner in ast.walk(node):
                    if inner is not node and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        nested.add(inner.name)
        return nested
