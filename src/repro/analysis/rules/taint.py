"""Interprocedural taint rules, built on :mod:`repro.analysis.flow`.

R009 — ambient nondeterminism must not reach canonical state.  A value
derived from the global RNGs, a wall-clock read, ``os.urandom``, uuid,
or the iteration order of a ``set`` may not flow into an
``EventStore.append/extend``, a tracer record, a telemetry snapshot,
or a ``ScenarioResult`` field — through any number of calls.  R001
catches the *syntactically visible* uses of banned names in one file;
R009 catches the laundered ones: a helper two calls away that returns
``time.time()`` into something a canonical-bytes path will hash.

R010 — epoch-frozen views are immutable.  ``EventStore.snapshot()``
columns, ``GroupIndex`` slices, and the epoch-start broadcast score
tables are shared, cached, zero-copy state: mutating one corrupts
every other reader *and* the canonical-bytes cache keyed on the store
version.  The rule flags attribute stores, subscript assignment,
augmented assignment, and mutating method calls on frozen values —
including inside helpers that receive a frozen view as a parameter.

R011 — no exception swallowing on resilience and merge paths.  A
``except: pass`` (or a broad handler whose body is inert) in shard
merge, the process-pool fan-out, the store, or the observability layer
turns a crash into silent shard divergence — the one failure mode the
1 == 2 == 8 equality gate cannot localise.  Handlers that re-raise,
return a sentinel, assign state, or call a recorder are fine; handlers
that do nothing (even via an inert helper function) are not.

Grandfathering policy: anything intentionally nondeterministic
(wall-time benchmarking that never feeds canonical bytes) or
intentionally silent (best-effort error forwarding on an already-dying
worker) carries an inline ``# reprolint: disable=...`` with a
justification comment, not a baseline entry.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
)
from repro.analysis.flow import (
    ORDER,
    RNG,
    CallView,
    FlowAnalysis,
    FlowPolicy,
    FunctionInfo,
    SymbolTable,
)
from repro.analysis.rules.determinism import (
    _NUMPY_RANDOM_ALLOWED,
    _RANDOM_ALLOWED,
)

__all__ = [
    "AmbientTaintRule",
    "FrozenViewMutationRule",
    "ReproFlowPolicy",
    "SwallowedExceptionRule",
    "shared_flow",
]


# ---------------------------------------------------------------------------
# The repro-specific policy
# ---------------------------------------------------------------------------

#: exact dotted calls whose result carries RNG taint (ambient state:
#: wall clock, OS entropy, nondeterministic ids).  Includes the perf
#: counters, which R001 deliberately tolerates for benchmarking — here
#: the ban is narrower: their *values* must not reach canonical sinks.
_RNG_EXACT = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "os.getpid",
    }
)

#: EventStore methods that ingest feedback into canonical state
_STORE_SINKS = frozenset({"append", "extend"})

#: recorder facade methods — everything they take lands in a metrics
#: snapshot or the sim-time trace, both canonical-bytes surfaces
_RECORDER_SINKS = frozenset({"count", "gauge", "observe", "event", "span"})

#: classes whose constructed fields are canonical result/telemetry state
_RESULT_CLASSES = frozenset(
    {"ScenarioResult", "TelemetrySnapshot", "TraceEvent"}
)

#: serve-layer classes whose constructed fields enter the ingest log —
#: an Arrival's client tick seeds ingest tick assignment, and an
#: IngestRecord IS a log line; wall-clock must never reach either
_INGEST_CLASSES = frozenset({"Arrival", "IngestRecord"})

#: EventStore accessors returning cached, shared, zero-copy views
_FROZEN_PRODUCERS = frozenset(
    {
        "snapshot",
        "by_target",
        "by_rater",
        "by_pair",
        "by_target_time",
        "by_target_facet",
    }
)

#: receiver types owning the frozen producers / canonical sinks
_STORE_TYPES = frozenset({"EventStore"})
_RECORDER_TYPES = frozenset({"Recorder", "NoOpRecorder"})
_TRACER_TYPES = frozenset({"Tracer"})
_ADMISSION_TYPES = frozenset({"AdmissionController"})


class ReproFlowPolicy(FlowPolicy):
    """Sources, sinks, and frozen state of the repro codebase."""

    mutator_methods = frozenset(
        {
            "append",
            "extend",
            "add",
            "insert",
            "remove",
            "pop",
            "clear",
            "sort",
            "reverse",
            "update",
            "setdefault",
            "discard",
            "fill",
            "resize",
            "setflags",
            "itemset",
        }
    )
    frozen_annotations = frozenset({"ColumnSet", "GroupIndex"})
    #: GroupIndex.rows() returns a zero-copy slice of the index arrays
    frozen_view_methods = frozenset({"rows"})

    def source_kinds(self, cv: CallView) -> FrozenSet[str]:
        dotted = cv.dotted
        if dotted is None:
            return frozenset()
        if dotted in _RNG_EXACT:
            return frozenset({RNG})
        parts = dotted.split(".")
        if parts[0] == "secrets" and len(parts) > 1:
            return frozenset({RNG})
        if (
            parts[0] == "random"
            and len(parts) > 1
            and parts[1] not in _RANDOM_ALLOWED
        ):
            return frozenset({RNG})
        if (
            len(parts) > 2
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] not in _NUMPY_RANDOM_ALLOWED
        ):
            return frozenset({RNG})
        return frozenset()

    def sink_label(self, cv: CallView) -> Optional[str]:
        rtype = cv.receiver_type
        if rtype in _STORE_TYPES and cv.name in _STORE_SINKS:
            return f"EventStore.{cv.name}"
        if rtype in _TRACER_TYPES and cv.name == "emit":
            return "a tracer record"
        if rtype in _RECORDER_TYPES and cv.name in _RECORDER_SINKS:
            return f"a telemetry record (recorder.{cv.name})"
        if rtype in _ADMISSION_TYPES and cv.name == "admit":
            return "ingest tick assignment (AdmissionController.admit)"
        if cv.receiver is None and cv.name in _RESULT_CLASSES:
            return f"{cv.name} fields"
        if cv.receiver is None and cv.name in _INGEST_CLASSES:
            return f"the ingest log ({cv.name} fields)"
        return None

    def attr_store_sink(
        self, base_type: Optional[str], attr: str
    ) -> Optional[str]:
        if base_type in _RESULT_CLASSES:
            return f"{base_type}.{attr}"
        return None

    def is_frozen_producer(self, cv: CallView) -> bool:
        if cv.receiver_type in _STORE_TYPES and cv.name in _FROZEN_PRODUCERS:
            return True
        # Epoch-start broadcast score tables: one list, shared by every
        # shard for the whole epoch (experiments/sharded.py).
        if cv.receiver is not None and cv.name == "epoch_scores":
            return True
        return False

    def call_result_type(self, cv: CallView) -> Optional[str]:
        if cv.receiver is None and cv.name == "get_recorder":
            return "Recorder"
        return None


def shared_flow(project: Project) -> FlowAnalysis:
    """One :class:`FlowAnalysis` per project, shared by R009/R010."""
    cached = project.caches.get("taint.flow")
    if isinstance(cached, FlowAnalysis):
        return cached
    flow = FlowAnalysis(project, ReproFlowPolicy())
    project.caches["taint.flow"] = flow
    return flow


# ---------------------------------------------------------------------------
# R009
# ---------------------------------------------------------------------------

_KIND_LABEL = {
    RNG: "ambient nondeterminism (RNG/wall-clock/entropy)",
    ORDER: "hash-salted set iteration order",
}


class AmbientTaintRule(Rule):
    rule_id = "R009"
    title = "no nondeterministic taint into canonical sinks"
    exempt = ("common/randomness.py",)

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        flow = shared_flow(project)
        for event in flow.taint_events(module):
            kinds = " + ".join(
                _KIND_LABEL[k] for k in sorted(event.kinds)
            )
            where = f" (inside {event.via})" if event.via else ""
            message = (
                f"value tainted by {kinds} reaches {event.sink}{where}; "
                "canonical state must be a pure function of seeds and "
                "sim time — inject a seeded Generator / pass sim time "
                "explicitly, or sort before iterating"
            )
            yield Finding(
                path=module.relpath,
                line=event.lineno,
                col=event.col,
                rule=self.rule_id,
                message=message,
                content=module.line_at(event.lineno).strip(),
            )


# ---------------------------------------------------------------------------
# R010
# ---------------------------------------------------------------------------


class FrozenViewMutationRule(Rule):
    rule_id = "R010"
    title = "no mutation of frozen snapshot/index views"

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        flow = shared_flow(project)
        for event in flow.mutation_events(module):
            message = (
                f"mutation of an epoch-frozen view: {event.what}; "
                "snapshot()/GroupIndex/broadcast-score state is shared "
                "zero-copy across readers and cached by store version — "
                "copy first (np.array(view) / list(view))"
            )
            yield Finding(
                path=module.relpath,
                line=event.lineno,
                col=event.col,
                rule=self.rule_id,
                message=message,
                content=module.line_at(event.lineno).strip(),
            )


# ---------------------------------------------------------------------------
# R011
# ---------------------------------------------------------------------------

#: method names that count as "the handler recorded the failure" even
#: when the callee cannot be resolved (recorder facade, stdlib logging)
_RECORDING_NAMES = frozenset(
    {
        "count",
        "gauge",
        "observe",
        "event",
        "span",
        "record",
        "log",
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "critical",
    }
)

_BROAD = frozenset({"Exception", "BaseException"})


def _inert_functions(table: SymbolTable) -> Set[str]:
    """Qnames of functions that observably do nothing.

    Greatest fixpoint: start from "every project function is inert",
    then repeatedly demote any function whose body contains a
    non-inert statement (assignment, raise, non-constant return,
    call to a demoted or unresolvable function, any compound
    statement).  Unresolvable calls are conservatively non-inert, so
    the surviving set is sound: calling one of these from an exception
    handler is indistinguishable from ``pass``.
    """
    inert: Set[str] = set(table.functions)
    changed = True
    while changed:
        changed = False
        for qname in list(inert):
            info = table.functions[qname]
            if not all(
                _inert_stmt(s, info, table, inert)
                for s in info.node.body
            ):
                inert.discard(qname)
                changed = True
    return inert


def _inert_stmt(
    stmt: ast.stmt,
    info: FunctionInfo,
    table: SymbolTable,
    inert: Set[str],
) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
        return True
    if isinstance(stmt, ast.Return):
        return stmt.value is None or isinstance(stmt.value, ast.Constant)
    if isinstance(stmt, ast.Expr):
        if isinstance(stmt.value, ast.Constant):
            return True
        if isinstance(stmt.value, ast.Call):
            callee = _resolve_simple_call(
                stmt.value, info.module, info.class_name, table
            )
            return callee is not None and callee.qname in inert
    return False


def _resolve_simple_call(
    call: ast.Call,
    module: ModuleInfo,
    class_name: Optional[str],
    table: SymbolTable,
) -> Optional[FunctionInfo]:
    """Resolve ``f(...)`` / ``self.m(...)`` / ``mod.f(...)`` calls."""
    func = call.func
    relpath = module.relpath
    if isinstance(func, ast.Name):
        local = table.function_in_module(relpath, func.id)
        if local is not None:
            return local
        member = table.imported_member(relpath, func.id)
        if member is not None:
            module_path, _, name = member.rpartition(".")
            target = table.module_relpath_for(module_path)
            if target is not None:
                return table.function_in_module(target, name)
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "self" and class_name is not None:
            return table.resolve_method(class_name, func.attr)
        dotted = table.imports.get(relpath, ({}, {}))[0].get(func.value.id)
        if dotted is not None:
            target = table.module_relpath_for(dotted)
            if target is not None:
                return table.function_in_module(target, func.attr)
    return None


class SwallowedExceptionRule(Rule):
    rule_id = "R011"
    title = "no exception swallowing on resilience/merge paths"
    scopes = (
        "faults/",
        "experiments/parallel.py",
        "experiments/sharded.py",
        "store/",
        "obs/",
        "core/selection.py",
        "serve/",
    )

    _MESSAGE = (
        "broad exception handler swallows the error on a "
        "resilience/merge path — a silent failure here diverges shards "
        "without tripping the equality gates; re-raise, return a "
        "sentinel, or record the failure through the recorder"
    )

    def check(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        flow = shared_flow(project)
        table = flow.table
        inert = project.caches.get("taint.inert")
        if not isinstance(inert, set):
            inert = _inert_functions(table)
            project.caches["taint.inert"] = inert
        for handler, class_name in _handlers(module):
            if not self._is_broad(handler):
                continue
            if self._swallows(handler, module, class_name, table, inert):
                yield module.finding(handler, self.rule_id, self._MESSAGE)

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for node in types:
            dotted = dotted_name(node)
            if dotted is not None and dotted.split(".")[-1] in _BROAD:
                return True
        return False

    @staticmethod
    def _swallows(
        handler: ast.ExceptHandler,
        module: ModuleInfo,
        class_name: Optional[str],
        table: SymbolTable,
        inert: Set[str],
    ) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Expr):
                value = stmt.value
                if isinstance(value, ast.Constant):
                    continue
                if isinstance(value, ast.Call):
                    name = ""
                    if isinstance(value.func, ast.Attribute):
                        name = value.func.attr
                    elif isinstance(value.func, ast.Name):
                        name = value.func.id
                    if name in _RECORDING_NAMES:
                        return False  # failure recorded
                    callee = _resolve_simple_call(
                        value, module, class_name, table
                    )
                    if callee is not None and callee.qname in inert:
                        continue  # a do-nothing helper: still swallowed
                    return False  # real work happened
            # raise / return / assignment / compound statement: handled
            return False
        return True


def _handlers(
    module: ModuleInfo,
) -> List[Tuple[ast.ExceptHandler, Optional[str]]]:
    """(handler, enclosing class name) pairs for one module."""
    class_of: Dict[ast.ExceptHandler, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            for child in ast.walk(node):
                if isinstance(child, ast.ExceptHandler):
                    class_of.setdefault(child, node.name)
    return [
        (node, class_of.get(node))
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ExceptHandler)
    ]
