"""Grandfathered-findings baseline.

A baseline file lets the CI gate go strict on day one while known,
not-yet-fixed findings are burned down: entries in the baseline are
subtracted from the report, and everything else fails the build.  The
shipped ``reprolint-baseline.json`` is empty — the tree lints clean —
so any new entry is a deliberate, reviewable act.

Entries match on ``(path, rule, content)`` where *content* is the
stripped source line, so a baseline survives unrelated edits that
shift line numbers; the recorded line is a hint for humans.  Each
entry absorbs exactly one finding, so a second identical violation on
a new line still fails.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.core import Finding

__all__ = ["Baseline", "BaselineError"]

_VERSION = 1


class BaselineError(ValueError):
    """Malformed baseline file."""


_Key = Tuple[str, str, str]


def _key(path: str, rule: str, content: str) -> _Key:
    return (path, rule, content.strip())


@dataclass
class Baseline:
    """Counted (path, rule, content) entries to subtract from a report."""

    entries: "Counter[_Key]"

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=Counter())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: invalid JSON ({exc})") from exc
        if (
            not isinstance(raw, dict)
            or raw.get("version") != _VERSION
            or not isinstance(raw.get("findings"), list)
        ):
            raise BaselineError(
                f"{path}: expected {{'version': {_VERSION}, "
                "'findings': [...]}"
            )
        entries: "Counter[_Key]" = Counter()
        for item in raw["findings"]:
            if not isinstance(item, dict):
                raise BaselineError(f"{path}: non-object finding entry")
            try:
                entries[_key(
                    item["path"], item["rule"], item.get("content", "")
                )] += 1
            except KeyError as exc:
                raise BaselineError(
                    f"{path}: finding entry missing {exc}"
                ) from exc
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries: "Counter[_Key]" = Counter()
        for f in findings:
            entries[_key(f.path, f.rule, f.content)] += 1
        return cls(entries=entries)

    def filter(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], int]:
        """(new findings, number grandfathered).  Order is preserved."""
        remaining = Counter(self.entries)
        fresh: List[Finding] = []
        absorbed = 0
        for finding in findings:
            key = _key(finding.path, finding.rule, finding.content)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                absorbed += 1
            else:
                fresh.append(finding)
        return fresh, absorbed

    def dump(self, findings: List[Finding]) -> str:
        """Serialized baseline for *findings* (sorted, stable)."""
        payload = {
            "version": _VERSION,
            "findings": [
                {
                    "path": f.path,
                    "rule": f.rule,
                    "line": f.line,
                    "content": f.content,
                }
                for f in sorted(findings)
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def write(self, path: Path, findings: List[Finding]) -> None:
        path.write_text(self.dump(findings), encoding="utf-8")

    def __len__(self) -> int:
        return sum(self.entries.values())


def describe_unused(
    baseline: Baseline, findings: List[Finding]
) -> List[Dict[str, str]]:
    """Baseline entries that matched nothing — candidates for deletion."""
    remaining = Counter(baseline.entries)
    for finding in findings:
        key = _key(finding.path, finding.rule, finding.content)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
    return [
        {"path": path, "rule": rule, "content": content}
        for (path, rule, content), count in sorted(remaining.items())
        for _ in range(count)
    ]
