"""Finding reporters: human text and machine JSON.

Both formats render findings in their canonical ``(path, line, col,
rule)`` order — the driver sorts, the reporters never re-order — so a
report is byte-stable for identical trees (the property CI relies on
when diffing the uploaded JSON artifact between runs).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List

from repro.analysis.core import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    findings: List[Finding],
    files_scanned: int,
    grandfathered: int = 0,
) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}"
        for f in findings
    ]
    by_rule = Counter(f.rule for f in findings)
    if findings:
        summary = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s) in {files_scanned} file(s) "
            f"({summary})"
        )
    else:
        lines.append(
            f"reprolint: clean ({files_scanned} file(s) scanned"
            + (
                f", {grandfathered} grandfathered by baseline)"
                if grandfathered
                else ")"
            )
        )
    if grandfathered and findings:
        lines.append(f"{grandfathered} finding(s) grandfathered by baseline")
    return "\n".join(lines) + "\n"


def render_json(
    findings: List[Finding],
    files_scanned: int,
    grandfathered: int = 0,
) -> str:
    by_rule: Dict[str, int] = dict(
        sorted(Counter(f.rule for f in findings).items())
    )
    payload = {
        "files_scanned": files_scanned,
        "grandfathered": grandfathered,
        "total": len(findings),
        "by_rule": by_rule,
        "findings": [f.as_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
