"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

All formats render findings in their canonical ``(path, line, col,
rule)`` order — the driver sorts, the reporters never re-order — so a
report is byte-stable for identical trees (the property CI relies on
when diffing the uploaded JSON artifact between runs).

The SARIF output targets GitHub code scanning: upload it with
``github/codeql-action/upload-sarif`` and findings appear as inline
annotations on the PR diff.  Finding paths are package-relative (the
linter's stability contract), so the run carries an
``originalUriBaseIds`` entry mapping them back under ``src/repro/``.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import Finding, Rule

__all__ = ["render_text", "render_json", "render_sarif"]

#: where package-relative finding paths live in this repository
PACKAGE_ROOT_URI = "src/repro/"

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_VERSION = "2.1.0"


def render_text(
    findings: List[Finding],
    files_scanned: int,
    grandfathered: int = 0,
) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}"
        for f in findings
    ]
    by_rule = Counter(f.rule for f in findings)
    if findings:
        summary = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s) in {files_scanned} file(s) "
            f"({summary})"
        )
    else:
        lines.append(
            f"reprolint: clean ({files_scanned} file(s) scanned"
            + (
                f", {grandfathered} grandfathered by baseline)"
                if grandfathered
                else ")"
            )
        )
    if grandfathered and findings:
        lines.append(f"{grandfathered} finding(s) grandfathered by baseline")
    return "\n".join(lines) + "\n"


def render_json(
    findings: List[Finding],
    files_scanned: int,
    grandfathered: int = 0,
) -> str:
    by_rule: Dict[str, int] = dict(
        sorted(Counter(f.rule for f in findings).items())
    )
    payload = {
        "files_scanned": files_scanned,
        "grandfathered": grandfathered,
        "total": len(findings),
        "by_rule": by_rule,
        "findings": [f.as_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(
    findings: List[Finding],
    files_scanned: int,
    grandfathered: int = 0,
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    """SARIF 2.1.0 log with one run.

    ``rules`` populates ``tool.driver.rules`` so code-scanning UIs can
    show rule titles; rules that produced no finding are listed too —
    the absence of a result under a listed rule is information.
    """
    rule_entries = [
        {
            "id": rule.rule_id,
            "name": rule.title,
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in (rules or [])
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "PACKAGEROOT",
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rule_entries,
                    }
                },
                "originalUriBaseIds": {
                    "PACKAGEROOT": {"uri": PACKAGE_ROOT_URI}
                },
                "results": results,
                "properties": {
                    "filesScanned": files_scanned,
                    "grandfathered": grandfathered,
                },
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
