"""Analysis configuration, with optional ``[tool.reprolint]`` support.

Precedence: CLI flags > ``pyproject.toml`` ``[tool.reprolint]`` >
built-in defaults.  The pyproject layer needs :mod:`tomllib`
(Python 3.11+); on older interpreters it is silently skipped and the
CLI flags/defaults carry the full configuration, so the linter itself
stays dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - version-dependent
    tomllib = None  # type: ignore[assignment]

__all__ = ["AnalysisConfig", "DEFAULT_BASELINE_NAME", "load_pyproject_config"]

DEFAULT_BASELINE_NAME = "reprolint-baseline.json"


@dataclass
class AnalysisConfig:
    """Everything one analysis run needs."""

    paths: List[Path] = field(default_factory=list)
    select: Optional[List[str]] = None
    ignore: List[str] = field(default_factory=list)
    baseline: Optional[Path] = None
    output_format: str = "text"
    output_file: Optional[Path] = None
    write_baseline: bool = False
    #: rewrite the resolved baseline from current findings and exit 0
    #: (unlike write_baseline, falls back to ./reprolint-baseline.json
    #: when no baseline is configured anywhere)
    update_baseline: bool = False


def load_pyproject_config(start: Path) -> dict:
    """``[tool.reprolint]`` from the nearest pyproject.toml at/above
    *start* (empty dict when absent or when tomllib is unavailable)."""
    if tomllib is None:
        return {}
    directory = start if start.is_dir() else start.parent
    for candidate in [directory, *directory.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            try:
                with pyproject.open("rb") as handle:
                    data = tomllib.load(handle)
            except (OSError, tomllib.TOMLDecodeError):
                return {}
            tool = data.get("tool", {})
            section = tool.get("reprolint", {})
            return section if isinstance(section, dict) else {}
    return {}


def resolve_baseline_path(
    explicit: Optional[Path],
    no_baseline: bool,
    pyproject_value: Optional[str],
    cwd: Path,
) -> Optional[Path]:
    """The baseline file to use, or None to run without one.

    Explicit CLI path wins; then pyproject; then the conventional
    ``reprolint-baseline.json`` next to (or above) the working
    directory, when present.
    """
    if no_baseline:
        return None
    if explicit is not None:
        return explicit
    if pyproject_value:
        return cwd / pyproject_value
    for candidate in [cwd, *cwd.parents]:
        conventional = candidate / DEFAULT_BASELINE_NAME
        if conventional.is_file():
            return conventional
    return None
