"""Evaluation metrics for reputation mechanisms."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.common.ids import EntityId


def score_mae(
    estimated: Mapping[EntityId, float],
    truth: Mapping[EntityId, float],
    empty: float = float("nan"),
) -> float:
    """Mean absolute error of estimated scores vs. ground truth.

    Compared over the intersection of keys.  An empty intersection
    returns *empty* — NaN by default, so "the mechanism scored nothing
    we have truth for" can never masquerade as a perfect 0.0 error
    (which is what this function silently reported before).  Callers
    that want the old behaviour pass ``empty=0.0``.
    """
    common = sorted(set(estimated) & set(truth))
    if not common:
        return empty
    return sum(abs(estimated[k] - truth[k]) for k in common) / len(common)


def _ranks(values: Sequence[float]) -> Sequence[float]:
    """Fractional ranks (ties averaged)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def spearman_rho(
    xs: Sequence[float], ys: Sequence[float]
) -> Optional[float]:
    """Spearman rank correlation; None when undefined."""
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    n = len(xs)
    if n < 2:
        return None
    rx = _ranks(xs)
    ry = _ranks(ys)
    mean = (n + 1) / 2.0
    sxx = sum((r - mean) ** 2 for r in rx)
    syy = sum((r - mean) ** 2 for r in ry)
    if sxx <= 0 or syy <= 0:
        return None
    sxy = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    return sxy / (sxx * syy) ** 0.5


def kendall_tau(
    xs: Sequence[float], ys: Sequence[float]
) -> Optional[float]:
    """Kendall's tau-a; None when undefined."""
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    n = len(xs)
    if n < 2:
        return None
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a = (xs[i] - xs[j]) * (ys[i] - ys[j])
            if a > 0:
                concordant += 1
            elif a < 0:
                discordant += 1
    total = n * (n - 1) / 2
    return (concordant - discordant) / total


def top_k_precision(
    estimated: Mapping[EntityId, float],
    truth: Mapping[EntityId, float],
    k: int = 1,
) -> float:
    """Share of the estimated top-k that belongs to the true top-k.

    The selection-relevant slice of ranking quality: a mechanism may
    misorder the tail freely as long as it surfaces the right leaders.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    common = sorted(set(estimated) & set(truth))
    if not common:
        return 0.0
    k = min(k, len(common))
    top_estimated = set(
        sorted(common, key=lambda c: (-estimated[c], c))[:k]
    )
    top_true = set(sorted(common, key=lambda c: (-truth[c], c))[:k])
    return len(top_estimated & top_true) / k


def ranking_quality(
    estimated: Mapping[EntityId, float],
    truth: Mapping[EntityId, float],
) -> Dict[str, Optional[float]]:
    """Spearman/Kendall agreement between a model's scores and truth."""
    common = sorted(set(estimated) & set(truth))
    xs = [estimated[k] for k in common]
    ys = [truth[k] for k in common]
    return {
        "spearman": spearman_rho(xs, ys),
        "kendall": kendall_tau(xs, ys),
        "mae": score_mae(estimated, truth),
        "top1": top_k_precision(estimated, truth, k=1),
    }
