"""Experiment harness: workload generators, metrics, shared drivers.

Benchmarks under ``benchmarks/`` are thin: they call into this package
to build a world, run a mechanism on it, and print the rows/series each
figure or claim requires.  Examples reuse the same pieces.
"""

from repro.experiments.workloads import (
    World,
    make_consumers,
    make_world,
    uniform_preferences,
)
from repro.experiments.metrics import (
    kendall_tau,
    ranking_quality,
    score_mae,
    spearman_rho,
    top_k_precision,
)
from repro.experiments.harness import (
    SelectionOutcome,
    run_selection_experiment,
)
from repro.experiments.parallel import (
    AttackSpec,
    TrialResult,
    TrialRunReport,
    TrialSpec,
    group_sweep,
    jobs_from_env,
    parallel_map,
    register_world_builder,
    run_replications,
    run_sweep,
    run_trial,
    run_trials,
)
from repro.experiments.chaos import (
    ChaosConfig,
    ChaosReport,
    run_chaos_comparison,
    run_chaos_deployment,
)

__all__ = [
    "AttackSpec",
    "ChaosConfig",
    "ChaosReport",
    "SelectionOutcome",
    "TrialResult",
    "TrialRunReport",
    "TrialSpec",
    "World",
    "group_sweep",
    "jobs_from_env",
    "kendall_tau",
    "make_consumers",
    "make_world",
    "parallel_map",
    "ranking_quality",
    "register_world_builder",
    "run_chaos_comparison",
    "run_chaos_deployment",
    "run_replications",
    "run_selection_experiment",
    "run_sweep",
    "run_trial",
    "run_trials",
    "score_mae",
    "spearman_rho",
    "top_k_precision",
    "uniform_preferences",
]
