"""Experiment harness: workload generators, metrics, shared drivers.

Benchmarks under ``benchmarks/`` are thin: they call into this package
to build a world, run a mechanism on it, and print the rows/series each
figure or claim requires.  Examples reuse the same pieces.
"""

from repro.experiments.workloads import (
    World,
    make_consumers,
    make_world,
    uniform_preferences,
)
from repro.experiments.metrics import (
    kendall_tau,
    ranking_quality,
    score_mae,
    spearman_rho,
    top_k_precision,
)
from repro.experiments.harness import (
    SelectionOutcome,
    run_selection_experiment,
)
from repro.experiments.chaos import (
    ChaosConfig,
    ChaosReport,
    run_chaos_comparison,
    run_chaos_deployment,
)

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "SelectionOutcome",
    "World",
    "kendall_tau",
    "make_consumers",
    "make_world",
    "ranking_quality",
    "run_chaos_comparison",
    "run_chaos_deployment",
    "run_selection_experiment",
    "score_mae",
    "spearman_rho",
    "top_k_precision",
    "uniform_preferences",
]
