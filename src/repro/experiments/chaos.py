"""Chaos experiment: selection availability under churn and outages.

Section 4/5 of the survey argues the centralized registry is a single
point of failure while decentralized overlays degrade gracefully under
node churn.  This module turns that prose into a measured comparison:
the *same* seeded :class:`~repro.faults.plan.FaultPlan` (consumer churn,
message loss, registry outage windows, one slow provider) drives three
deployments of the same selection workload:

* ``central-naive`` — consumers query the central QoS registry with no
  resilience at all; during registry outages selection simply fails;
* ``central-resilient`` — the same registry behind a
  :class:`~repro.registry.qos_registry.ResilientQoSClient` (retry with
  backoff, circuit breaker, stale-cache fallback) and a
  :class:`~repro.faults.degradation.StaleRankingFallback` on the
  selection engine: availability survives the outage, but answers are
  stale and confidence-discounted;
* ``pgrid`` — feedback lives on a replicated P-Grid overlay; churn
  takes individual replicas down but routing falls through to siblings.

Reported per deployment: selection availability (overall and inside the
registry-outage windows), how many selections were served degraded,
regret against ground truth, message overhead, and the circuit
breaker's transition history.  Every number is a deterministic function
of the config seed, so two runs produce byte-identical traces — the
property the fault-injection tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ReproError, RoutingError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.records import Feedback
from repro.core.selection import EpsilonGreedyPolicy, SelectionEngine
from repro.experiments.parallel import parallel_map
from repro.experiments.workloads import World, make_world
from repro.faults.degradation import StaleRankingFallback, discounted_score
from repro.faults.plan import (
    ChurnSchedule,
    FaultPlan,
    MessageFaultInjector,
    OutageWindow,
    any_active,
)
from repro.faults.resilience import (
    BreakerBoard,
    RetryPolicy,
    Timeout,
)
from repro.models.base import ReputationModel
from repro.p2p.pgrid import PGrid
from repro.registry.qos_registry import (
    UNAVAILABLE,
    CentralQoSRegistry,
    RegistryError,
    ResilientQoSClient,
)
from repro.registry.uddi import UDDIRegistry
from repro.services.invocation import InvocationEngine
from repro.sim.network import Network

CENTRAL_NAIVE = "central-naive"
CENTRAL_RESILIENT = "central-resilient"
PGRID = "pgrid"
DEPLOYMENTS = (CENTRAL_NAIVE, CENTRAL_RESILIENT, PGRID)

#: Attempt outcome modes recorded in the trace.
MODE_FRESH = "fresh"
MODE_DEGRADED = "degraded"
MODE_UNAVAILABLE = "unavailable"


@dataclass(frozen=True)
class ChaosConfig:
    """Everything that parameterizes one churn comparison."""

    seed: int = 0
    n_peers: int = 24
    n_providers: int = 3
    services_per_provider: int = 2
    rounds: int = 40
    #: registry unavailability windows (start, end) in round time
    registry_outages: Tuple[Tuple[float, float], ...] = (
        (12.0, 20.0),
        (28.0, 33.0),
    )
    #: consumer churn: exponential up/downtime means
    mean_uptime: float = 60.0
    mean_downtime: float = 2.5
    #: probabilistic per-message loss between healthy nodes
    drop_rate: float = 0.02
    #: slow-provider window applied to the truly best service
    slow_window: Tuple[float, float] = (22.0, 26.0)
    slowdown_factor: float = 10.0
    #: invocation time budget (simulated seconds of response_time)
    invocation_timeout: float = 3.0
    #: P-Grid replicas per trie path
    replication: int = 3
    #: circuit breaker recovery probe delay (rounds)
    recovery_timeout: float = 3.0
    registry_id: EntityId = "qos-registry"


def build_fault_plan(
    config: ChaosConfig, nodes: Sequence[EntityId], world: World
) -> FaultPlan:
    """The shared adversity schedule, seeded from the config.

    Deployment-independent by construction: churn windows depend only
    on (seed, node set), registry outages and the slow window are
    explicit, and the message-fault stream is a fresh seeded generator.
    """
    seeds = world.seeds
    churn = ChurnSchedule.generate(
        nodes,
        horizon=float(config.rounds),
        mean_uptime=config.mean_uptime,
        mean_downtime=config.mean_downtime,
        rng=seeds.rng("fault-churn"),
    )
    faults = (
        MessageFaultInjector(
            drop_rate=config.drop_rate, rng=seeds.rng("fault-messages")
        )
        if config.drop_rate > 0
        else None
    )
    slow_start, slow_end = config.slow_window
    return FaultPlan(
        churn=churn,
        message_faults=faults,
        registry_outages={
            config.registry_id: tuple(
                OutageWindow(start, end)
                for start, end in config.registry_outages
            )
        },
        slow_services={
            world.best_service(): (OutageWindow(slow_start, slow_end),)
        },
        slowdown_factor=config.slowdown_factor,
    )


def _mean_rating(feedback: Sequence[Feedback]) -> float:
    return safe_mean([fb.rating for fb in feedback], default=0.5)


class RegistryBackedModel(ReputationModel):
    """Score services by mean rating fetched from the central registry.

    The thinnest possible centralized mechanism — the point here is the
    *transport*, not the aggregation: every score is a live registry
    query through the resilient client, so outages, breaker state, and
    stale fallbacks shape what selection sees.
    """

    name = "registry_mean"

    def __init__(self, client: ResilientQoSClient) -> None:
        self.client = client

    def record(self, feedback: Feedback) -> None:
        self.client.report(feedback, now=feedback.time)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        result = self.client.query(
            perspective or "chaos-consumer", target, now or 0.0
        )
        if result.source == UNAVAILABLE:
            raise RegistryError(
                f"no fresh or stale answer for {target!r}"
            )
        return discounted_score(
            _mean_rating(result.feedback), result.confidence
        )


class PGridBackedModel(ReputationModel):
    """Score services by mean rating looked up on a P-Grid overlay.

    The asking consumer *is* an overlay peer: queries route from its own
    node, so churn on the routing path or the replica set surfaces as
    :class:`~repro.common.errors.RoutingError` — which the selection
    engine's stale fallback absorbs.
    """

    name = "pgrid_mean"

    def __init__(self, grid: PGrid, default_origin: EntityId) -> None:
        self.grid = grid
        self.default_origin = default_origin
        self.reports_lost = 0

    def record(self, feedback: Feedback) -> None:
        try:
            self.grid.insert(feedback.rater, feedback.target, feedback)
        except RoutingError:
            # The rater could not reach any responsible replica; the
            # report is lost exactly as it would be in the field.
            self.reports_lost += 1

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        origin = perspective or self.default_origin
        reports, _ = self.grid.lookup(origin, target, target)
        return _mean_rating(reports)


@dataclass
class ChaosReport:
    """Everything one deployment's chaos run reports."""

    name: str
    attempts: int = 0
    fresh: int = 0
    degraded: int = 0
    unavailable: int = 0
    outage_attempts: int = 0
    outage_fresh: int = 0
    outage_degraded: int = 0
    outage_unavailable: int = 0
    regrets: List[float] = field(default_factory=list)
    messages: int = 0
    messages_dropped: int = 0
    reports_lost: int = 0
    breaker_transitions: List[Tuple[float, str, str]] = field(
        default_factory=list
    )
    #: (round, consumer, chosen, mode) — the determinism fingerprint
    trace: List[Tuple[float, EntityId, Optional[EntityId], str]] = field(
        default_factory=list
    )

    @property
    def available(self) -> int:
        return self.fresh + self.degraded

    @property
    def availability(self) -> float:
        return self.available / self.attempts if self.attempts else 0.0

    @property
    def outage_availability(self) -> float:
        if not self.outage_attempts:
            return 1.0
        return (
            self.outage_fresh + self.outage_degraded
        ) / self.outage_attempts

    @property
    def outage_fresh_availability(self) -> float:
        if not self.outage_attempts:
            return 1.0
        return self.outage_fresh / self.outage_attempts

    @property
    def mean_regret(self) -> float:
        return safe_mean(self.regrets)


def _make_central_engine(
    world: World,
    uddi: UDDIRegistry,
    network: Network,
    config: ChaosConfig,
    resilient: bool,
) -> Tuple[SelectionEngine, ResilientQoSClient, CentralQoSRegistry]:
    registry = CentralQoSRegistry(
        registry_id=config.registry_id, network=network
    )
    if resilient:
        client = ResilientQoSClient(
            registry,
            retry=RetryPolicy(
                max_attempts=3, rng=world.seeds.rng("retry")
            ),
            breakers=BreakerBoard(
                recovery_timeout=config.recovery_timeout
            ),
        )
        fallback: Optional[StaleRankingFallback] = StaleRankingFallback()
    else:
        # The naive baseline: one attempt, no fallback, and a breaker
        # window too large to ever trip — a plain client, in effect.
        client = ResilientQoSClient(
            registry,
            retry=RetryPolicy(max_attempts=1),
            breakers=BreakerBoard(window=10 ** 6, min_calls=10 ** 6),
            cache=None,
        )
        fallback = None
    model = RegistryBackedModel(client)
    engine = SelectionEngine(
        uddi,
        model,
        policy=EpsilonGreedyPolicy(
            epsilon=0.1, rng=world.seeds.rng("policy")
        ),
        fallback=fallback,
    )
    return engine, client, registry


def run_chaos_deployment(
    name: str, config: ChaosConfig = ChaosConfig()
) -> ChaosReport:
    """Run one deployment under the config's fault plan.

    Every deployment rebuilds an identical world and fault plan from the
    same seed, so cross-deployment differences are the architecture's.
    """
    if name not in DEPLOYMENTS:
        raise ValueError(f"unknown deployment {name!r}")
    world = make_world(
        n_providers=config.n_providers,
        services_per_provider=config.services_per_provider,
        n_consumers=config.n_peers,
        seed=config.seed,
    )
    consumer_ids = [c.consumer_id for c in world.consumers]
    plan = build_fault_plan(config, consumer_ids, world)
    network = Network(rng=world.seeds.rng("net"))
    plan.attach(network)
    invoker = InvocationEngine(
        world.taxonomy,
        rng=world.seeds.rng("invocations"),
        fault_plan=plan,
        timeout=Timeout(config.invocation_timeout),
    )
    uddi = UDDIRegistry()
    for service in world.services:
        uddi.publish(service.description)

    registries: List[CentralQoSRegistry] = []
    peers = []
    client: Optional[ResilientQoSClient] = None
    grid: Optional[PGrid] = None
    if name == PGRID:
        grid = PGrid(
            consumer_ids,
            replication=config.replication,
            network=network,
            rng=world.seeds.rng("pgrid"),
        )
        peers = grid.peers()
        model = PGridBackedModel(grid, default_origin=consumer_ids[0])
        engine = SelectionEngine(
            uddi,
            model,
            policy=EpsilonGreedyPolicy(
                epsilon=0.1, rng=world.seeds.rng("policy")
            ),
            fallback=StaleRankingFallback(),
        )
    else:
        engine, client, registry = _make_central_engine(
            world, uddi, network, config, resilient=(name == CENTRAL_RESILIENT)
        )
        registries.append(registry)

    outage_windows = [
        OutageWindow(start, end) for start, end in config.registry_outages
    ]
    best_quality = max(world.true_quality.values())
    report = ChaosReport(name=name)

    for round_index in range(config.rounds):
        t = float(round_index)
        plan.apply(t, network=network, registries=registries, peers=peers)
        in_outage = any_active(outage_windows, t)
        for consumer in world.consumers:
            if plan.node_down(consumer.consumer_id, t):
                continue  # a crashed consumer makes no attempt
            report.attempts += 1
            if in_outage:
                report.outage_attempts += 1
            stale_before = client.stale_queries if client else 0
            degraded_before = engine.degraded_selections
            try:
                chosen = engine.select(
                    world.category, consumer.consumer_id, now=t
                )
            except ReproError:
                chosen = None
            if chosen is None:
                mode = MODE_UNAVAILABLE
                report.unavailable += 1
                if in_outage:
                    report.outage_unavailable += 1
            else:
                used_stale = (
                    client is not None
                    and client.stale_queries > stale_before
                )
                used_fallback = (
                    engine.degraded_selections > degraded_before
                )
                mode = (
                    MODE_DEGRADED
                    if used_stale or used_fallback
                    else MODE_FRESH
                )
                if mode == MODE_DEGRADED:
                    report.degraded += 1
                    if in_outage:
                        report.outage_degraded += 1
                else:
                    report.fresh += 1
                    if in_outage:
                        report.outage_fresh += 1
                report.regrets.append(
                    best_quality - world.true_quality[chosen]
                )
                interaction = invoker.invoke(
                    consumer, world.service(chosen), t
                )
                feedback = consumer.rate(interaction, world.taxonomy)
                engine.model.record(feedback)
            report.trace.append(
                (t, consumer.consumer_id, chosen, mode)
            )

    report.messages = network.stats.total_messages
    report.messages_dropped = network.stats.dropped
    if client is not None:
        report.breaker_transitions = [
            (when, str(frm), str(to))
            for when, frm, to in client.breaker.transitions
        ]
        report.reports_lost = client.reports_lost
    if grid is not None and isinstance(engine.model, PGridBackedModel):
        report.reports_lost = engine.model.reports_lost
    return report


def run_chaos_comparison(
    config: ChaosConfig = ChaosConfig(),
    deployments: Sequence[str] = DEPLOYMENTS,
    max_workers: int = 1,
) -> Dict[str, ChaosReport]:
    """All deployments under the same plan, keyed by deployment name.

    Each deployment rebuilds its own world and fault plan from the
    config seed, so the churn conditions are independent trials: with
    ``max_workers > 1`` they fan out across the process pool in
    :mod:`repro.experiments.parallel` and, by the parallel==serial
    contract, produce byte-identical reports in either mode.
    """
    deployments = list(deployments)
    reports = parallel_map(
        partial(run_chaos_deployment, config=config),
        deployments,
        max_workers=max_workers,
    )
    return dict(zip(deployments, reports))
