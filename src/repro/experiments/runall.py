"""Regenerate every figure/claim table from the command line.

``python -m repro.experiments.runall`` delegates to the benchmark suite
with table printing on and timing off — the one-command path to all of
EXPERIMENTS.md's numbers.  Individual experiments can be selected by
their id: ``python -m repro.experiments.runall F4 C5``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

#: Experiment id -> benchmark file.
EXPERIMENTS = {
    "F1": "test_fig1_scenarios.py",
    "F2": "test_fig2_activities.py",
    "F3": "test_fig3_qos_facets.py",
    "F4": "test_fig4_typology.py",
    "C1": "test_claim_exaggeration.py",
    "C2": "test_claim_monitoring_cost.py",
    "C3": "test_claim_explorer_agents.py",
    "C4": "test_claim_decay.py",
    "C5": "test_claim_unfair_ratings.py",
    "C6": "test_claim_central_vs_decentral.py",
    "C7": "test_claim_provider_reputation.py",
    "C8": "test_claim_personalization.py",
    "C9": "test_claim_pgrid_overhead.py",
    "C10": "test_claim_transitivity.py",
    "C11": "test_claim_whitewash_sybil.py",
    "C12": "test_claim_runtime_selection.py",
    "C13": "test_claim_stale_registry.py",
    "ABL": "test_ablations.py",
}


def benchmark_dir() -> Path:
    """The benchmarks directory relative to the repository root."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "benchmarks"
        if candidate.is_dir():
            return candidate
    raise FileNotFoundError("benchmarks directory not found")


def main(argv: "list[str]") -> int:
    requested = [arg.upper() for arg in argv] or list(EXPERIMENTS)
    unknown = [r for r in requested if r not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}")
        print(f"available: {', '.join(EXPERIMENTS)}")
        return 2
    bench = benchmark_dir()
    targets = [str(bench / EXPERIMENTS[r]) for r in requested]
    command = [
        sys.executable, "-m", "pytest", *targets,
        "-q", "-s", "--benchmark-disable",
    ]
    return subprocess.call(command)


def console_main() -> int:
    """Entry point for the ``repro-experiments`` console script."""
    return main(sys.argv[1:])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
