"""Regenerate every figure/claim table from the command line.

``python -m repro.experiments.runall`` delegates to the benchmark suite
with table printing on and timing off — the one-command path to all of
EXPERIMENTS.md's numbers.  Individual experiments can be selected by
their id: ``python -m repro.experiments.runall F4 C5``.

Experiments are independent pytest invocations, so they fan out across
processes: ``--jobs N`` (or the ``REPRO_JOBS`` environment variable)
dispatches one pytest subprocess per experiment id, at most N at a
time, and the exit code is the *maximum* child exit code — a failure in
any experiment fails the run.  ``REPRO_JOBS`` also switches the
sweep-shaped benchmarks themselves (C5, C6, C14) onto the process pool
in :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache
from pathlib import Path

from repro.experiments.parallel import jobs_from_env

#: Environment variable carrying the trace output directory down to the
#: experiments (see ``run_activities_comparison``); set by ``--trace``.
TRACE_ENV = "REPRO_TRACE_DIR"

#: Experiment id -> benchmark file.
EXPERIMENTS = {
    "F1": "test_fig1_scenarios.py",
    "F2": "test_fig2_activities.py",
    "F3": "test_fig3_qos_facets.py",
    "F4": "test_fig4_typology.py",
    "C1": "test_claim_exaggeration.py",
    "C2": "test_claim_monitoring_cost.py",
    "C3": "test_claim_explorer_agents.py",
    "C4": "test_claim_decay.py",
    "C5": "test_claim_unfair_ratings.py",
    "C6": "test_claim_central_vs_decentral.py",
    "C7": "test_claim_provider_reputation.py",
    "C8": "test_claim_personalization.py",
    "C9": "test_claim_pgrid_overhead.py",
    "C10": "test_claim_transitivity.py",
    "C11": "test_claim_whitewash_sybil.py",
    "C12": "test_claim_runtime_selection.py",
    "C13": "test_claim_stale_registry.py",
    "C14": "test_claim_availability_churn.py",
    "ABL": "test_ablations.py",
}


@lru_cache(maxsize=1)
def benchmark_dir() -> Path:
    """The benchmarks directory relative to the repository root.

    Cached: the filesystem walk answers the same question every call,
    and parallel dispatch asks once per experiment.
    """
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "benchmarks"
        if candidate.is_dir():
            return candidate
    raise FileNotFoundError("benchmarks directory not found")


def _pytest_command(targets: "list[str]") -> "list[str]":
    return [
        sys.executable, "-m", "pytest", *targets,
        "-q", "-s", "--benchmark-disable",
    ]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figure/claim tables from the benchmarks.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="ID",
        help="experiment ids (e.g. F4 C5); all experiments when omitted",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="concurrent pytest invocations "
        "(default: REPRO_JOBS or 1; 1 keeps the single-invocation path)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="export deterministic JSONL traces from trace-aware "
        "experiments into DIR (summarize them with "
        "`python -m repro.obs summarize DIR/*.jsonl`)",
    )
    return parser


def main(argv: "list[str]") -> int:
    args = _parser().parse_args(argv)
    requested = [arg.upper() for arg in args.ids] or list(EXPERIMENTS)
    unknown = [r for r in requested if r not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}")
        print(f"available: {', '.join(EXPERIMENTS)}")
        return 2
    jobs = args.jobs if args.jobs is not None else jobs_from_env(1)
    bench = benchmark_dir()
    env = None
    if args.trace:
        trace_dir = Path(args.trace)
        trace_dir.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        env[TRACE_ENV] = str(trace_dir)
    if jobs <= 1 or len(requested) <= 1:
        targets = [str(bench / EXPERIMENTS[r]) for r in requested]
        return subprocess.call(_pytest_command(targets), env=env)
    # One pytest invocation per experiment, at most *jobs* in flight.
    # Threads only marshal subprocesses, so the GIL is irrelevant here.
    with ThreadPoolExecutor(max_workers=min(jobs, len(requested))) as pool:
        codes = list(
            pool.map(
                lambda r: subprocess.call(
                    _pytest_command([str(bench / EXPERIMENTS[r])]), env=env
                ),
                requested,
            )
        )
    return max(codes)


def console_main() -> int:
    """Entry point for the ``repro-experiments`` console script."""
    return main(sys.argv[1:])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
