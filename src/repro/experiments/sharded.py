"""Sharded single-world execution with epoch-barrier feedback exchange.

:mod:`repro.experiments.parallel` scales *across* worlds: every trial
is independent, so processes never talk.  This module scales *one*
world: consumers are deterministically partitioned over N shard
processes, each shard runs select-invoke-rate rounds on its own sim
kernel for a fixed epoch, and shards exchange feedback only at the
epoch barrier as canonical :class:`~repro.store.EventStore` deltas.
The hard contract mirrors the parallel layer's:

    ``1 shard == 2 shards == 8 shards``, byte for byte.

Four design rules enforce it:

* **Hash partitioning, not enumeration order.**  Consumer *i* lives on
  ``shard_of(shard_consumer_id(i), N)`` — a pure function of the id
  via :func:`repro.p2p.hashing.stable_hash`, so the owner of any agent
  is computable by every process without coordination.  For a
  power-of-two shard count the partition coincides with the P-Grid
  key-space split: ``shard_of(e, 2**d) == int(shard_path(e, d), 2)``.
* **Frozen-score epochs (BSP).**  Rankings inside an epoch use the
  reputation scores broadcast at the epoch start; new feedback is
  buffered in a per-shard delta store and applied only at the barrier.
  No shard ever observes mid-epoch feedback, so results cannot depend
  on which shard produced a row first.
* **Canonical merge order.**  The coordinator merges delta stores in
  shard-index order (a list, never a set), then re-sorts rows by the
  ``(round, consumer index)`` key columns every delta carries.  The
  merged row order — and therefore every interner code and
  ``canonical_bytes()`` — equals what the 1-shard run appends
  directly.
* **Per-consumer RNG streams.**  Each consumer's policy/invocation/
  rating randomness comes from :func:`shard_consumer_streams`, a pure
  function of (world seed, consumer index).  A consumer's trajectory
  given the broadcast scores is identical no matter which shard hosts
  it.

Feedback crossing the barrier is the store row ``(rater, target,
overall rating, int64 tick)``: facet detail and the backing
interaction stay shard-local, so context factors that need the
interaction (e.g. PeerTrust's transaction factor) see the neutral 1.0
on *every* shard count, including 1 — the invariant is preserved by
construction, not by luck.

Telemetry is split so the invariant stays checkable: the canonical
:class:`~repro.obs.trace.TelemetrySnapshot` (epoch spans, row
counters, the coordinator's Figure-2 ledger) never mentions the shard
count, while everything N-dependent — per-shard loads, cross-shard
feedback traffic, exchange-protocol messages, wall time — lives in the
separate :class:`ShardDispatchReport`.
"""

from __future__ import annotations

import multiprocessing as mp
import time as _time
import traceback
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.common.simtime import from_ticks, to_ticks
from repro.core.scenarios import ScenarioResult
from repro.experiments.parallel import picklable
from repro.experiments.workloads import (
    World,
    make_shard_world,
    shard_consumer_id,
    shard_consumer_streams,
)
from repro.obs.ledger import ActivityLedger, merged_ledger_table
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder
from repro.obs.trace import TelemetrySnapshot
from repro.p2p.hashing import stable_hash
from repro.services.invocation import InvocationEngine
from repro.sim.kernel import Simulator
from repro.sim.network import MessageStats, Network, stats_from_snapshot
from repro.store import EventStore

__all__ = [
    "DEFAULT_SHARD_WORLD",
    "SERIAL",
    "PROCESS",
    "ShardDelta",
    "ShardDispatchReport",
    "ShardRuntime",
    "ShardedRunReport",
    "ShardedRunSpec",
    "register_shard_world_builder",
    "run_sharded_experiment",
    "shard_of",
    "shard_world_builder",
]

#: Execution modes reported by :class:`ShardDispatchReport`.
SERIAL = "serial"
PROCESS = "process"

#: The Figure-2 activity shards charge their feedback rows to.
ACTIVITY = "feedback"


def shard_of(entity_id: EntityId, shards: int) -> int:
    """Home shard of *entity_id* under an N-way key-space partition.

    Maps :func:`~repro.p2p.hashing.stable_hash`'s 64-bit output onto
    ``range(shards)`` by range partitioning (multiply-shift), so for
    ``shards == 2**d`` the result is exactly the top *d* hash bits —
    the :func:`~repro.p2p.pgrid.shard_path` subtree prefix.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return 0
    return (stable_hash(str(entity_id), bits=64) * shards) >> 64


# ---------------------------------------------------------------------------
# Shard-world-builder registry
# ---------------------------------------------------------------------------

DEFAULT_SHARD_WORLD = "make_shard_world"

_SHARD_WORLD_BUILDERS: Dict[str, Callable[..., World]] = {
    DEFAULT_SHARD_WORLD: make_shard_world,
}


def register_shard_world_builder(
    name: str, builder: Callable[..., World], overwrite: bool = False
) -> None:
    """Register *builder* under *name* for use in :class:`ShardedRunSpec`.

    Builders must accept ``seed=<int>``, ``consumer_indices=<list>``
    plus the spec's ``world_params`` as keyword arguments and build
    only the requested consumers (the catalog side must not depend on
    which consumers are built — see :func:`make_shard_world`).
    Register at module import time so forked workers see the same
    table.
    """
    if not overwrite and name in _SHARD_WORLD_BUILDERS:
        raise ConfigurationError(f"duplicate shard world builder: {name!r}")
    _SHARD_WORLD_BUILDERS[name] = builder


def shard_world_builder(name: str) -> Callable[..., World]:
    try:
        return _SHARD_WORLD_BUILDERS[name]
    except KeyError:
        raise UnknownEntityError(
            f"unknown shard world builder: {name!r}"
        ) from None


# ---------------------------------------------------------------------------
# Specs and reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedRunSpec:
    """A picklable description of one sharded single-world run.

    The shard count is deliberately *not* part of the spec: the same
    spec run at any N must produce byte-identical canonical output, so
    N is a dispatch argument of :func:`run_sharded_experiment`.
    """

    model: str = "beta"
    seed: int = 0
    epochs: int = 4
    rounds_per_epoch: int = 4
    world: str = DEFAULT_SHARD_WORLD
    world_params: Mapping[str, Any] = field(default_factory=dict)
    round_length: float = 1.0
    epsilon: float = 0.1
    optimality_tolerance: float = 0.02
    telemetry: bool = False
    label: str = "sharded"

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1: {self.epochs}")
        if self.rounds_per_epoch < 1:
            raise ConfigurationError(
                f"rounds_per_epoch must be >= 1: {self.rounds_per_epoch}"
            )
        if self.round_length <= 0:
            raise ConfigurationError(
                f"round_length must be positive: {self.round_length}"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError(
                f"epsilon must be in [0, 1]: {self.epsilon}"
            )

    @property
    def total_rounds(self) -> int:
        return self.epochs * self.rounds_per_epoch

    @property
    def n_consumers(self) -> int:
        return int(dict(self.world_params).get("n_consumers", 20))

    def epoch_start(self, epoch: int) -> float:
        return epoch * self.rounds_per_epoch * self.round_length


@dataclass
class ShardDelta:
    """One shard's buffered output for one epoch.

    ``store`` holds the feedback rows in the shard's local append
    order; ``rounds``/``consumers`` are aligned int64 key columns the
    coordinator lexsorts on to recover the canonical global row order
    (a consumer lives on exactly one shard and files one row per
    round, so the key is unique per row).
    """

    shard: int
    epoch: int
    store: EventStore
    rounds: np.ndarray
    consumers: np.ndarray
    regrets: np.ndarray
    #: tolerance-accurate selections per round of this epoch
    accurate: np.ndarray
    #: feedback rows by home shard of the rated service
    home_counts: np.ndarray

    @property
    def n_rows(self) -> int:
        return int(len(self.regrets))


@dataclass
class ShardDispatchReport:
    """Everything shard-count dependent about one run.

    Kept out of the canonical telemetry so the N-invariance gate can
    compare whole snapshots; ``feedback_stats`` / ``load_imbalance``
    come from the *merged* per-shard network registries
    (:func:`~repro.sim.network.stats_from_snapshot`), so shards whose
    nodes stayed silent still count in the denominator.
    """

    shards: int
    mode: str
    wall_ns: int
    consumers_per_shard: List[int]
    rows_per_shard: List[int]
    #: feedback rows whose rated service homes on a different shard
    cross_shard_rows: int
    #: max/mean feedback rows landing per home shard (merged registries)
    load_imbalance: float
    feedback_stats: MessageStats
    #: coordinator-side barrier protocol traffic (score broadcasts, deltas)
    exchange_stats: MessageStats
    #: merged per-shard Figure-2 ledger (priced once across registries)
    fig2: List[Dict[str, Any]]


@dataclass
class ShardedRunReport:
    """Outcome of :func:`run_sharded_experiment`."""

    spec: ShardedRunSpec
    shards: int
    store: EventStore
    result: ScenarioResult
    final_scores: List[float]
    service_ids: List[EntityId]
    telemetry: Optional[TelemetrySnapshot]
    dispatch: ShardDispatchReport

    def canonical_bytes(self) -> bytes:
        """The invariance gate: identical for every shard count."""
        return self.store.canonical_bytes()


# ---------------------------------------------------------------------------
# Shard runtime (one partition of the world)
# ---------------------------------------------------------------------------


class ShardRuntime:
    """Runs one shard's consumers on a private sim kernel.

    Selection follows the harness's epsilon-greedy discipline against
    the scores frozen at the epoch start; accuracy/regret accounting
    mirrors :class:`~repro.core.scenarios.DirectSelectionScenario`
    (same optimality tolerance, same per-round bookkeeping).
    """

    def __init__(
        self, spec: ShardedRunSpec, shard_index: int, n_shards: int
    ) -> None:
        if not 0 <= shard_index < n_shards:
            raise ConfigurationError(
                f"shard index {shard_index} outside [0, {n_shards})"
            )
        self.spec = spec
        self.shard = shard_index
        self.n_shards = n_shards
        builder = shard_world_builder(spec.world)
        params = dict(spec.world_params)
        n_consumers = int(params.pop("n_consumers", 20))
        self.owned = [
            i
            for i in range(n_consumers)
            if shard_of(shard_consumer_id(i), n_shards) == shard_index
        ]
        self.world = builder(
            seed=spec.seed,
            n_consumers=n_consumers,
            consumer_indices=self.owned,
            **params,
        )
        self.consumers = self.world.consumers
        self._services = list(self.world.services)
        self.service_ids = [svc.service_id for svc in self._services]
        self._n_services = len(self._services)
        self._service_home = [
            shard_of(sid, n_shards) for sid in self.service_ids
        ]
        # Stable truth-cache key per consumer: heterogeneous worlds get
        # one entry per distinct (weights, segment); homogeneous worlds
        # collapse to n_segments entries per round.
        self._truth_keys = [
            (c.segment, tuple(sorted(c.preferences.weights.items())))
            for c in self.consumers
        ]
        self._policy_rngs = []
        self._invokers = []
        for i in self.owned:
            streams = shard_consumer_streams(self.world.seeds, i)
            self._policy_rngs.append(streams.rng("policy"))
            self._invokers.append(
                InvocationEngine(self.world.taxonomy, rng=streams.rng("invoke"))
            )
        self.sim = Simulator(start=0.0)
        # Shard-local accounting: one registry carries both the net.*
        # traffic counters and the fig2.* ledger, snapshotted once at
        # the end and merged by the coordinator.  Registering every
        # shard node up front keeps silent shards in the merged
        # universe (the load-imbalance denominator).
        self.network = Network(base_latency=0.0, jitter=0.0, rng=0)
        for s in range(n_shards):
            self.network.register_node(f"shard-{s}")
        self.ledger = ActivityLedger(self.network.metrics)
        self.ledger.touch(ACTIVITY)
        self._epochs_run = 0

    def run_epoch(self, epoch: int, scores: Sequence[float]) -> ShardDelta:
        """Run one epoch against *scores* and return the buffered delta."""
        spec = self.spec
        if epoch != self._epochs_run:
            raise ConfigurationError(
                f"epoch {epoch} out of order (expected {self._epochs_run})"
            )
        if len(scores) != self._n_services:
            raise ConfigurationError(
                f"expected {self._n_services} scores, got {len(scores)}"
            )
        n_rounds = spec.rounds_per_epoch
        n_own = len(self.owned)
        rows = n_own * n_rounds
        store = EventStore(time_dtype="int64")
        rounds_col = np.empty(rows, dtype=np.int64)
        consumers_col = np.empty(rows, dtype=np.int64)
        regrets = np.empty(rows, dtype=np.float64)
        accurate = np.zeros(n_rounds, dtype=np.int64)
        home_counts = np.zeros(self.n_shards, dtype=np.int64)
        # Scores are frozen for the whole epoch, so the exploit arm is
        # a constant: the harness's (score, id) tie-break, computed once.
        exploit = 0
        if self._n_services:
            exploit = max(
                range(self._n_services),
                key=lambda j: (scores[j], self.service_ids[j]),
            )
        epoch_start = spec.epoch_start(epoch)
        state = {"round": 0, "row": 0}

        def fire_round() -> None:
            r_local = state["round"]
            t = epoch_start + r_local * spec.round_length
            row = state["row"]
            truth: Dict[Any, Tuple[int, List[float]]] = {}
            for k in range(n_own):
                consumer = self.consumers[k]
                rng = self._policy_rngs[k]
                if float(rng.random()) < spec.epsilon:
                    j = int(rng.integers(self._n_services))
                else:
                    j = exploit
                key = self._truth_keys[k]
                cached = truth.get(key)
                if cached is None:
                    weights = consumer.preferences.weights
                    segment = consumer.segment
                    quals = [
                        svc.true_overall(t, weights, segment)
                        for svc in self._services
                    ]
                    best = max(
                        range(self._n_services),
                        key=lambda x: (quals[x], self.service_ids[x]),
                    )
                    cached = (best, quals)
                    truth[key] = cached
                best, quals = cached
                chosen_quality = quals[j]
                optimal_quality = quals[best]
                if (
                    j == best
                    or optimal_quality - chosen_quality
                    <= spec.optimality_tolerance
                ):
                    accurate[r_local] += 1
                interaction = self._invokers[k].invoke(
                    consumer, self._services[j], t
                )
                feedback = consumer.rate(interaction, self.world.taxonomy)
                store.append(
                    feedback.rater,
                    feedback.target,
                    feedback.rating,
                    to_ticks(feedback.time),
                )
                rounds_col[row] = epoch * n_rounds + r_local
                consumers_col[row] = self.owned[k]
                regrets[row] = optimal_quality - chosen_quality
                home_counts[self._service_home[j]] += 1
                row += 1
            state["row"] = row
            state["round"] = r_local + 1

        self.sim.schedule_every(
            spec.round_length,
            fire_round,
            start=epoch_start,
            count=n_rounds,
        )
        self.sim.run(until=epoch_start + n_rounds * spec.round_length)
        if state["row"] != rows:
            raise ConfigurationError(
                f"shard {self.shard} produced {state['row']} rows, "
                f"expected {rows}"
            )
        src = f"shard-{self.shard}"
        for dst in range(self.n_shards):
            self.network.record_traffic(
                src,
                f"shard-{dst}",
                kind="feedback",
                messages=int(home_counts[dst]),
            )
        self.ledger.charge(ACTIVITY, feedback=rows)
        self._epochs_run += 1
        return ShardDelta(
            shard=self.shard,
            epoch=epoch,
            store=store,
            rounds=rounds_col,
            consumers=consumers_col,
            regrets=regrets,
            accurate=accurate,
            home_counts=home_counts,
        )

    def finalize(self) -> Dict[str, Any]:
        """The shard's metrics snapshot (net.* traffic + fig2 ledger)."""
        return self.network.metrics.snapshot()


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class _Coordinator:
    """Owns the reference model, the global store, and all merging."""

    def __init__(self, spec: ShardedRunSpec, shards: int) -> None:
        from repro.core.registry import default_registry

        self.spec = spec
        self.shards = shards
        self.model = default_registry(rng_seed=spec.seed).create(spec.model)
        # Catalog-only build: consumer_indices=[] materializes zero
        # consumers but the identical provider/service side.
        params = dict(spec.world_params)
        params["consumer_indices"] = []
        world = shard_world_builder(spec.world)(seed=spec.seed, **params)
        self.service_ids: List[EntityId] = [
            svc.service_id for svc in world.services
        ]
        self.store = EventStore(time_dtype="int64")
        self._accurate = np.zeros(spec.total_rounds, dtype=np.int64)
        self._regret_chunks: List[np.ndarray] = []
        self._selection_counts: Dict[EntityId, int] = {}
        self._selections = 0
        self._rows_per_shard = [0] * shards
        self._cross_rows = 0
        self.recorder = Recorder() if spec.telemetry else None
        self.ledger = (
            ActivityLedger(self.recorder.registry) if self.recorder else None
        )
        if self.ledger is not None:
            self.ledger.touch(ACTIVITY)
        # Barrier-protocol accounting (N-dependent, dispatch-only).
        self.exchange_net = Network(base_latency=0.0, jitter=0.0, rng=0)
        self.exchange_net.register_node("coordinator")
        for s in range(shards):
            self.exchange_net.register_node(f"shard-{s}")

    def epoch_scores(self, epoch: int) -> List[float]:
        """Scores frozen for *epoch*, broadcast to every shard."""
        scores = self.model.score_many(
            self.service_ids, now=self.spec.epoch_start(epoch)
        )
        for s in range(self.shards):
            self.exchange_net.record_traffic(
                "coordinator",
                f"shard-{s}",
                kind="shard-scores",
                messages=1,
                size=len(scores),
            )
        return scores

    def apply(self, epoch: int, deltas: Sequence[ShardDelta]) -> None:
        """Merge one epoch's shard deltas in canonical order.

        *deltas* arrive as a list in shard-index order; the merged rows
        are then re-sorted by the ``(round, consumer index)`` key so
        the global append order — and every interner code downstream —
        matches the 1-shard run exactly.
        """
        spec = self.spec
        epoch_store = EventStore(time_dtype="int64")
        for delta in deltas:  # shard-index order: the canonical merge
            epoch_store.merge_from(delta.store)
        rounds = np.concatenate([d.rounds for d in deltas])
        consumers = np.concatenate([d.consumers for d in deltas])
        regrets = np.concatenate([d.regrets for d in deltas])
        order = np.lexsort((consumers, rounds))
        cols = epoch_store.snapshot()
        names = np.array(list(epoch_store.entities.values()), dtype=object)
        raters = [str(r) for r in names[cols.rater[order]]]
        targets = [str(t) for t in names[cols.target[order]]]
        values = cols.value[order]
        ticks = cols.time[order]
        self.store.extend(raters, targets, values.tolist(), ticks)
        feedbacks = [
            Feedback(rater=r, target=t, time=from_ticks(tk), rating=v)
            for r, t, v, tk in zip(
                raters, targets, values.tolist(), ticks.tolist()
            )
        ]
        self.model.record_many(feedbacks)
        lo = epoch * spec.rounds_per_epoch
        for delta in deltas:
            self._accurate[lo : lo + spec.rounds_per_epoch] += delta.accurate
            self._rows_per_shard[delta.shard] += delta.n_rows
            self._cross_rows += int(
                delta.home_counts.sum() - delta.home_counts[delta.shard]
            )
            self.exchange_net.record_traffic(
                f"shard-{delta.shard}",
                "coordinator",
                kind="shard-delta",
                messages=1,
                size=delta.n_rows,
            )
        self._regret_chunks.append(regrets[order])
        for target in targets:
            self._selection_counts[target] = (
                self._selection_counts.get(target, 0) + 1
            )
        self._selections += len(raters)
        if self.recorder is not None:
            start = spec.epoch_start(epoch)
            self.recorder.span(
                "sharded.epoch",
                duration=spec.rounds_per_epoch * spec.round_length,
                attrs={"epoch": epoch, "rows": len(raters)},
                time=start,
            )
            self.recorder.advance(spec.epoch_start(epoch + 1))
            self.recorder.count("sharded.rows", len(raters))
        if self.ledger is not None:
            self.ledger.charge(ACTIVITY, feedback=len(raters))

    def finish(
        self,
        mode: str,
        consumers_per_shard: List[int],
        shard_snapshots: List[Dict[str, Any]],
        wall_ns: int,
    ) -> ShardedRunReport:
        spec = self.spec
        n_consumers = spec.n_consumers
        regrets = (
            np.concatenate(self._regret_chunks)
            if self._regret_chunks
            else np.empty(0, dtype=np.float64)
        )
        optimal = int(self._accurate.sum())
        result = ScenarioResult(
            rounds=spec.total_rounds,
            selections=self._selections,
            optimal_selections=optimal,
            regrets=[float(r) for r in regrets],
            round_accuracy=[
                count / n_consumers if n_consumers else 0.0
                for count in self._accurate.tolist()
            ],
            selection_counts=dict(self._selection_counts),
        )
        final_scores = self.model.score_many(
            self.service_ids, now=spec.total_rounds * spec.round_length
        )
        telemetry = None
        if self.recorder is not None:
            telemetry = TelemetrySnapshot.capture(
                self.recorder.tracer,
                self.recorder.registry,
                meta={
                    "kind": "sharded",
                    "label": spec.label,
                    "model": spec.model,
                    "seed": spec.seed,
                    "epochs": spec.epochs,
                    "rounds_per_epoch": spec.rounds_per_epoch,
                    "world": spec.world,
                },
            )
        merged = MetricsRegistry.merge_snapshots(shard_snapshots)
        feedback_stats = stats_from_snapshot(merged)
        dispatch = ShardDispatchReport(
            shards=self.shards,
            mode=mode,
            wall_ns=wall_ns,
            consumers_per_shard=consumers_per_shard,
            rows_per_shard=list(self._rows_per_shard),
            cross_shard_rows=self._cross_rows,
            load_imbalance=feedback_stats.load_imbalance(),
            feedback_stats=feedback_stats,
            exchange_stats=self.exchange_net.stats,
            fig2=merged_ledger_table(shard_snapshots),
        )
        return ShardedRunReport(
            spec=spec,
            shards=self.shards,
            store=self.store,
            result=result,
            final_scores=list(final_scores),
            service_ids=list(self.service_ids),
            telemetry=telemetry,
            dispatch=dispatch,
        )


# ---------------------------------------------------------------------------
# Worker protocol
# ---------------------------------------------------------------------------


def _worker_main(
    conn: Any, spec: ShardedRunSpec, shard_index: int, n_shards: int
) -> None:
    """One shard process: build once, then serve epochs over the pipe."""
    try:
        runtime = ShardRuntime(spec, shard_index, n_shards)
        conn.send(("ready", len(runtime.owned)))
        while True:
            message = conn.recv()
            command = message[0]
            if command == "epoch":
                conn.send(("delta", runtime.run_epoch(message[1], message[2])))
            elif command == "stats":
                conn.send(("stats", runtime.finalize()))
            elif command == "stop":
                return
            else:
                raise ConfigurationError(f"unknown command: {command!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        # Grandfathered: best-effort error forwarding on an already-dying
        # worker.  If the pipe itself is gone there is nobody left to
        # tell; the coordinator sees the broken pipe and raises anyway.
        except Exception:  # reprolint: disable=R011
            pass
    finally:
        conn.close()


def _expect(conn: Any, tag: str) -> Any:
    message = conn.recv()
    if message[0] == "error":
        raise RuntimeError(f"shard worker failed:\n{message[1]}")
    if message[0] != tag:
        raise RuntimeError(
            f"protocol error: expected {tag!r}, got {message[0]!r}"
        )
    return message[1]


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_sharded_experiment(
    spec: ShardedRunSpec,
    shards: int = 1,
    mode: Optional[str] = None,
) -> ShardedRunReport:
    """Run *spec* partitioned over *shards*, canonical at any N.

    Args:
        shards: number of partitions (and worker processes in
            ``process`` mode).
        mode: ``None`` picks processes when ``shards > 1`` and the
            spec/builder survive a pickling pre-check, else falls back
            to an in-process loop over the same :class:`ShardRuntime`
            (identical results by construction).  ``"serial"`` forces
            the loop; ``"process"`` insists and raises when the spec
            cannot cross a process boundary.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if mode not in (None, SERIAL, PROCESS):
        raise ConfigurationError(f"unknown mode: {mode!r}")
    builder = shard_world_builder(spec.world)
    can_pickle = picklable(spec, builder)
    if mode == PROCESS and not can_pickle:
        raise ConfigurationError(
            "process mode requires a picklable spec and a module-level "
            "world builder"
        )
    use_pool = shards > 1 and mode != SERIAL and can_pickle
    coordinator = _Coordinator(spec, shards)
    start_ns = _time.perf_counter_ns()
    if use_pool:
        consumers_per_shard, shard_snapshots = _run_process(
            spec, shards, coordinator
        )
        mode_used = PROCESS
    else:
        consumers_per_shard, shard_snapshots = _run_serial(
            spec, shards, coordinator
        )
        mode_used = SERIAL
    wall_ns = _time.perf_counter_ns() - start_ns
    return coordinator.finish(
        mode_used, consumers_per_shard, shard_snapshots, wall_ns
    )


def _run_serial(
    spec: ShardedRunSpec, shards: int, coordinator: _Coordinator
) -> Tuple[List[int], List[Dict[str, Any]]]:
    runtimes = [ShardRuntime(spec, s, shards) for s in range(shards)]
    for epoch in range(spec.epochs):
        scores = coordinator.epoch_scores(epoch)
        deltas = [runtime.run_epoch(epoch, scores) for runtime in runtimes]
        coordinator.apply(epoch, deltas)
    return (
        [len(runtime.owned) for runtime in runtimes],
        [runtime.finalize() for runtime in runtimes],
    )


def _run_process(
    spec: ShardedRunSpec, shards: int, coordinator: _Coordinator
) -> Tuple[List[int], List[Dict[str, Any]]]:
    processes: List[mp.Process] = []
    conns: List[Any] = []
    try:
        for s in range(shards):
            parent, child = mp.Pipe()
            process = mp.Process(
                target=_worker_main,
                args=(child, spec, s, shards),
                daemon=True,
            )
            process.start()
            child.close()
            processes.append(process)
            conns.append(parent)
        consumers_per_shard = [_expect(conn, "ready") for conn in conns]
        for epoch in range(spec.epochs):
            scores = coordinator.epoch_scores(epoch)
            for conn in conns:
                conn.send(("epoch", epoch, scores))
            # Receiving in shard order is deadlock-free: every worker
            # computes independently and blocks only on its own pipe.
            deltas = [_expect(conn, "delta") for conn in conns]
            coordinator.apply(epoch, deltas)
        for conn in conns:
            conn.send(("stats",))
        shard_snapshots = [_expect(conn, "stats") for conn in conns]
        for conn in conns:
            conn.send(("stop",))
        return consumers_per_shard, shard_snapshots
    finally:
        for conn in conns:
            conn.close()
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
