"""The Figure 2 activities model as a head-to-head experiment (F2).

Five ways QoS information can drive selection, matching the paths
through the paper's Figure 2:

* ``advertised``   — trust the provider's published QoS claims;
* ``sla``          — claims, corrected by third-party-verified SLA
  violations (negotiation and supervision cost money);
* ``sensors``      — one sensor per service reporting to the central
  node (accurate for observable metrics, very costly at scale);
* ``central_monitor`` — the central node probes services itself
  (no sensors, but the probing burden lands on one node);
* ``feedback``     — consumers' reports to a central QoS registry (the
  trust-and-reputation approach the paper advocates).

All approaches run the same workload; the report carries selection
quality plus the cost decomposition the paper argues about.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.core.selection import EpsilonGreedyPolicy
from repro.experiments.workloads import World, make_world
from repro.models.base import ScoredTarget
from repro.models.beta import BetaReputation

# The cost model lives in the obs ledger now (one source of truth for
# ApproachReport, traces, and `python -m repro.obs summarize`); the
# historical names stay importable from here.
from repro.obs.ledger import (
    MESSAGE_COST,
    NEGOTIATION_COST,
    PROBE_COST,
    SENSOR_COST,
    ActivityLedger,
)
from repro.obs.recorder import Recorder, get_recorder, use_recorder
from repro.obs.trace import dump_jsonl
from repro.services.invocation import InvocationEngine
from repro.services.monitoring import SensorDeployment, ThirdPartyMonitor
from repro.services.sla import SLAMonitor, negotiate_sla

__all__ = [
    "SENSOR_COST",
    "PROBE_COST",
    "MESSAGE_COST",
    "NEGOTIATION_COST",
    "ApproachReport",
    "APPROACHES",
    "run_activities_comparison",
]


def _charge_ledger(activity: str, **drivers: int) -> None:
    """Charge Figure-2 cost drivers to the ambient recorder, if live."""
    rec = get_recorder()
    if rec.enabled:
        ledger = ActivityLedger(rec.registry)
        ledger.touch(activity)
        ledger.charge(activity, **drivers)


@dataclass
class ApproachReport:
    """One Figure-2 approach's outcome on the common workload."""

    name: str
    accuracy: float
    mean_regret: float
    setup_cost: float
    running_cost: float
    central_probe_load: int
    messages: int

    @property
    def total_cost(self) -> float:
        return self.setup_cost + self.running_cost


def _run_loop(
    world: World,
    score_candidates: Callable[[EntityId, float], List[ScoredTarget]],
    on_interaction: Callable,
    rounds: int,
    tolerance: float = 0.02,
) -> Dict[str, float]:
    """Common selection loop: returns accuracy/regret + selections."""
    engine = InvocationEngine(world.taxonomy, rng=world.seeds.rng("invoke"))
    policy = EpsilonGreedyPolicy(epsilon=0.1, rng=world.seeds.rng("policy"))
    services = {s.service_id: s for s in world.services}
    optimal_hits = 0
    selections = 0
    regrets: List[float] = []
    time = 0.0
    for _ in range(rounds):
        for consumer in world.consumers:
            ranking = score_candidates(consumer.consumer_id, time)
            chosen = policy.choose(ranking)
            truth = {
                sid: svc.true_overall(
                    time, consumer.preferences.weights, consumer.segment
                )
                for sid, svc in services.items()
            }
            best_quality = max(truth.values())
            regret = best_quality - truth[chosen]
            regrets.append(regret)
            selections += 1
            if regret <= tolerance:
                optimal_hits += 1
            interaction = engine.invoke(consumer, services[chosen], time)
            on_interaction(consumer, interaction, time)
        time += 1.0
    return {
        "accuracy": optimal_hits / selections if selections else 0.0,
        "regret": safe_mean(regrets),
        "selections": selections,
        "invocations": engine.invocation_count,
    }


def _ranked(scores: Dict[EntityId, float]) -> List[ScoredTarget]:
    ranking = [ScoredTarget(sid, score) for sid, score in scores.items()]
    ranking.sort(key=lambda st: (-st.score, st.target))
    return ranking


def run_advertised(world: World, rounds: int) -> ApproachReport:
    """Select by the provider's claims alone."""
    claims: Dict[EntityId, float] = {}
    for provider in world.providers:
        for service in provider.services:
            ad = provider.advertisement_for(service.service_id)
            claims[service.service_id] = safe_mean(
                ad.claimed.values(), default=0.5
            )

    stats = _run_loop(
        world,
        lambda consumer, time: _ranked(claims),
        lambda c, i, t: None,
        rounds,
    )
    _charge_ledger("advertised")
    return ApproachReport(
        name="advertised",
        accuracy=stats["accuracy"],
        mean_regret=stats["regret"],
        setup_cost=0.0,
        running_cost=0.0,
        central_probe_load=0,
        messages=0,
    )


def run_sla(world: World, rounds: int) -> ApproachReport:
    """Claims corrected by third-party-verified SLA violations."""
    monitor = SLAMonitor(world.taxonomy)
    claims: Dict[EntityId, Dict[str, float]] = {}
    for provider in world.providers:
        for service in provider.services:
            ad = provider.advertisement_for(service.service_id)
            claims[service.service_id] = dict(ad.claimed)
    # Every consumer negotiates with every service up front.
    negotiations = 0
    for consumer in world.consumers:
        for sid, claimed in claims.items():
            monitor.register(
                negotiate_sla(
                    consumer.consumer_id, sid, claimed,
                    negotiation_cost=NEGOTIATION_COST,
                )
            )
            negotiations += 1
    violation_counts: Dict[EntityId, int] = {}
    check_counts: Dict[EntityId, int] = {}

    def scores(consumer: EntityId, time: float) -> List[ScoredTarget]:
        values = {}
        for sid, claimed in claims.items():
            base = safe_mean(claimed.values(), default=0.5)
            checks = check_counts.get(sid, 0)
            if checks:
                rate = violation_counts.get(sid, 0) / checks
                base = base * (1.0 - rate)
            values[sid] = base
        return _ranked(values)

    def observe(consumer, interaction, time) -> None:
        violations = monitor.check(interaction)
        check_counts[interaction.service] = (
            check_counts.get(interaction.service, 0) + 1
        )
        if violations:
            violation_counts[interaction.service] = (
                violation_counts.get(interaction.service, 0) + 1
            )

    stats = _run_loop(world, scores, observe, rounds)
    _charge_ledger("sla", negotiations=negotiations, checks=monitor.checks)
    return ApproachReport(
        name="sla",
        accuracy=stats["accuracy"],
        mean_regret=stats["regret"],
        setup_cost=monitor.total_negotiation_cost,
        running_cost=monitor.checks * MESSAGE_COST,
        central_probe_load=0,
        messages=monitor.checks,
    )


def run_sensors(world: World, rounds: int) -> ApproachReport:
    """One sensor per service, probing every round."""
    engine = InvocationEngine(world.taxonomy, rng=world.seeds.rng("sensors"))
    sensors = SensorDeployment(engine)
    for service in world.services:
        sensors.deploy(service)

    def scores(consumer: EntityId, time: float) -> List[ScoredTarget]:
        values = {}
        for service in world.services:
            report = sensors.report_for(service.service_id)
            values[service.service_id] = (
                report.overall() if report and report.samples else 0.5
            )
        return _ranked(values)

    def per_round_probe(time: float) -> None:
        sensors.probe_all(world.services, time)

    # Interleave probing with the selection loop via a wrapper.
    probed_rounds = []

    def observe(consumer, interaction, time) -> None:
        if time not in probed_rounds:
            probed_rounds.append(time)
            per_round_probe(time)

    stats = _run_loop(world, scores, observe, rounds)
    _charge_ledger(
        "sensors",
        sensors=sensors.sensors_deployed,
        probes=sensors.probe_count,
        reports=sensors.report_messages,
    )
    return ApproachReport(
        name="sensors",
        accuracy=stats["accuracy"],
        mean_regret=stats["regret"],
        setup_cost=sensors.sensors_deployed * SENSOR_COST,
        running_cost=(
            sensors.probe_count * PROBE_COST
            + sensors.report_messages * MESSAGE_COST
        ),
        central_probe_load=0,
        messages=sensors.report_messages,
    )


def run_central_monitor(world: World, rounds: int) -> ApproachReport:
    """The central node probes every service itself each round."""
    engine = InvocationEngine(world.taxonomy, rng=world.seeds.rng("monitor"))
    monitor = ThirdPartyMonitor(engine)

    def scores(consumer: EntityId, time: float) -> List[ScoredTarget]:
        values = {}
        for service in world.services:
            report = monitor.report_for(service.service_id)
            values[service.service_id] = (
                report.overall() if report and report.samples else 0.5
            )
        return _ranked(values)

    swept = []

    def observe(consumer, interaction, time) -> None:
        if time not in swept:
            swept.append(time)
            monitor.sweep(world.services, time)

    stats = _run_loop(world, scores, observe, rounds)
    _charge_ledger("central_monitor", probes=monitor.probe_count)
    return ApproachReport(
        name="central_monitor",
        accuracy=stats["accuracy"],
        mean_regret=stats["regret"],
        setup_cost=0.0,
        running_cost=monitor.probe_count * PROBE_COST,
        central_probe_load=monitor.probe_count,
        messages=0,
    )


def run_feedback(world: World, rounds: int) -> ApproachReport:
    """Consumer feedback into a central QoS registry (reputation)."""
    model = BetaReputation()
    reports = 0

    def scores(consumer: EntityId, time: float) -> List[ScoredTarget]:
        return model.rank(
            [s.service_id for s in world.services], consumer, now=time
        )

    def observe(consumer, interaction, time) -> None:
        nonlocal reports
        feedback = consumer.rate(interaction, world.taxonomy)
        model.record(feedback)
        reports += 1

    stats = _run_loop(world, scores, observe, rounds)
    _charge_ledger("feedback", feedback=reports)
    return ApproachReport(
        name="feedback",
        accuracy=stats["accuracy"],
        mean_regret=stats["regret"],
        setup_cost=0.0,
        running_cost=reports * MESSAGE_COST,
        central_probe_load=0,
        messages=reports,
    )


APPROACHES: Dict[str, Callable[[World, int], ApproachReport]] = {
    "advertised": run_advertised,
    "sla": run_sla,
    "sensors": run_sensors,
    "central_monitor": run_central_monitor,
    "feedback": run_feedback,
}


def run_activities_comparison(
    n_providers: int = 5,
    services_per_provider: int = 2,
    n_consumers: int = 20,
    rounds: int = 25,
    exaggeration: float = 0.25,
    seed: int = 0,
    approaches: Optional[List[str]] = None,
    recorder: Optional[Recorder] = None,
    trace_dir: Optional[str] = None,
) -> List[ApproachReport]:
    """Run every Figure-2 approach on an identical (re-seeded) world.

    Honest and exaggerating providers alternate so the advertised-QoS
    path has something to be wrong about.

    Telemetry: pass a live :class:`Recorder` (or set the
    ``REPRO_TRACE_DIR`` environment variable / *trace_dir*) and every
    approach's Figure-2 cost drivers land in the ``fig2.*`` ledger; with
    a trace directory the snapshot is exported as a canonical JSONL file
    named after the run parameters, ready for
    ``python -m repro.obs summarize``.
    """
    names = approaches or list(APPROACHES)
    trace_path: Optional[str] = None
    if recorder is None:
        if trace_dir is None:
            trace_dir = os.environ.get("REPRO_TRACE_DIR") or None
        if trace_dir:
            recorder = Recorder()
            os.makedirs(trace_dir, exist_ok=True)
            trace_path = os.path.join(
                trace_dir,
                f"fig2_activities_s{seed}"
                f"_p{n_providers}x{services_per_provider}"
                f"_c{n_consumers}_r{rounds}.jsonl",
            )
    reports = []
    for name in names:
        world = make_world(
            n_providers=n_providers,
            services_per_provider=services_per_provider,
            n_consumers=n_consumers,
            seed=seed,
            exaggerations=[0.0, exaggeration],
            quality_spread=0.3,
        )
        if recorder is not None:
            with use_recorder(recorder):
                reports.append(APPROACHES[name](world, rounds))
        else:
            reports.append(APPROACHES[name](world, rounds))
    if trace_path is not None and recorder is not None:
        dump_jsonl(
            recorder.snapshot(
                meta={
                    "experiment": "fig2_activities",
                    "seed": seed,
                    "n_providers": n_providers,
                    "services_per_provider": services_per_provider,
                    "n_consumers": n_consumers,
                    "rounds": rounds,
                    "approaches": ",".join(names),
                }
            ),
            trace_path,
        )
    return reports
