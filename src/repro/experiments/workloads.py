"""Workload generators: provider/service/consumer populations.

Every experiment builds its world through :func:`make_world` so that
populations are comparable across benchmarks and fully determined by a
seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.ids import EntityId, IdFactory
from repro.common.randomness import SeedSequenceFactory
from repro.services.consumer import Consumer, PreferenceProfile
from repro.services.description import ServiceDescription
from repro.services.provider import (
    ExaggerationPolicy,
    Provider,
    QualityBehavior,
    Service,
    StaticBehavior,
)
from repro.services.qos import (
    DEFAULT_METRICS,
    QoSProfile,
    QoSTaxonomy,
    random_profile,
)


def uniform_preferences(taxonomy: QoSTaxonomy, segment: int = 0) -> PreferenceProfile:
    """Equal weight on every metric of *taxonomy*."""
    return PreferenceProfile.uniform(taxonomy.names(), segment=segment)


@dataclass
class World:
    """One generated experiment world."""

    taxonomy: QoSTaxonomy
    providers: List[Provider]
    services: List[Service]
    consumers: List[Consumer]
    category: str
    seeds: SeedSequenceFactory
    #: ground-truth base quality per service (uniform weights, segment 0)
    true_quality: Dict[EntityId, float] = field(default_factory=dict)

    def best_service(self) -> EntityId:
        return max(self.true_quality, key=lambda s: (self.true_quality[s], s))

    def service(self, service_id: EntityId) -> Service:
        for svc in self.services:
            if svc.service_id == service_id:
                return svc
        raise KeyError(service_id)


def make_consumers(
    count: int,
    taxonomy: QoSTaxonomy,
    seeds: SeedSequenceFactory,
    n_segments: int = 1,
    preference_heterogeneity: float = 0.0,
    rating_noise: float = 0.02,
    id_prefix: str = "consumer",
) -> List[Consumer]:
    """A consumer population.

    Args:
        n_segments: taste segments, assigned round-robin.
        preference_heterogeneity: 0 gives everyone uniform weights; 1
            gives fully random per-consumer weights (mixing linearly in
            between).
    """
    rng = seeds.rng("consumers")
    metrics = taxonomy.names()
    consumers: List[Consumer] = []
    for i in range(count):
        segment = i % max(1, n_segments)
        if preference_heterogeneity <= 0:
            weights = {m: 1.0 for m in metrics}
        else:
            base = 1.0 - preference_heterogeneity
            weights = {
                m: base + preference_heterogeneity * float(rng.random())
                for m in metrics
            }
        consumers.append(
            Consumer(
                consumer_id=f"{id_prefix}-{i:04d}",
                preferences=PreferenceProfile(weights, segment=segment),
                rating_noise=rating_noise,
                rng=seeds.rng(f"consumer-{i}"),
            )
        )
    return consumers


def _make_catalog(
    n_providers: int,
    services_per_provider: int,
    seeds: SeedSequenceFactory,
    taxonomy: QoSTaxonomy,
    category: str,
    n_segments: int,
    segment_spread: float,
    exaggerations: Optional[Sequence[float]],
    behaviors: Optional[Dict[int, QualityBehavior]],
    quality_spread: float,
    noise: float,
) -> "tuple[List[Provider], List[Service], Dict[EntityId, float]]":
    """The provider/service side of a world (shared by both builders)."""
    ids = IdFactory()
    rng = seeds.rng("world")
    providers: List[Provider] = []
    services: List[Service] = []
    true_quality: Dict[EntityId, float] = {}
    behaviors = behaviors or {}
    service_index = 0
    for p in range(n_providers):
        tendency = 0.5 + quality_spread * (
            2.0 * (p / max(1, n_providers - 1)) - 1.0
        ) if n_providers > 1 else 0.5
        tendency = min(0.95, max(0.05, tendency))
        inflation = 0.0
        if exaggerations:
            inflation = exaggerations[p % len(exaggerations)]
        provider = Provider(
            provider_id=ids.next("provider"),
            exaggeration=ExaggerationPolicy(inflation=inflation),
            quality_tendency=tendency,
        )
        for _ in range(services_per_provider):
            service_id = ids.next("svc")
            profile = random_profile(
                taxonomy,
                rng=rng,
                mean_quality=tendency,
                spread=0.08,
                noise=noise,
                n_segments=n_segments if segment_spread > 0 else 0,
                segment_spread=segment_spread,
            )
            behavior = behaviors.get(service_index, StaticBehavior())
            service = Service(
                description=ServiceDescription(
                    service=service_id,
                    provider=provider.provider_id,
                    category=category,
                ),
                profile=profile,
                behavior=behavior,
            )
            provider.add_service(service)
            services.append(service)
            true_quality[service_id] = profile.overall()
            service_index += 1
        providers.append(provider)
    return providers, services, true_quality


def make_world(
    n_providers: int = 5,
    services_per_provider: int = 2,
    n_consumers: int = 20,
    seed: int = 0,
    taxonomy: Optional[QoSTaxonomy] = None,
    category: str = "weather_report",
    n_segments: int = 1,
    preference_heterogeneity: float = 0.0,
    segment_spread: float = 0.0,
    exaggerations: Optional[Sequence[float]] = None,
    behaviors: Optional[Dict[int, QualityBehavior]] = None,
    quality_spread: float = 0.25,
    noise: float = 0.05,
) -> World:
    """Generate a fully-seeded experiment world.

    Args:
        exaggerations: per-provider advertisement inflation (cycled).
        behaviors: map from service index (in creation order) to a
            quality behaviour; others stay static.
        quality_spread: how far provider quality tendencies span around
            0.5 (larger = easier discrimination task).
        segment_spread: per-segment offsets on subjective metrics
            (needed for personalization experiments).
    """
    taxonomy = taxonomy or DEFAULT_METRICS
    seeds = SeedSequenceFactory(seed)
    providers, services, true_quality = _make_catalog(
        n_providers,
        services_per_provider,
        seeds,
        taxonomy,
        category,
        n_segments,
        segment_spread,
        exaggerations,
        behaviors,
        quality_spread,
        noise,
    )
    consumers = make_consumers(
        n_consumers,
        taxonomy,
        seeds,
        n_segments=n_segments,
        preference_heterogeneity=preference_heterogeneity,
    )
    return World(
        taxonomy=taxonomy,
        providers=providers,
        services=services,
        consumers=consumers,
        category=category,
        seeds=seeds,
        true_quality=true_quality,
    )


def shard_consumer_id(index: int, id_prefix: str = "consumer") -> str:
    """Consumer id as a pure function of the global consumer index.

    The sharded runner partitions by hashing ids, so ids must be
    computable without building the consumers (seven digits: room for
    the 10^6-agent local target without changing widths).
    """
    return f"{id_prefix}-{index:07d}"


def shard_consumer_streams(
    seeds: SeedSequenceFactory, index: int
) -> SeedSequenceFactory:
    """Consumer *index*'s private seed factory.

    Derived through the stateless :meth:`SeedSequenceFactory.spawn`, so
    it is a pure function of (root entropy, index) — any shard can
    rebuild any consumer's streams without replaying anyone else's
    draws.  Sub-streams by label: ``weights``, ``rating`` (used by the
    builder), ``policy``, ``invoke`` (used by the shard runtime).
    """
    return SeedSequenceFactory(seeds.spawn(f"shard-consumer/{index}"))


def make_shard_consumers(
    count: int,
    taxonomy: QoSTaxonomy,
    seeds: SeedSequenceFactory,
    n_segments: int = 1,
    preference_heterogeneity: float = 0.0,
    rating_noise: float = 0.02,
    id_prefix: str = "consumer",
    indices: Optional[Sequence[int]] = None,
) -> List[Consumer]:
    """A partition-independent consumer population.

    :func:`make_consumers` draws heterogeneous weights from one shared
    stream, so consumer *i*'s identity depends on consumers ``0..i-1``
    having been built first — building a shard's subset would change
    everyone's draws.  Here every consumer is built purely from its own
    :func:`shard_consumer_streams` factory, so building ``indices``
    (default: everyone) yields bit-identical consumers no matter which
    subset any other process builds.
    """
    metrics = taxonomy.names()
    selected = range(count) if indices is None else indices
    consumers: List[Consumer] = []
    for i in selected:
        if not 0 <= i < count:
            raise ValueError(
                f"consumer index {i} outside [0, {count})"
            )
        streams = shard_consumer_streams(seeds, i)
        segment = i % max(1, n_segments)
        if preference_heterogeneity <= 0:
            weights = {m: 1.0 for m in metrics}
        else:
            weight_rng = streams.rng("weights")
            base = 1.0 - preference_heterogeneity
            weights = {
                m: base + preference_heterogeneity * float(weight_rng.random())
                for m in metrics
            }
        consumers.append(
            Consumer(
                consumer_id=shard_consumer_id(i, id_prefix),
                preferences=PreferenceProfile(weights, segment=segment),
                rating_noise=rating_noise,
                rng=streams.rng("rating"),
            )
        )
    return consumers


def make_shard_world(
    n_providers: int = 5,
    services_per_provider: int = 2,
    n_consumers: int = 20,
    seed: int = 0,
    taxonomy: Optional[QoSTaxonomy] = None,
    category: str = "weather_report",
    n_segments: int = 1,
    preference_heterogeneity: float = 0.0,
    segment_spread: float = 0.0,
    exaggerations: Optional[Sequence[float]] = None,
    behaviors: Optional[Dict[int, QualityBehavior]] = None,
    quality_spread: float = 0.25,
    noise: float = 0.05,
    consumer_indices: Optional[Sequence[int]] = None,
) -> World:
    """A :func:`make_world`-shaped world safe to build per shard.

    The provider/service catalog is identical on every shard (same
    ``seeds.rng("world")`` draws); consumers come from
    :func:`make_shard_consumers`, restricted to *consumer_indices* when
    given, so N processes each build only their own slice of one and
    the same world.
    """
    taxonomy = taxonomy or DEFAULT_METRICS
    seeds = SeedSequenceFactory(seed)
    providers, services, true_quality = _make_catalog(
        n_providers,
        services_per_provider,
        seeds,
        taxonomy,
        category,
        n_segments,
        segment_spread,
        exaggerations,
        behaviors,
        quality_spread,
        noise,
    )
    consumers = make_shard_consumers(
        n_consumers,
        taxonomy,
        seeds,
        n_segments=n_segments,
        preference_heterogeneity=preference_heterogeneity,
        indices=consumer_indices,
    )
    return World(
        taxonomy=taxonomy,
        providers=providers,
        services=services,
        consumers=consumers,
        category=category,
        seeds=seeds,
        true_quality=true_quality,
    )
