"""Shared experiment driver: run one mechanism on one world.

The canonical experiment shape behind most figures/claims: build a
world, run a :class:`~repro.core.scenarios.DirectSelectionScenario` for
some rounds, and report accuracy/regret plus score quality against
ground truth.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.ids import EntityId
from repro.core.scenarios import DirectSelectionScenario, ScenarioResult
from repro.core.selection import EpsilonGreedyPolicy, SelectionPolicy
from repro.experiments.metrics import ranking_quality
from repro.experiments.workloads import World
from repro.models.base import ReputationModel
from repro.robustness.attacks import AttackPlan


@dataclass
class SelectionOutcome:
    """Everything a selection experiment reports."""

    model_name: str
    result: ScenarioResult
    final_scores: Dict[EntityId, float]
    ranking: Dict[str, Optional[float]]

    @property
    def accuracy(self) -> float:
        return self.result.accuracy

    @property
    def tail_accuracy(self) -> float:
        return self.result.tail_accuracy()

    @property
    def mean_regret(self) -> float:
        return self.result.mean_regret


def run_selection_experiment(
    model: ReputationModel,
    world: World,
    rounds: int = 30,
    policy: Optional[SelectionPolicy] = None,
    attack: Optional[AttackPlan] = None,
    rate_providers: bool = False,
) -> SelectionOutcome:
    """Run the standard select-invoke-rate loop and evaluate the model.

    Args:
        policy: defaults to ε-greedy(0.1) seeded from the world — pure
            greed starves newcomers of evidence, pure exploration never
            exploits; 0.1 is the conventional middle.
        attack: optional dishonest-population plan, applied to per-run
            copies of the consumers — the caller's ``world.consumers``
            keep their own strategies, so replications sharing a world
            never compound an attack.  (RNG state is still consumed by
            the run; for exact replay build a fresh world per trial, as
            :mod:`repro.experiments.parallel` does.)
    """
    consumers = world.consumers
    if attack is not None:
        consumers = [copy.copy(c) for c in consumers]
        attack.apply(consumers)
    if policy is None:
        policy = EpsilonGreedyPolicy(epsilon=0.1, rng=world.seeds.rng("policy"))
    scenario = DirectSelectionScenario(
        services=world.services,
        consumers=consumers,
        model=model,
        taxonomy=world.taxonomy,
        policy=policy,
        rate_providers=rate_providers,
        rng=world.seeds.rng("invocations"),
    )
    result = scenario.run(rounds)
    service_ids = [svc.service_id for svc in world.services]
    final_scores = dict(
        zip(service_ids, model.score_many(service_ids, now=scenario.time))
    )
    return SelectionOutcome(
        model_name=model.name,
        result=result,
        final_scores=final_scores,
        ranking=ranking_quality(final_scores, world.true_quality),
    )
