"""Deterministic process-pool fan-out for replications and sweeps.

The experiments behind the paper's claims are embarrassingly parallel:
every (replication seed × sweep point × model) trial builds its own
world and touches nothing shared.  This module turns that shape into a
runtime layer with one hard contract:

    ``parallel == serial``, bit for bit.

Three design rules enforce it:

* **Specs, not objects.**  A :class:`TrialSpec` carries the *name* of a
  registered world builder, its parameters, a model registry name, and
  a derived integer seed — never live worlds, models, or generators.
  Workers rebuild everything from the spec, so a trial's inputs cannot
  depend on which process runs it.
* **Scheduling-independent seeds.**  Trial seeds come from
  :meth:`~repro.common.randomness.SeedSequenceFactory.spawn`, which is
  a pure function of (base seed, label).  Chunking, worker count, and
  completion order cannot perturb any trial's RNG streams.
* **Canonical merge order.**  Results are always returned in spec
  order (``ProcessPoolExecutor.map`` preserves input order), so the
  caller sees the same list the serial loop would have produced.

``max_workers=1`` (the default) runs a plain in-process loop — the
zero-dependency fallback — as does any batch whose function or items
fail a pickling pre-check (e.g. world params closing over lambdas).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.common.randomness import SeedSequenceFactory
from repro.experiments.harness import (
    SelectionOutcome,
    run_selection_experiment,
)
from repro.experiments.workloads import World, make_world
from repro.obs.recorder import Recorder, use_recorder
from repro.obs.trace import TelemetrySnapshot
from repro.robustness import attacks as _attacks
from repro.robustness.attacks import AttackPlan

#: Execution modes reported by :class:`TrialRunReport`.
SERIAL = "serial"
PROCESS_POOL = "process-pool"

#: Environment variable consulted by :func:`jobs_from_env`.
JOBS_ENV = "REPRO_JOBS"


# ---------------------------------------------------------------------------
# World-builder registry
# ---------------------------------------------------------------------------

DEFAULT_WORLD = "make_world"

_WORLD_BUILDERS: Dict[str, Callable[..., World]] = {
    DEFAULT_WORLD: make_world,
}


def register_world_builder(
    name: str, builder: Callable[..., World], overwrite: bool = False
) -> None:
    """Register *builder* under *name* for use in :class:`TrialSpec`.

    Builders must accept ``seed=<int>`` plus the spec's ``world_params``
    as keyword arguments and return a fresh :class:`World`.  Register
    at module import time so forked/spawned workers see the same table.
    """
    if not overwrite and name in _WORLD_BUILDERS:
        raise ConfigurationError(f"duplicate world builder: {name!r}")
    _WORLD_BUILDERS[name] = builder


def world_builder(name: str) -> Callable[..., World]:
    try:
        return _WORLD_BUILDERS[name]
    except KeyError:
        raise UnknownEntityError(f"unknown world builder: {name!r}") from None


# ---------------------------------------------------------------------------
# Attack specs (picklable stand-ins for AttackPlan)
# ---------------------------------------------------------------------------

#: Strategy name -> factory-of-strategies from repro.robustness.attacks.
ATTACK_STRATEGIES: Dict[str, Callable[..., Any]] = {
    "badmouth": _attacks.badmouth_strategy,
    "ballot_stuffing": _attacks.ballot_stuffing_strategy,
    "collusion": _attacks.collusion_strategy,
    "complementary": _attacks.complementary_liar_strategy,
    "random": _attacks.random_liar_strategy,
}


@dataclass(frozen=True)
class AttackSpec:
    """A picklable description of an :class:`AttackPlan`.

    The strategy is named, not passed as a callable, so specs cross
    process boundaries; :meth:`build` materializes the plan inside the
    worker.
    """

    strategy: str
    liar_fraction: float = 0.0
    params: Mapping[str, Any] = field(default_factory=dict)
    sybil_count: int = 0
    whitewash: bool = False

    def build(self) -> AttackPlan:
        try:
            factory = ATTACK_STRATEGIES[self.strategy]
        except KeyError:
            raise UnknownEntityError(
                f"unknown attack strategy: {self.strategy!r}"
            ) from None
        kwargs = dict(self.params)
        return AttackPlan(
            liar_fraction=self.liar_fraction,
            strategy_factory=lambda: factory(**kwargs),
            sybil_count=self.sybil_count,
            whitewash=self.whitewash,
        )


# ---------------------------------------------------------------------------
# The task protocol
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrialSpec:
    """One independent unit of experiment work.

    Attributes:
        model: mechanism name in :func:`repro.core.registry.default_registry`.
        seed: the trial's *root* seed — derive it with
            :meth:`SeedSequenceFactory.spawn` (see :func:`replication_specs`)
            so it never depends on scheduling.
        rounds: select-invoke-rate rounds for the scenario.
        world: registered world-builder name (see
            :func:`register_world_builder`).
        world_params: keyword arguments for the builder (``seed`` is
            injected from :attr:`seed`).
        attack: optional dishonest-population description.
        rate_providers: also file provider-targeted feedback.
        label: free-form tag carried through to the result (grouping key
            for sweeps).
        telemetry: run the trial under a fresh
            :class:`~repro.obs.recorder.Recorder` and ship the captured
            :class:`~repro.obs.trace.TelemetrySnapshot` back on the
            result.  Off by default (the no-op recorder costs nothing).
    """

    model: str
    seed: int
    rounds: int = 30
    world: str = DEFAULT_WORLD
    world_params: Mapping[str, Any] = field(default_factory=dict)
    attack: Optional[AttackSpec] = None
    rate_providers: bool = False
    label: str = ""
    telemetry: bool = False


@dataclass
class TrialResult:
    """What one trial sends back across the process boundary.

    ``elapsed_ns``/``pid`` are observability only — equality of two runs
    is judged on :attr:`outcome` (and tests do exactly that).
    ``telemetry`` (present iff the spec asked for it) is *not* mere
    observability: it is captured in sim time only, so it obeys the
    same parallel == serial contract as the outcome.
    """

    spec: TrialSpec
    outcome: SelectionOutcome
    elapsed_ns: int
    pid: int
    telemetry: Optional[TelemetrySnapshot] = None


def build_trial_model(spec: TrialSpec):
    """The model a trial runs — rebuilt per trial, seeded from the spec."""
    from repro.core.registry import default_registry

    return default_registry(rng_seed=spec.seed).create(spec.model)


def run_trial(spec: TrialSpec) -> TrialResult:
    """Execute one spec serially — the reference semantics for a trial.

    This is *the* worker function: the pool maps it over specs, and the
    serial fallback calls it in a loop.  Everything stochastic is
    rebuilt from ``spec.seed``, so the result is a pure function of the
    spec.
    """
    start = time.perf_counter_ns()
    world = world_builder(spec.world)(
        seed=spec.seed, **dict(spec.world_params)
    )
    model = build_trial_model(spec)
    attack = spec.attack.build() if spec.attack is not None else None
    snapshot: Optional[TelemetrySnapshot] = None
    if spec.telemetry:
        recorder = Recorder()
        with use_recorder(recorder):
            outcome = run_selection_experiment(
                model,
                world,
                rounds=spec.rounds,
                attack=attack,
                rate_providers=spec.rate_providers,
            )
        snapshot = recorder.snapshot(
            meta={
                "label": spec.label,
                "model": spec.model,
                "seed": spec.seed,
            }
        )
    else:
        outcome = run_selection_experiment(
            model,
            world,
            rounds=spec.rounds,
            attack=attack,
            rate_providers=spec.rate_providers,
        )
    return TrialResult(
        spec=spec,
        outcome=outcome,
        elapsed_ns=time.perf_counter_ns() - start,
        pid=os.getpid(),
        telemetry=snapshot,
    )


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


def jobs_from_env(default: int = 1) -> int:
    """Worker count from the ``REPRO_JOBS`` environment variable.

    ``0`` or ``auto`` mean "all cores"; unset/empty means *default*.
    """
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return max(1, default)
    if raw.lower() in {"0", "auto"}:
        return max(1, os.cpu_count() or 1)
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOBS_ENV} must be an integer or 'auto', got {raw!r}"
        ) from None
    return max(1, value)


def picklable(*objects: Any) -> bool:
    """Whether every argument survives ``pickle.dumps``.

    The pre-check both this runtime and the sharded runner apply before
    choosing process dispatch, so shard-incompatible worlds degrade to
    the serial path instead of dying inside a worker.
    """
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


#: Backwards-compatible private alias (pre-sharding name).
_picklable = picklable


def default_chunksize(n_items: int, workers: int) -> int:
    """Chunks sized for ~4 dispatches per worker — large enough to
    amortize IPC, small enough to keep the pool load-balanced."""
    return max(1, -(-n_items // (workers * 4)))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    max_workers: int = 1,
    chunksize: Optional[int] = None,
) -> List[Any]:
    """Ordered ``map(fn, items)`` over a process pool.

    Results come back in input order regardless of completion order.
    Falls back to a plain in-process loop when ``max_workers <= 1``,
    when there is at most one item, or when *fn*/*items* fail a
    pickling pre-check (lambdas, closures, live RNGs...) — so callers
    never need a serial code path of their own.
    """
    items = list(items)
    workers = min(int(max_workers), len(items))
    if workers <= 1 or not _picklable(fn, items):
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = default_chunksize(len(items), workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


@dataclass
class TrialRunReport:
    """Ordered results plus the dispatch telemetry of one batch."""

    results: List[TrialResult]
    wall_ns: int
    workers: int
    mode: str
    chunksize: int

    @property
    def outcomes(self) -> List[SelectionOutcome]:
        return [r.outcome for r in self.results]

    @property
    def trial_ns(self) -> List[int]:
        """Per-trial execution time, in spec order."""
        return [r.elapsed_ns for r in self.results]

    @property
    def ns_per_trial(self) -> float:
        """Wall-clock per trial — the throughput number benchmarks track."""
        return self.wall_ns / len(self.results) if self.results else 0.0

    def telemetry(self) -> TelemetrySnapshot:
        """Per-trial snapshots merged in canonical (spec) order.

        Events are re-labeled with their trial's spec label and ordered
        by ``(trial position, seq)``, metrics merge per
        :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshots` —
        worker count and completion order cannot change a byte of it.
        Trials that did not capture telemetry are skipped.
        """
        captured = [
            (r.spec.label or f"trial{i}", r.telemetry)
            for i, r in enumerate(self.results)
            if r.telemetry is not None
        ]
        # No dispatch details (mode, workers, timings) in the merge:
        # the exported trace must be byte-identical across worker counts.
        return TelemetrySnapshot.merge(
            [snap for _, snap in captured],
            labels=[label for label, _ in captured],
        )


def run_trials(
    specs: Sequence[TrialSpec],
    max_workers: int = 1,
    chunksize: Optional[int] = None,
) -> TrialRunReport:
    """Execute *specs* and merge results in canonical (spec) order.

    The parallel==serial contract: for any ``max_workers`` and any
    ``chunksize``, the returned outcomes are identical to
    ``[run_trial(s) for s in specs]`` — exact replay, not tolerance.
    """
    specs = list(specs)
    workers = min(int(max_workers), len(specs))
    pooled = workers > 1 and _picklable(run_trial, specs)
    if chunksize is None:
        chunksize = default_chunksize(len(specs), max(1, workers))
    start = time.perf_counter_ns()
    if pooled:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(run_trial, specs, chunksize=chunksize))
    else:
        results = [run_trial(spec) for spec in specs]
    wall_ns = time.perf_counter_ns() - start
    return TrialRunReport(
        results=results,
        wall_ns=wall_ns,
        workers=workers if pooled else 1,
        mode=PROCESS_POOL if pooled else SERIAL,
        chunksize=chunksize,
    )


# ---------------------------------------------------------------------------
# Helpers layered on run_selection_experiment
# ---------------------------------------------------------------------------


def replication_specs(
    model: str,
    replications: int,
    base_seed: int = 0,
    rounds: int = 30,
    world: str = DEFAULT_WORLD,
    world_params: Optional[Mapping[str, Any]] = None,
    attack: Optional[AttackSpec] = None,
    rate_providers: bool = False,
    telemetry: bool = False,
) -> List[TrialSpec]:
    """*replications* independent trials of one model.

    Replication *i* gets seed ``SeedSequenceFactory(base_seed).spawn
    ("replication/<i>")`` — reproducible from (base_seed, i) alone.
    """
    if replications < 1:
        raise ConfigurationError("replications must be >= 1")
    seeds = SeedSequenceFactory(base_seed)
    return [
        TrialSpec(
            model=model,
            seed=seeds.spawn(f"replication/{i}"),
            rounds=rounds,
            world=world,
            world_params=dict(world_params or {}),
            attack=attack,
            rate_providers=rate_providers,
            label=f"{model}/rep{i}",
            telemetry=telemetry,
        )
        for i in range(replications)
    ]


def run_replications(
    model: str,
    replications: int,
    base_seed: int = 0,
    rounds: int = 30,
    world: str = DEFAULT_WORLD,
    world_params: Optional[Mapping[str, Any]] = None,
    attack: Optional[AttackSpec] = None,
    rate_providers: bool = False,
    max_workers: int = 1,
    chunksize: Optional[int] = None,
    telemetry: bool = False,
) -> TrialRunReport:
    """Fan *replications* seeded trials of *model* across the pool."""
    specs = replication_specs(
        model,
        replications,
        base_seed=base_seed,
        rounds=rounds,
        world=world,
        world_params=world_params,
        attack=attack,
        rate_providers=rate_providers,
        telemetry=telemetry,
    )
    return run_trials(specs, max_workers=max_workers, chunksize=chunksize)


def sweep_specs(
    models: Sequence[str],
    param: str,
    values: Sequence[Any],
    replications: int = 1,
    base_seed: int = 0,
    rounds: int = 30,
    world: str = DEFAULT_WORLD,
    world_params: Optional[Mapping[str, Any]] = None,
    attack: Optional[AttackSpec] = None,
    rate_providers: bool = False,
    telemetry: bool = False,
) -> List[TrialSpec]:
    """The full grid ``models × values × replications``, canonical order.

    The seed for a grid cell depends on ``(param, value, replication)``
    but *not* on the model, so every model faces bit-identical worlds at
    each sweep point — the paired-comparison property sweep figures
    rely on.
    """
    if isinstance(models, str):
        models = [models]
    if replications < 1:
        raise ConfigurationError("replications must be >= 1")
    seeds = SeedSequenceFactory(base_seed)
    specs: List[TrialSpec] = []
    for model in models:
        for value in values:
            for i in range(replications):
                params = dict(world_params or {})
                params[param] = value
                specs.append(
                    TrialSpec(
                        model=model,
                        seed=seeds.spawn(f"sweep/{param}={value!r}/{i}"),
                        rounds=rounds,
                        world=world,
                        world_params=params,
                        attack=attack,
                        rate_providers=rate_providers,
                        label=f"{model}/{param}={value!r}/rep{i}",
                        telemetry=telemetry,
                    )
                )
    return specs


def run_sweep(
    models: Sequence[str],
    param: str,
    values: Sequence[Any],
    replications: int = 1,
    base_seed: int = 0,
    rounds: int = 30,
    world: str = DEFAULT_WORLD,
    world_params: Optional[Mapping[str, Any]] = None,
    attack: Optional[AttackSpec] = None,
    rate_providers: bool = False,
    max_workers: int = 1,
    chunksize: Optional[int] = None,
    telemetry: bool = False,
) -> TrialRunReport:
    """Sweep a world parameter across models, fanned out over the pool."""
    specs = sweep_specs(
        models,
        param,
        values,
        replications=replications,
        base_seed=base_seed,
        rounds=rounds,
        world=world,
        world_params=world_params,
        attack=attack,
        rate_providers=rate_providers,
        telemetry=telemetry,
    )
    return run_trials(specs, max_workers=max_workers, chunksize=chunksize)


def group_sweep(
    report: TrialRunReport, param: str
) -> Dict[str, Dict[Any, List[SelectionOutcome]]]:
    """Regroup a sweep report as ``{model: {value: [outcomes...]}}``."""
    table: Dict[str, Dict[Any, List[SelectionOutcome]]] = {}
    for result in report.results:
        value = result.spec.world_params[param]
        table.setdefault(result.spec.model, {}).setdefault(value, []).append(
            result.outcome
        )
    return table
