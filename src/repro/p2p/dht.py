"""Chord-like distributed hash table.

Distributed EigenTrust assigns each peer's trust value to *score
managers* located via a DHT; this module provides that substrate:
consistent hashing onto a ring, finger-table routing in O(log N) hops,
and per-node key/value stores with append semantics.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import (
    ConfigurationError,
    RoutingError,
    UnknownEntityError,
)
from repro.common.ids import EntityId
from repro.p2p.hashing import stable_hash
from repro.sim.network import Network


class _DHTNode:
    """Internal ring node: position, fingers, store."""

    def __init__(self, node_id: EntityId, position: int) -> None:
        self.node_id = node_id
        self.position = position
        self.fingers: List[EntityId] = []
        self.store: Dict[str, List[Any]] = defaultdict(list)
        self.online = True


class ChordDHT:
    """A static Chord ring over the given node ids.

    Args:
        node_ids: participating nodes.
        bits: ring size is ``2**bits``.
        network: optional message accounting fabric.
    """

    def __init__(
        self,
        node_ids: "list[EntityId]",
        bits: int = 16,
        network: Optional[Network] = None,
    ) -> None:
        if not node_ids:
            raise ConfigurationError("DHT needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise ConfigurationError("duplicate node ids")
        self.bits = bits
        self.ring_size = 2 ** bits
        self.network = network
        self._nodes: Dict[EntityId, _DHTNode] = {}
        positions: Dict[int, EntityId] = {}
        for node_id in sorted(node_ids):
            pos = stable_hash(f"dht:{node_id}", bits)
            # Linear probing on collision keeps positions unique.
            while pos in positions:
                pos = (pos + 1) % self.ring_size
            positions[pos] = node_id
            self._nodes[node_id] = _DHTNode(node_id, pos)
        self._ring: List[Tuple[int, EntityId]] = sorted(
            (node.position, nid) for nid, node in self._nodes.items()
        )
        self._positions = [pos for pos, _ in self._ring]
        for node in self._nodes.values():
            node.fingers = self._build_fingers(node.position)

    # -- ring geometry -----------------------------------------------------
    def _successor_of(self, position: int) -> EntityId:
        index = bisect.bisect_left(self._positions, position % self.ring_size)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def _build_fingers(self, position: int) -> List[EntityId]:
        fingers: List[EntityId] = []
        for i in range(self.bits):
            target = (position + (1 << i)) % self.ring_size
            succ = self._successor_of(target)
            if not fingers or fingers[-1] != succ:
                fingers.append(succ)
        return fingers

    def key_position(self, key: str) -> int:
        return stable_hash(f"key:{key}", self.bits)

    def responsible_node(self, key: str) -> EntityId:
        """The node owning *key* (ignores online status)."""
        return self._successor_of(self.key_position(key))

    def node(self, node_id: EntityId) -> _DHTNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownEntityError(f"unknown DHT node: {node_id!r}") from None

    def set_online(self, node_id: EntityId, online: bool) -> None:
        self.node(node_id).online = online

    def __len__(self) -> int:
        return len(self._nodes)

    # -- routing -------------------------------------------------------------
    @staticmethod
    def _in_interval(x: int, a: int, b: int, ring: int) -> bool:
        """True when x ∈ (a, b] on the ring."""
        a %= ring
        b %= ring
        x %= ring
        if a < b:
            return a < x <= b
        return x > a or x <= b

    def lookup(self, origin: EntityId, key: str) -> Tuple[EntityId, int]:
        """Iterative finger routing from *origin* to the owner of *key*.

        Returns ``(owner_id, hops)``.  When the owner is offline the
        lookup falls through to the next online successor (Chord's
        successor-list behaviour), charging one extra hop per skip.
        """
        key_pos = self.key_position(key)
        current = self.node(origin)
        hops = 0
        max_hops = 2 * self.bits + len(self._nodes)
        while True:
            owner = self._successor_of(key_pos)
            if current.node_id == owner:
                break
            # Greedy: the finger closest to (but not past) the key.
            best: Optional[EntityId] = None
            for finger_id in reversed(current.fingers):
                finger = self._nodes[finger_id]
                if not finger.online:
                    continue
                if self._in_interval(
                    finger.position, current.position, key_pos, self.ring_size
                ):
                    best = finger_id
                    break
            if best is None or best == current.node_id:
                best = owner  # direct jump: final finger is the successor
            if self.network is not None:
                self.network.send(current.node_id, best, kind="dht-route")
            hops += 1
            if hops > max_hops:
                raise RoutingError(f"DHT lookup for {key!r} did not converge")
            current = self._nodes[best]
            if current.node_id == owner:
                break
        # Skip offline owners via successor walk.
        skips = 0
        while not current.online:
            skips += 1
            if skips > len(self._nodes):
                raise RoutingError("all DHT nodes offline")
            current = self._nodes[
                self._successor_of(current.position + 1)
            ]
            hops += 1
        return current.node_id, hops

    # -- storage --------------------------------------------------------------
    def put(self, origin: EntityId, key: str, value: Any) -> int:
        """Append *value* under *key* at its owner; returns hops used."""
        owner, hops = self.lookup(origin, key)
        self._nodes[owner].store[key].append(value)
        return hops

    def get(self, origin: EntityId, key: str) -> Tuple[List[Any], int]:
        """Fetch all values under *key*; returns ``(values, hops+1)``."""
        owner, hops = self.lookup(origin, key)
        if self.network is not None:
            self.network.send(owner, origin, kind="dht-response")
        return list(self._nodes[owner].store.get(key, ())), hops + 1

    def storage_load(self) -> Dict[EntityId, int]:
        return {
            nid: sum(len(v) for v in node.store.values())
            for nid, node in self._nodes.items()
        }
