"""Decentralized substrates.

Peer-to-peer web services (Section 4/5 of the paper) need somewhere to
put reputation data when there is no central registry.  This package
provides the three substrate families the surveyed decentralized systems
assume:

* an **unstructured overlay** with TTL-bounded flooding (Gnutella-style
  — what XRep polls over),
* **P-Grid**, the binary-trie structured overlay of Aberer &
  Despotovic and Vu et al., with prefix routing and replication, and
* a **Chord-like DHT** used by distributed EigenTrust's score managers.

Plus **referral networks** (Yu & Singh; Yolum & Singh) where agents
answer queries with either an opinion or a referral to a neighbour.
"""

from repro.p2p.node import Peer
from repro.p2p.unstructured import UnstructuredOverlay
from repro.p2p.pgrid import PGrid, PGridPeer
from repro.p2p.dht import ChordDHT
from repro.p2p.discovery import DistributedServiceRegistry
from repro.p2p.referral import Referral, ReferralNetwork, ReferralResponse
from repro.p2p.hashing import stable_hash, to_bits

__all__ = [
    "ChordDHT",
    "DistributedServiceRegistry",
    "PGrid",
    "PGridPeer",
    "Peer",
    "Referral",
    "ReferralNetwork",
    "ReferralResponse",
    "UnstructuredOverlay",
    "stable_hash",
    "to_bits",
]
