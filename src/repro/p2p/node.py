"""Generic peer: identity, local storage, neighbours.

Every overlay builds on the same peer abstraction: a node id, a local
:class:`~repro.registry.qos_registry.FeedbackStore` (peers hold
reputation data locally — that is the point of decentralization), and a
neighbour set maintained by the overlay.
"""

from __future__ import annotations

from typing import List, Set

from repro.common.ids import EntityId
from repro.registry.qos_registry import FeedbackStore


class Peer:
    """A node participating in an overlay."""

    def __init__(self, peer_id: EntityId) -> None:
        self.peer_id = peer_id
        self.store = FeedbackStore()
        self.neighbors: Set[EntityId] = set()
        self.online = True
        self.crash_count = 0

    def crash(self) -> None:
        """Take the peer offline (churn); local storage survives.

        Overlay reputation data is durable on disk in the systems the
        survey covers — what churn costs is availability and missed
        replication traffic, not the peer's history.
        """
        if self.online:
            self.crash_count += 1
        self.online = False

    def restart(self) -> None:
        """Bring the peer back online with its pre-crash store intact."""
        self.online = True

    def add_neighbor(self, other: EntityId) -> None:
        if other != self.peer_id:
            self.neighbors.add(other)

    def remove_neighbor(self, other: EntityId) -> None:
        self.neighbors.discard(other)

    def neighbor_list(self) -> List[EntityId]:
        return sorted(self.neighbors)

    def __repr__(self) -> str:
        state = "online" if self.online else "offline"
        return f"Peer({self.peer_id!r}, {len(self.neighbors)} neighbors, {state})"
