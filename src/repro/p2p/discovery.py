"""Decentralized service discovery over P-Grid.

The paper's Section 4/5 premise — "peer to peer web services have been
proposed [9, 14, 28]" — needs somewhere to *publish and find* services
without a UDDI server.  :class:`DistributedServiceRegistry` provides
the discovery half (the reputation half is
:class:`~repro.models.vu_aberer.VuAbererModel` over the same overlay):

* a service description is published under its functional **category**
  key — the P-Grid peers responsible for ``category`` hold the listing
  (replicated like any P-Grid datum);
* a search routes to those peers and returns the category's listings.

This mirrors how WSPDS-style systems map discovery onto structured
overlays, and gives experiment C6-style accounting a decentralized
discovery path to price.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import RegistryError
from repro.common.ids import EntityId
from repro.p2p.pgrid import PGrid
from repro.services.description import QoSAdvertisement, ServiceDescription


class DistributedServiceRegistry:
    """Publish/search service descriptions on a P-Grid overlay."""

    def __init__(self, grid: PGrid) -> None:
        self.grid = grid
        #: holder peer -> category -> descriptions
        self._listings: Dict[EntityId, Dict[str, List[ServiceDescription]]] = {}
        #: holder peer -> service id -> advertisement
        self._advertisements: Dict[
            EntityId, Dict[EntityId, QoSAdvertisement]
        ] = {}
        self.publish_count = 0
        self.search_count = 0

    # -- publish --------------------------------------------------------
    def publish(
        self,
        origin: EntityId,
        description: ServiceDescription,
        advertisement: "QoSAdvertisement | None" = None,
    ) -> int:
        """Publish *description* from *origin*; returns messages used.

        The listing lands on every online peer responsible for the
        category key (routing + replication fan-out, like data
        inserts).
        """
        if advertisement is not None and (
            advertisement.service != description.service
        ):
            raise RegistryError(
                "advertisement service id does not match description"
            )
        category = description.category
        _, hops = self.grid.route(origin, category)
        messages = hops
        for holder_id in self.grid.responsible_peers(category):
            holder = self.grid.peer(holder_id)
            messages += 1
            if self.grid.network is not None:
                delivered = self.grid.network.send(
                    origin, holder_id, kind="discovery-publish"
                )
                if not delivered:
                    continue
            if not holder.online:
                continue
            listings = self._listings.setdefault(holder_id, {}).setdefault(
                category, []
            )
            listings[:] = [
                d for d in listings if d.service != description.service
            ] + [description]
            if advertisement is not None:
                self._advertisements.setdefault(holder_id, {})[
                    description.service
                ] = advertisement
        self.publish_count += 1
        return messages

    # -- search -----------------------------------------------------------
    def search(
        self, origin: EntityId, category: str
    ) -> Tuple[List[ServiceDescription], int]:
        """Find *category* listings; returns (descriptions, messages)."""
        responsible, hops = self.grid.route(origin, category)
        messages = hops + 1
        if self.grid.network is not None:
            self.grid.network.send(
                responsible.peer_id, origin, kind="discovery-response"
            )
        self.search_count += 1
        found = self._listings.get(responsible.peer_id, {}).get(
            category, []
        )
        return sorted(found, key=lambda d: d.service), messages

    def advertisement(
        self, origin: EntityId, service: EntityId, category: str
    ) -> Tuple["QoSAdvertisement | None", int]:
        """Fetch a published advertisement for *service*."""
        responsible, hops = self.grid.route(origin, category)
        messages = hops + 1
        if self.grid.network is not None:
            self.grid.network.send(
                responsible.peer_id, origin, kind="discovery-response"
            )
        ad = self._advertisements.get(responsible.peer_id, {}).get(service)
        return ad, messages

    # -- maintenance ---------------------------------------------------------
    def unpublish(
        self, origin: EntityId, service: EntityId, category: str
    ) -> int:
        """Remove *service*'s listing from the category's holders."""
        _, hops = self.grid.route(origin, category)
        messages = hops
        for holder_id in self.grid.responsible_peers(category):
            messages += 1
            if self.grid.network is not None:
                self.grid.network.send(
                    origin, holder_id, kind="discovery-unpublish"
                )
            listings = self._listings.get(holder_id, {}).get(category)
            if listings:
                listings[:] = [d for d in listings if d.service != service]
            self._advertisements.get(holder_id, {}).pop(service, None)
        return messages
