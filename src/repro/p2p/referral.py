"""Referral networks (Yu & Singh; Yolum & Singh).

Agents hold acquaintances; a query about a target either gets answered
with the agent's own *opinion* (when it has first-hand feedback) or with
*referrals* to neighbours it considers likely to know.  Queries expand
depth-first up to a depth limit, producing opinion/chain pairs that
trust models combine (Yu & Singh's belief combination discounts by chain
length).

Neighbour adaptation (Yolum & Singh): after each query, agents that
produced useful answers gain weight and may be promoted into the
querier's neighbour set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng
from repro.common.records import Feedback
from repro.p2p.node import Peer
from repro.sim.network import Network


@dataclass(frozen=True)
class Referral:
    """One hop in a referral chain."""

    referrer: EntityId
    referred: EntityId


@dataclass
class ReferralResponse:
    """An opinion found through a referral chain.

    ``chain`` is the sequence of agent ids the query travelled through,
    starting at (and including) the querier; its length determines the
    discount trust models apply.
    """

    witness: EntityId
    opinions: List[Feedback]
    chain: Tuple[EntityId, ...] = field(default_factory=tuple)

    @property
    def chain_length(self) -> int:
        return max(0, len(self.chain) - 1)


class ReferralNetwork:
    """Agents, acquaintance links, and depth-limited referral queries."""

    def __init__(
        self,
        degree: int = 4,
        branching: int = 2,
        network: Optional[Network] = None,
        rng: RngLike = None,
    ) -> None:
        if degree < 1 or branching < 1:
            raise ConfigurationError("degree and branching must be >= 1")
        self.degree = degree
        self.branching = branching
        self.network = network
        self._rng = make_rng(rng)
        self._agents: Dict[EntityId, Peer] = {}
        #: querier -> (neighbour -> usefulness weight)
        self._weights: Dict[EntityId, Dict[EntityId, float]] = {}

    # -- membership --------------------------------------------------------
    def join(self, agent_id: EntityId) -> Peer:
        if agent_id in self._agents:
            raise ConfigurationError(f"agent already joined: {agent_id!r}")
        agent = Peer(agent_id)
        existing = list(self._agents)
        self._agents[agent_id] = agent
        self._weights[agent_id] = {}
        if existing:
            k = min(self.degree, len(existing))
            picks = self._rng.choice(len(existing), size=k, replace=False)
            for index in picks:
                other = existing[int(index)]
                agent.add_neighbor(other)
                self._agents[other].add_neighbor(agent_id)
                self._weights[agent_id][other] = 0.5
                self._weights[other][agent_id] = 0.5
        return agent

    def agent(self, agent_id: EntityId) -> Peer:
        try:
            return self._agents[agent_id]
        except KeyError:
            raise UnknownEntityError(f"unknown agent: {agent_id!r}") from None

    def agents(self) -> List[Peer]:
        return list(self._agents.values())

    def __len__(self) -> int:
        return len(self._agents)

    def record_experience(self, agent_id: EntityId, feedback: Feedback) -> None:
        """Store a first-hand experience at *agent_id*."""
        self.agent(agent_id).store.add(feedback)

    # -- querying -----------------------------------------------------------
    def query(
        self,
        origin: EntityId,
        target: EntityId,
        depth_limit: int = 3,
    ) -> Tuple[List[ReferralResponse], int]:
        """Find witnesses with opinions about *target*.

        Depth-limited expansion: each visited agent answers with its own
        feedback about *target* (if any) and refers the query onward to
        its ``branching`` highest-weight neighbours.  Returns
        ``(responses, messages)``.
        """
        if depth_limit < 0:
            raise ConfigurationError("depth_limit must be >= 0")
        self.agent(origin)  # validate
        responses: List[ReferralResponse] = []
        messages = 0
        visited = {origin}
        frontier: List[Tuple[EntityId, Tuple[EntityId, ...]]] = [
            (origin, (origin,))
        ]
        depth = 0
        while frontier and depth <= depth_limit:
            next_frontier: List[Tuple[EntityId, Tuple[EntityId, ...]]] = []
            for agent_id, chain in frontier:
                agent = self._agents[agent_id]
                if not agent.online:
                    continue
                opinions = agent.store.for_target(target)
                if opinions and agent_id != origin:
                    messages += 1  # answer message back to origin
                    if self.network is not None:
                        self.network.send(agent_id, origin, kind="referral-answer")
                    responses.append(
                        ReferralResponse(
                            witness=agent_id,
                            opinions=opinions,
                            chain=chain,
                        )
                    )
                    continue  # witnesses answer instead of referring
                if depth == depth_limit:
                    continue
                weights = self._weights.get(agent_id, {})
                ranked = sorted(
                    agent.neighbor_list(),
                    key=lambda n: (-weights.get(n, 0.5), n),
                )
                referred = 0
                for neighbor_id in ranked:
                    if neighbor_id in visited:
                        continue
                    if referred >= self.branching:
                        break
                    visited.add(neighbor_id)
                    referred += 1
                    messages += 1
                    if self.network is not None:
                        delivered = self.network.send(
                            agent_id, neighbor_id, kind="referral-query"
                        )
                        if not delivered:
                            continue
                    next_frontier.append((neighbor_id, chain + (neighbor_id,)))
            frontier = next_frontier
            depth += 1
        return responses, messages

    # -- adaptation -----------------------------------------------------------
    def reinforce(
        self, origin: EntityId, witness: EntityId, useful: bool,
        rate: float = 0.2,
    ) -> None:
        """Adjust *origin*'s weight for *witness* after a query outcome.

        Yolum & Singh: agents learn which acquaintances give good
        answers.  A consistently useful non-neighbour is promoted into
        the neighbour set, evicting the lowest-weight neighbour.
        """
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError("rate must be in (0, 1]")
        weights = self._weights.setdefault(origin, {})
        current = weights.get(witness, 0.5)
        goal = 1.0 if useful else 0.0
        weights[witness] = current + rate * (goal - current)
        agent = self.agent(origin)
        if (
            useful
            and witness not in agent.neighbors
            and weights[witness] > 0.7
            and agent.neighbors
        ):
            worst = min(
                agent.neighbor_list(), key=lambda n: (weights.get(n, 0.5), n)
            )
            if weights.get(worst, 0.5) < weights[witness]:
                agent.remove_neighbor(worst)
                agent.add_neighbor(witness)

    def weight(self, origin: EntityId, other: EntityId) -> float:
        return self._weights.get(origin, {}).get(other, 0.5)
