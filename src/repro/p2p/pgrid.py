"""P-Grid: a binary-trie structured overlay.

The substrate of Aberer & Despotovic's trust management and Vu et al.'s
decentralized QoS registries.  Each peer is responsible for one binary
*path*; data keys are binary strings, and a key belongs to the peers
whose path prefixes it.  Routing: at each step the current peer forwards
to a reference for the first bit where the key disagrees with its path,
halving the remaining key space — O(log N) hops.

Two constructions are provided:

* the default constructor assigns the *outcome* of P-Grid's
  pairwise-split protocol directly — paths of uniform depth with
  round-robin replication and ``refs_per_level`` references per level;
* :meth:`PGrid.build_by_exchanges` replays Aberer's decentralized
  bootstrap itself: peers start with the empty path, random pairs meet,
  and two peers sharing a path *split* (one takes suffix 0, the other
  suffix 1, each remembering the other as its reference for the
  complementary side), until the target replication level is reached.
  The emergent trie is what the experiments then measure.

Either way the observable properties are the same: O(log N) hop counts,
distributed storage load, and failure robustness via replicas and
redundant references.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.common.errors import (
    ConfigurationError,
    RoutingError,
    UnknownEntityError,
)
from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng
from repro.common.records import Feedback
from repro.p2p.hashing import to_bits
from repro.p2p.node import Peer
from repro.sim.network import Network


def shard_path(entity_id: EntityId, depth: int) -> str:
    """The binary P-Grid path prefix owning *entity_id* at *depth*.

    The sharded runner (``repro.experiments.sharded``) range-partitions
    the same SHA-256 key space by its top bits, so for a power-of-two
    shard count the two assignments coincide subtree-for-subtree:
    ``int(shard_path(e, d), 2) == shard_of(e, 2 ** d)``.  Shard ``k``
    of ``2**d`` holds exactly the keys of the trie subtree at path
    ``format(k, f"0{d}b")`` — a shard *is* a P-Grid subtree, which is
    what makes the shard load/message numbers read as decentralized-
    registry numbers.
    """
    if depth <= 0:
        return ""
    return to_bits(str(entity_id), depth)


class PGridPeer(Peer):
    """A peer owning one trie path plus per-level references."""

    def __init__(self, peer_id: EntityId, path: str) -> None:
        super().__init__(peer_id)
        self.path = path
        #: level -> ids of peers in the complementary subtree at that level
        self.references: Dict[int, List[EntityId]] = {}

    def responsible_for(self, key_bits: str) -> bool:
        return key_bits.startswith(self.path)

    def first_mismatch(self, key_bits: str) -> Optional[int]:
        """First level where *key_bits* leaves this peer's path."""
        for level, bit in enumerate(self.path):
            if level >= len(key_bits) or key_bits[level] != bit:
                return level
        return None


class PGrid:
    """The overlay: path assignment, routing, replication, storage.

    Args:
        peer_ids: participating peers (at least one).
        replication: target replicas per path; depth is derived as
            ``floor(log2(n / replication))`` (min 0).
        refs_per_level: redundant references kept per routing level.
        network: optional message accounting fabric.
        rng: used to pick among alternative references.
    """

    def __init__(
        self,
        peer_ids: "list[EntityId]",
        replication: int = 2,
        refs_per_level: int = 2,
        network: Optional[Network] = None,
        rng: RngLike = None,
    ) -> None:
        if not peer_ids:
            raise ConfigurationError("P-Grid needs at least one peer")
        if len(set(peer_ids)) != len(peer_ids):
            raise ConfigurationError("duplicate peer ids")
        if replication < 1:
            raise ConfigurationError("replication must be >= 1")
        if refs_per_level < 1:
            raise ConfigurationError("refs_per_level must be >= 1")
        self.network = network
        self._rng = make_rng(rng)
        n = len(peer_ids)
        self.depth = max(0, int(math.floor(math.log2(max(1, n // replication)))))
        self._peers: Dict[EntityId, PGridPeer] = {}
        self._by_path: Dict[str, List[EntityId]] = {}
        paths = self._all_paths(self.depth)
        for index, peer_id in enumerate(sorted(peer_ids)):
            path = paths[index % len(paths)]
            peer = PGridPeer(peer_id, path)
            self._peers[peer_id] = peer
            self._by_path.setdefault(path, []).append(peer_id)
        self._build_references(refs_per_level)

    @staticmethod
    def _all_paths(depth: int) -> List[str]:
        if depth == 0:
            return [""]
        return [format(i, f"0{depth}b") for i in range(2 ** depth)]

    @classmethod
    def build_by_exchanges(
        cls,
        peer_ids: "list[EntityId]",
        replication: int = 2,
        refs_per_level: int = 2,
        network: Optional[Network] = None,
        rng: RngLike = None,
        max_rounds: int = 200,
    ) -> "PGrid":
        """Bootstrap the trie with Aberer's pairwise-exchange protocol.

        Every peer starts with the empty path.  Each round pairs peers
        at random; when two peers share the same path and their
        subtree's population still exceeds *replication*, they split:
        one appends ``0``, the other ``1``, and each records the other
        as a level reference for the complementary side.  Peers with
        different paths exchange references instead (improving routing
        tables), exactly as in the published protocol.

        Returns a fully wired :class:`PGrid`; exchange messages are
        charged to *network* when given.
        """
        if not peer_ids:
            raise ConfigurationError("P-Grid needs at least one peer")
        if len(set(peer_ids)) != len(peer_ids):
            raise ConfigurationError("duplicate peer ids")
        if replication < 1:
            raise ConfigurationError("replication must be >= 1")
        gen = make_rng(rng)
        grid = cls.__new__(cls)
        grid.network = network
        grid._rng = gen
        grid.depth = 0
        grid._peers = {
            pid: PGridPeer(pid, "") for pid in sorted(peer_ids)
        }
        grid._by_path = {"": sorted(peer_ids)}
        population = {pid: grid._peers[pid] for pid in peer_ids}

        def path_population(path: str) -> int:
            return sum(
                1 for p in population.values() if p.path == path
            )

        ids = sorted(peer_ids)
        quiet_rounds = 0
        for _ in range(max_rounds):
            split_happened = False
            order = [ids[int(i)] for i in gen.permutation(len(ids))]
            for a_id, b_id in zip(order[::2], order[1::2]):
                a, b = population[a_id], population[b_id]
                if network is not None:
                    network.send(a_id, b_id, kind="pgrid-exchange")
                if a.path == b.path:
                    if path_population(a.path) <= replication:
                        continue  # enough replicas; stay put
                    level = len(a.path)
                    a.path += "0"
                    b.path += "1"
                    a.references.setdefault(level, [])
                    b.references.setdefault(level, [])
                    if b_id not in a.references[level]:
                        a.references[level].append(b_id)
                    if a_id not in b.references[level]:
                        b.references[level].append(a_id)
                    split_happened = True
                elif (
                    b.path.startswith(a.path)
                    and len(b.path) > len(a.path)
                    and path_population(a.path) > 0
                ):
                    # a's path is a proper prefix of b's: a specializes
                    # to the complementary subtree (P-Grid case 2),
                    # taking b as its reference for b's side.
                    level = len(a.path)
                    a.path += "1" if b.path[level] == "0" else "0"
                    refs = a.references.setdefault(level, [])
                    if b.peer_id not in refs:
                        refs.append(b.peer_id)
                    brefs = b.references.setdefault(level, [])
                    if a.peer_id not in brefs and len(brefs) < refs_per_level:
                        brefs.append(a.peer_id)
                    split_happened = True
                elif (
                    a.path.startswith(b.path)
                    and len(a.path) > len(b.path)
                ):
                    level = len(b.path)
                    b.path += "1" if a.path[level] == "0" else "0"
                    refs = b.references.setdefault(level, [])
                    if a.peer_id not in refs:
                        refs.append(a.peer_id)
                    arefs = a.references.setdefault(level, [])
                    if b.peer_id not in arefs and len(arefs) < refs_per_level:
                        arefs.append(b.peer_id)
                    split_happened = True
                else:
                    # Divergent paths: exchange references at the first
                    # level where the paths disagree.
                    prefix = 0
                    while (
                        prefix < min(len(a.path), len(b.path))
                        and a.path[prefix] == b.path[prefix]
                    ):
                        prefix += 1
                    for peer, other in ((a, b), (b, a)):
                        if prefix < len(peer.path):
                            refs = peer.references.setdefault(prefix, [])
                            if (
                                other.path[prefix:prefix + 1]
                                == ("1" if peer.path[prefix] == "0" else "0")
                                and other.peer_id not in refs
                                and len(refs) < refs_per_level
                            ):
                                refs.append(other.peer_id)
            if split_happened:
                quiet_rounds = 0
            else:
                # Random pairings can miss remaining same-path pairs in
                # any one round; only a sustained streak means the trie
                # has converged.
                quiet_rounds += 1
                if quiet_rounds >= 20:
                    break
        # Finalize: index by path, compute depth, and fill any reference
        # gaps so routing is complete even if random meetings missed a
        # pairing (peers learn missing refs by querying, in practice).
        grid._by_path = {}
        for pid, peer in grid._peers.items():
            grid._by_path.setdefault(peer.path, []).append(pid)
        for path in grid._by_path:
            grid._by_path[path].sort()
        grid.depth = max(
            (len(p.path) for p in grid._peers.values()), default=0
        )
        grid._build_references(refs_per_level)
        return grid

    def _build_references(self, refs_per_level: int) -> None:
        for peer in self._peers.values():
            for level, bit in enumerate(peer.path):
                complement = peer.path[:level] + ("1" if bit == "0" else "0")
                candidates = sorted(
                    pid
                    for pid, other in self._peers.items()
                    if other.path.startswith(complement) and pid != peer.peer_id
                )
                if not candidates:
                    continue
                if len(candidates) > refs_per_level:
                    picks = self._rng.choice(
                        len(candidates), size=refs_per_level, replace=False
                    )
                    chosen = [candidates[int(i)] for i in sorted(picks)]
                else:
                    chosen = candidates
                peer.references[level] = chosen

    # -- membership ------------------------------------------------------
    def join(
        self,
        peer_id: EntityId,
        exchanges: int = 32,
        refs_per_level: int = 2,
    ) -> PGridPeer:
        """Dynamic join: a new peer bootstraps its path by exchanges.

        The newcomer starts at the empty path and repeatedly meets
        random existing peers: meeting a peer whose path extends its
        own, it specializes to the complementary subtree (adopting the
        partner as a reference); on arrival at a leaf path it becomes a
        replica there and copies the replica's data.
        """
        if peer_id in self._peers:
            raise ConfigurationError(f"peer already joined: {peer_id!r}")
        newcomer = PGridPeer(peer_id, "")
        existing = sorted(self._peers)
        if not existing:
            self._peers[peer_id] = newcomer
            self._by_path.setdefault("", []).append(peer_id)
            return newcomer
        leaf_paths = set(self._by_path)
        for _ in range(exchanges):
            partner_id = existing[int(self._rng.integers(0, len(existing)))]
            partner = self._peers[partner_id]
            if self.network is not None:
                self.network.send(peer_id, partner_id,
                                  kind="pgrid-exchange")
            if newcomer.path in leaf_paths:
                break
            if (
                partner.path.startswith(newcomer.path)
                and len(partner.path) > len(newcomer.path)
            ):
                level = len(newcomer.path)
                complement = "1" if partner.path[level] == "0" else "0"
                candidate = newcomer.path + complement
                # Only descend toward populated space.
                if any(p.startswith(candidate) or candidate.startswith(p)
                       for p in leaf_paths):
                    newcomer.path = candidate
                    refs = newcomer.references.setdefault(level, [])
                    if partner_id not in refs:
                        refs.append(partner_id)
                else:
                    # The other side: follow the partner's subtree.
                    newcomer.path = newcomer.path + partner.path[level]
        # Snap to the deepest leaf path that is compatible.
        compatible = [
            p for p in leaf_paths
            if p.startswith(newcomer.path) or newcomer.path.startswith(p)
        ]
        target_path = max(compatible, key=len) if compatible else ""
        newcomer.path = target_path
        self._peers[peer_id] = newcomer
        self._by_path.setdefault(target_path, []).append(peer_id)
        self._by_path[target_path].sort()
        # Copy the replica set's data and (re)build the newcomer's refs.
        for sibling_id in self._by_path[target_path]:
            if sibling_id == peer_id:
                continue
            sibling = self._peers[sibling_id]
            for fb in sibling.store.all():
                newcomer.store.add(fb)
            if self.network is not None:
                self.network.send(sibling_id, peer_id,
                                  kind="pgrid-replicate")
            break
        for level, bit in enumerate(newcomer.path):
            complement = newcomer.path[:level] + ("1" if bit == "0" else "0")
            candidates = sorted(
                pid
                for pid, other in self._peers.items()
                if other.path.startswith(complement) and pid != peer_id
            )
            newcomer.references[level] = candidates[:refs_per_level]
        # Existing peers learn about the newcomer as a backup reference
        # for its subtree (in the protocol this spreads through later
        # exchanges; the effect is the same).
        for other_id, other in self._peers.items():
            if other_id == peer_id:
                continue
            for level, bit in enumerate(other.path):
                complement = other.path[:level] + (
                    "1" if bit == "0" else "0"
                )
                if newcomer.path.startswith(complement):
                    refs = other.references.setdefault(level, [])
                    if peer_id not in refs:
                        refs.append(peer_id)
                    break
        self.depth = max(self.depth, len(newcomer.path))
        return newcomer

    def peer(self, peer_id: EntityId) -> PGridPeer:
        try:
            return self._peers[peer_id]
        except KeyError:
            raise UnknownEntityError(f"unknown peer: {peer_id!r}") from None

    def peers(self) -> List[PGridPeer]:
        return list(self._peers.values())

    def __len__(self) -> int:
        return len(self._peers)

    def replicas_for_path(self, path: str) -> List[EntityId]:
        return list(self._by_path.get(path, ()))

    def key_bits(self, key: str) -> str:
        """The binary key this overlay uses for *key*."""
        return to_bits(key, max(1, self.depth)) if self.depth > 0 else ""

    def responsible_peers(self, key: str) -> List[EntityId]:
        """All peers responsible for *key* (their path prefixes its bits).

        With a uniform-depth trie this is one path's replica set; tries
        built by pairwise exchanges may have unsplit peers whose shorter
        paths cover the key as well.
        """
        bits = self.key_bits(key)
        if self.depth == 0:
            return sorted(self._peers)
        return sorted(
            pid
            for pid, peer in self._peers.items()
            if peer.responsible_for(bits)
        )

    # -- routing -----------------------------------------------------------
    def route(self, origin: EntityId, key: str) -> Tuple[PGridPeer, int]:
        """Greedy prefix routing from *origin* toward *key*.

        Returns ``(responsible_online_peer, hops)``.  Raises
        :class:`RoutingError` when every candidate next hop (and every
        replica) is offline.
        """
        bits = self.key_bits(key)
        current = self.peer(origin)
        hops = 0
        max_hops = self.depth + 2
        while True:
            if current.online and current.responsible_for(bits):
                return current, hops
            if current.responsible_for(bits):
                # Current replica is offline mid-route; try a sibling.
                alive = [
                    pid
                    for pid in self.replicas_for_path(current.path)
                    if self._peers[pid].online and pid != current.peer_id
                ]
                if not alive:
                    raise RoutingError(
                        f"all replicas for path {current.path!r} offline"
                    )
                current = self._hop(current, alive[0])
                hops += 1
                continue
            level = current.first_mismatch(bits)
            if level is None or hops >= max_hops:
                raise RoutingError(
                    f"routing from {origin!r} for key {key!r} failed"
                )
            refs = current.references.get(level, [])
            next_id = None
            for candidate in refs:
                if self._peers[candidate].online:
                    next_id = candidate
                    break
            if next_id is None:
                raise RoutingError(
                    f"no online reference at level {level} from "
                    f"{current.peer_id!r}"
                )
            current = self._hop(current, next_id)
            hops += 1

    def _hop(self, sender: PGridPeer, receiver_id: EntityId) -> PGridPeer:
        if self.network is not None:
            self.network.send(sender.peer_id, receiver_id, kind="pgrid-route")
        return self._peers[receiver_id]

    # -- storage -----------------------------------------------------------
    def insert(self, origin: EntityId, key: str, feedback: Feedback) -> int:
        """Route *feedback* under *key* and store at all online replicas.

        Returns total messages (routing hops + replication fan-out).
        """
        target, hops = self.route(origin, key)
        messages = hops
        target.store.add(feedback)
        for replica_id in self.responsible_peers(key):
            if replica_id == target.peer_id:
                continue
            replica = self._peers[replica_id]
            messages += 1
            if self.network is not None:
                delivered = self.network.send(
                    target.peer_id, replica_id, kind="pgrid-replicate"
                )
                if not delivered:
                    continue
            if replica.online:
                replica.store.add(feedback)
        return messages

    def lookup(
        self, origin: EntityId, key: str, target: EntityId
    ) -> Tuple[List[Feedback], int]:
        """Fetch feedback about *target* stored under *key*.

        Returns ``(feedback, messages)`` including the response message.
        """
        responsible, hops = self.route(origin, key)
        messages = hops + 1
        if self.network is not None:
            self.network.send(
                responsible.peer_id, origin, kind="pgrid-response"
            )
        return responsible.store.for_target(target), messages

    # -- diagnostics ---------------------------------------------------------
    def storage_load(self) -> Dict[EntityId, int]:
        """Stored records per peer (for the load-balance experiment)."""
        return {pid: len(p.store) for pid, p in self._peers.items()}

    def storage_imbalance(self) -> float:
        """Max/mean stored records per peer (1.0 = perfectly balanced).

        The mean runs over *every* peer, not just peers holding data —
        a replica that stores nothing still dilutes the balance, the
        same silent-node discipline
        :meth:`repro.sim.network.MessageStats.load_imbalance` applies
        to message counts.
        """
        loads = self.storage_load()
        if not loads:
            return 1.0
        mean = sum(loads.values()) / len(loads)
        if mean <= 0:
            return 1.0
        return max(loads.values()) / mean
