"""Unstructured overlay with TTL-bounded flooding.

Gnutella-style: peers hold random neighbour links; a query floods
outward with a time-to-live.  Reputation data about a target is held by
whoever interacted with it, so queries collect *opinions* from reached
peers.  XRep's polling and the overhead comparison (C9) run on this.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng
from repro.common.records import Feedback
from repro.p2p.node import Peer
from repro.sim.network import Network


class UnstructuredOverlay:
    """Random-graph overlay with flooding queries.

    Args:
        degree: neighbour links created per joining peer.
        network: optional message accounting fabric.
        rng: randomness for neighbour selection.
    """

    def __init__(
        self,
        degree: int = 4,
        network: Optional[Network] = None,
        rng: RngLike = None,
    ) -> None:
        if degree < 1:
            raise ConfigurationError("degree must be >= 1")
        self.degree = degree
        self.network = network
        self._rng = make_rng(rng)
        self._peers: Dict[EntityId, Peer] = {}

    # -- membership ------------------------------------------------------
    def join(self, peer_id: EntityId) -> Peer:
        """Add a peer, wiring ``degree`` random bidirectional links."""
        if peer_id in self._peers:
            raise ConfigurationError(f"peer already joined: {peer_id!r}")
        peer = Peer(peer_id)
        existing = list(self._peers.values())
        self._peers[peer_id] = peer
        if existing:
            k = min(self.degree, len(existing))
            picks = self._rng.choice(len(existing), size=k, replace=False)
            for index in picks:
                other = existing[int(index)]
                peer.add_neighbor(other.peer_id)
                other.add_neighbor(peer_id)
        return peer

    def leave(self, peer_id: EntityId) -> None:
        peer = self._peers.pop(peer_id, None)
        if peer is None:
            return
        for other in self._peers.values():
            other.remove_neighbor(peer_id)

    def peer(self, peer_id: EntityId) -> Peer:
        try:
            return self._peers[peer_id]
        except KeyError:
            raise UnknownEntityError(f"unknown peer: {peer_id!r}") from None

    def peers(self) -> List[Peer]:
        return list(self._peers.values())

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, peer_id: EntityId) -> bool:
        return peer_id in self._peers

    # -- data ------------------------------------------------------------
    def deposit(self, peer_id: EntityId, feedback: Feedback) -> None:
        """Store feedback at *peer_id*'s local store (its own experience)."""
        self.peer(peer_id).store.add(feedback)

    # -- flooding --------------------------------------------------------
    def flood(
        self,
        origin: EntityId,
        ttl: int,
        visit: Callable[[Peer], None],
    ) -> Tuple[int, int]:
        """Breadth-first flood from *origin* with time-to-live *ttl*.

        Calls *visit* on every reached online peer (including the
        origin).  Returns ``(peers_reached, messages_sent)``.  Offline
        peers swallow messages without forwarding.
        """
        if ttl < 0:
            raise ConfigurationError("ttl must be >= 0")
        start = self.peer(origin)
        messages = 0
        reached = 0
        seen: Set[EntityId] = {origin}
        queue: deque = deque([(start, ttl)])
        while queue:
            peer, remaining = queue.popleft()
            if not peer.online:
                continue
            visit(peer)
            reached += 1
            if remaining <= 0:
                continue
            for neighbor_id in peer.neighbor_list():
                if neighbor_id in seen:
                    continue
                seen.add(neighbor_id)
                messages += 1
                if self.network is not None:
                    delivered = self.network.send(
                        peer.peer_id, neighbor_id, kind="flood-query"
                    )
                    if not delivered:
                        continue
                neighbor = self._peers.get(neighbor_id)
                if neighbor is not None:
                    queue.append((neighbor, remaining - 1))
        return reached, messages

    def poll_opinions(
        self, origin: EntityId, target: EntityId, ttl: int = 3
    ) -> Tuple[List[Feedback], int]:
        """Collect feedback about *target* from peers within *ttl* hops.

        Returns ``(opinions, messages_sent)``; response messages are
        charged one per responding peer.
        """
        opinions: List[Feedback] = []
        responders: List[EntityId] = []

        def visit(peer: Peer) -> None:
            local = peer.store.for_target(target)
            if local and peer.peer_id != origin:
                responders.append(peer.peer_id)
            opinions.extend(local)

        _, messages = self.flood(origin, ttl, visit)
        for responder in responders:
            messages += 1
            if self.network is not None:
                self.network.send(responder, origin, kind="poll-response")
        return opinions, messages
