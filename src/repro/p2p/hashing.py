"""Deterministic hashing for overlay key spaces.

Python's builtin ``hash`` is salted per process, which would make
overlay placement non-reproducible; all overlays hash through SHA-256
instead.
"""

from __future__ import annotations

import hashlib


def stable_hash(key: str, bits: int = 64) -> int:
    """Deterministic integer hash of *key* in ``[0, 2**bits)``."""
    if bits <= 0 or bits > 256:
        raise ValueError("bits must be in (0, 256]")
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    value = int.from_bytes(digest, "big")
    return value >> (256 - bits)


def to_bits(key: str, length: int) -> str:
    """Deterministic binary-string key of *length* bits for *key*."""
    if length <= 0 or length > 64:
        raise ValueError("length must be in (0, 64]")
    value = stable_hash(key, 64)
    return format(value, "064b")[:length]
