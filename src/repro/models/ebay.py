"""eBay's feedback forum — centralized / person-agent / global.

The canonical "simple and effective" global mechanism (paper Sections 4
and 5).  Buyers leave +1 / 0 / −1 feedback; the site shows a cumulative
feedback *score* (sum), a *positive percentage*, and recent-window
breakdowns.  :meth:`score` returns the Laplace-smoothed positive
fraction so the model is comparable to others on ``[0, 1]``.

Each report is a **single** append to the columnar
:class:`~repro.store.EventStore` (the former entry-list + running-totals
dual bookkeeping is gone): the scalar path replays signed counts lazily
off the store rows, recent-window summaries threshold the per-target
time column slice, and ``score_many`` reduces the sign masks with
``np.bincount`` — all counts are integers, so every path is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback, feedback_columns
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.store import EventStore, group_counts


@dataclass(frozen=True)
class FeedbackSummary:
    """What an eBay member page shows."""

    score: int
    positives: int
    neutrals: int
    negatives: int

    @property
    def positive_percentage(self) -> float:
        judged = self.positives + self.negatives
        if judged == 0:
            return 100.0
        return 100.0 * self.positives / judged


class EbayModel(ReputationModel):
    """eBay feedback: signed counts with recent-window views.

    Ratings on ``[0, 1]`` are ternarized: above ``positive_threshold``
    counts +1, below ``negative_threshold`` counts −1, else neutral.
    """

    name = "ebay"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    )
    paper_ref = "[7]"

    def __init__(
        self,
        positive_threshold: float = 2.0 / 3.0,
        negative_threshold: float = 1.0 / 3.0,
    ) -> None:
        if not 0.0 <= negative_threshold < positive_threshold <= 1.0:
            raise ConfigurationError(
                "need 0 <= negative_threshold < positive_threshold <= 1"
            )
        self.positive_threshold = positive_threshold
        self.negative_threshold = negative_threshold
        self._store = EventStore()
        #: scalar reference state keyed by entity code:
        #: [positives, negatives, total], replayed lazily off the store
        self._totals: Dict[int, List[int]] = {}
        self._replay_pos = 0
        #: columnar kernel cache: (version, positives, negatives) arrays
        self._kernel: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    def _sign(self, rating: float) -> int:
        if rating > self.positive_threshold:
            return 1
        if rating < self.negative_threshold:
            return -1
        return 0

    # -- evidence ------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        self._store.append(
            feedback.rater, feedback.target, feedback.rating, feedback.time
        )

    def record_many(self, feedbacks: Iterable[Feedback]) -> None:
        self._store.extend(*feedback_columns(feedbacks))

    def _advance(self) -> None:
        """Replay signed-count accumulation over unconsumed rows — the
        exact scalar reference (signs re-derived from stored ratings)."""
        store = self._store
        n = len(store)
        if self._replay_pos == n:
            return
        totals = self._totals
        positive_threshold = self.positive_threshold
        negative_threshold = self.negative_threshold
        # reprolint: disable=R007 — scalar reference is the per-row replay
        for _rater, target, _facet, value, _time in store.iter_rows(
            self._replay_pos
        ):
            counts = totals.get(target)
            if counts is None:
                counts = [0, 0, 0]
                totals[target] = counts
            if value > positive_threshold:
                counts[0] += 1
            elif value < negative_threshold:
                counts[1] += 1
            counts[2] += 1
        self._replay_pos = n

    def _totals_for(self, target: EntityId) -> Tuple[int, int, int]:
        self._advance()
        code = self._store.entities.code(target)
        if code < 0:
            return (0, 0, 0)
        counts = self._totals.get(code)
        if counts is None:
            return (0, 0, 0)
        return (counts[0], counts[1], counts[2])

    # -- member page ---------------------------------------------------
    def summary(
        self,
        target: EntityId,
        window: Optional[float] = None,
        now: Optional[float] = None,
    ) -> FeedbackSummary:
        """The member-page numbers, optionally restricted to a recent
        window (eBay's 1/6/12-month columns)."""
        if window is not None:
            if now is None:
                raise ConfigurationError("window requires now")
            store = self._store
            code = store.entities.code(target)
            rows = store.by_target().rows(code) if code >= 0 else None
            if rows is None or not len(rows):
                positives = negatives = total = 0
            else:
                columns = store.snapshot()
                recent = rows[now - columns.time[rows] <= window]
                values = columns.value[recent]
                positives = int(
                    np.count_nonzero(values > self.positive_threshold)
                )
                negatives = int(
                    np.count_nonzero(values < self.negative_threshold)
                )
                total = len(recent)
        else:
            positives, negatives, total = self._totals_for(target)
        return FeedbackSummary(
            score=positives - negatives,
            positives=positives,
            neutrals=total - positives - negatives,
            negatives=negatives,
        )

    # -- scalar reference ----------------------------------------------
    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        positives, negatives, _total = self._totals_for(target)
        # Laplace smoothing: no evidence scores 0.5.
        return (positives + 1.0) / (positives + negatives + 2.0)

    def score_many_reference(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """The pre-columnar batched path (hoisted gathers over the
        replayed running totals) — kept as the parity/bench reference."""
        self._advance()
        totals = self._totals
        code = self._store.entities.code
        zero = (0, 0, 0)
        out: List[float] = []
        append = out.append
        for target in targets:
            positives, negatives, _total = totals.get(code(target), zero)
            append((positives + 1.0) / (positives + negatives + 2.0))
        return out

    # -- columnar kernel -----------------------------------------------
    def _kernel_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense per-code (positives, negatives) counts reduced from the
        value column, cached per store version."""
        store = self._store
        version = store.version
        cached = self._kernel
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        columns = store.snapshot()
        size = max(len(store.entities), 1)
        positives = group_counts(
            columns.target[columns.value > self.positive_threshold], size
        )
        negatives = group_counts(
            columns.target[columns.value < self.negative_threshold], size
        )
        self._kernel = (version, positives, negatives)
        return positives, negatives

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch Laplace-smoothed positive fractions from sign-mask
        bincounts (integer counts — exact by construction)."""
        positives, negatives = self._kernel_arrays()
        codes = self._store.entities.codes(targets)
        known = codes >= 0
        safe = np.where(known, codes, 0)
        pos = np.where(known, positives[safe], 0).astype(np.float64)
        neg = np.where(known, negatives[safe], 0).astype(np.float64)
        result: List[float] = ((pos + 1.0) / (pos + neg + 2.0)).tolist()
        return result
