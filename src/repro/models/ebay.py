"""eBay's feedback forum — centralized / person-agent / global.

The canonical "simple and effective" global mechanism (paper Sections 4
and 5).  Buyers leave +1 / 0 / −1 feedback; the site shows a cumulative
feedback *score* (sum), a *positive percentage*, and recent-window
breakdowns.  :meth:`score` returns the Laplace-smoothed positive
fraction so the model is comparable to others on ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


@dataclass(frozen=True)
class _Entry:
    time: float
    sign: int  # +1, 0, -1


@dataclass(frozen=True)
class FeedbackSummary:
    """What an eBay member page shows."""

    score: int
    positives: int
    neutrals: int
    negatives: int

    @property
    def positive_percentage(self) -> float:
        judged = self.positives + self.negatives
        if judged == 0:
            return 100.0
        return 100.0 * self.positives / judged


class EbayModel(ReputationModel):
    """eBay feedback: signed counts with recent-window views.

    Ratings on ``[0, 1]`` are ternarized: above ``positive_threshold``
    counts +1, below ``negative_threshold`` counts −1, else neutral.
    """

    name = "ebay"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    )
    paper_ref = "[7]"

    def __init__(
        self,
        positive_threshold: float = 2.0 / 3.0,
        negative_threshold: float = 1.0 / 3.0,
    ) -> None:
        if not 0.0 <= negative_threshold < positive_threshold <= 1.0:
            raise ConfigurationError(
                "need 0 <= negative_threshold < positive_threshold <= 1"
            )
        self.positive_threshold = positive_threshold
        self.negative_threshold = negative_threshold
        self._entries: Dict[EntityId, List[_Entry]] = {}
        #: running (positives, negatives) per target, maintained on
        #: record so the all-time score is O(1) instead of re-scanning
        #: the member's whole history per query.
        self._totals: Dict[EntityId, List[int]] = {}

    def _sign(self, rating: float) -> int:
        if rating > self.positive_threshold:
            return 1
        if rating < self.negative_threshold:
            return -1
        return 0

    def record(self, feedback: Feedback) -> None:
        sign = self._sign(feedback.rating)
        self._entries.setdefault(feedback.target, []).append(
            _Entry(time=feedback.time, sign=sign)
        )
        totals = self._totals.setdefault(feedback.target, [0, 0])
        if sign > 0:
            totals[0] += 1
        elif sign < 0:
            totals[1] += 1

    def summary(
        self,
        target: EntityId,
        window: Optional[float] = None,
        now: Optional[float] = None,
    ) -> FeedbackSummary:
        """The member-page numbers, optionally restricted to a recent
        window (eBay's 1/6/12-month columns)."""
        entries = self._entries.get(target, [])
        if window is not None:
            if now is None:
                raise ConfigurationError("window requires now")
            entries = [e for e in entries if now - e.time <= window]
            positives = sum(1 for e in entries if e.sign > 0)
            negatives = sum(1 for e in entries if e.sign < 0)
        else:
            positives, negatives = self._totals.get(target, (0, 0))
        neutrals = len(entries) - positives - negatives
        return FeedbackSummary(
            score=positives - negatives,
            positives=positives,
            neutrals=neutrals,
            negatives=negatives,
        )

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        positives, negatives = self._totals.get(target, (0, 0))
        # Laplace smoothing: no evidence scores 0.5.
        return (positives + 1.0) / (positives + negatives + 2.0)

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch Laplace-smoothed positive fractions.

        One running-totals probe and three float ops per candidate with
        hoisted lookups — cheaper than either per-candidate dispatch or
        assembling a numpy array from per-target tuples.
        """
        totals = self._totals
        zero = (0, 0)
        out: List[float] = []
        append = out.append
        for target in targets:
            positives, negatives = totals.get(target, zero)
            append((positives + 1.0) / (positives + negatives + 2.0))
        return out
