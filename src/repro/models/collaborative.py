"""Memory-based collaborative filtering (Breese, Heckerman & Kadie).

Centralized / resource / personalized — the recommender-technology
branch of Figure 4, also covering the two CF-for-web-services systems
the survey cites: Manikrao & Prabhakar's recommendation-based dynamic
selection and Karta's investigation (whose headline question — Pearson
correlation vs. Vector Similarity — is the :class:`Similarity` switch).

Prediction for user *u* on item *i* (Breese et al., eq. 1):

.. math::

    \\hat r_{u,i} = \\bar r_u + \\kappa \\sum_v w(u, v) (r_{v,i} - \\bar r_v)

with weights from Pearson correlation over co-rated items or cosine
(vector) similarity, optional *significance weighting* (devaluing
similarities computed from few co-rated items), and a neighbourhood
size cap.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import (
    clamp,
    cosine_similarity,
    pearson_correlation,
    safe_mean,
)
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


class Similarity(enum.Enum):
    """Karta's comparison: which user-user similarity to use."""

    PEARSON = "pearson"
    COSINE = "cosine"


class CollaborativeFilteringModel(ReputationModel):
    """User-based CF over the feedback matrix.

    Args:
        similarity: Pearson correlation or vector (cosine) similarity.
        neighbourhood: max neighbours contributing to a prediction.
        significance_threshold: co-rating count below which similarity
            is linearly devalued (Herlocker's n/50 rule); 0 disables.
        min_overlap: minimum co-rated items for a similarity at all.
        default_vote: Breese et al.'s *default voting* extension — when
            set, similarities are computed over the union of the two
            users' rated items, substituting this value for the missing
            ratings.  Helps sparse matrices where true overlaps are
            rare; None (default) uses plain co-rated intersection.
    """

    name = "collaborative_filtering"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    )
    paper_ref = "[3, 13, 17]"

    def __init__(
        self,
        similarity: Similarity = Similarity.PEARSON,
        neighbourhood: int = 20,
        significance_threshold: int = 5,
        min_overlap: int = 2,
        default_vote: Optional[float] = None,
    ) -> None:
        if neighbourhood < 1:
            raise ConfigurationError("neighbourhood must be >= 1")
        if min_overlap < 1:
            raise ConfigurationError("min_overlap must be >= 1")
        if significance_threshold < 0:
            raise ConfigurationError("significance_threshold must be >= 0")
        if default_vote is not None and not 0.0 <= default_vote <= 1.0:
            raise ConfigurationError("default_vote must be in [0, 1]")
        self.similarity = similarity
        self.neighbourhood = neighbourhood
        self.significance_threshold = significance_threshold
        self.min_overlap = min_overlap
        self.default_vote = default_vote
        #: user -> item -> (time, rating); latest rating wins
        self._ratings: Dict[EntityId, Dict[EntityId, Tuple[float, float]]] = {}

    # -- data ------------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        row = self._ratings.setdefault(feedback.rater, {})
        existing = row.get(feedback.target)
        if existing is None or feedback.time >= existing[0]:
            row[feedback.target] = (feedback.time, feedback.rating)

    def rating(self, user: EntityId, item: EntityId) -> Optional[float]:
        entry = self._ratings.get(user, {}).get(item)
        return entry[1] if entry else None

    def user_mean(self, user: EntityId) -> float:
        row = self._ratings.get(user, {})
        return safe_mean((r for _, r in row.values()), default=0.5)

    def item_mean(self, item: EntityId) -> float:
        ratings = [
            entry[1]
            for row in self._ratings.values()
            for tgt, entry in row.items()
            if tgt == item
        ]
        return safe_mean(ratings, default=0.5)

    # -- similarity --------------------------------------------------------
    def user_similarity(
        self, user_a: EntityId, user_b: EntityId
    ) -> Optional[float]:
        """Similarity of two users over co-rated items (None if < overlap).

        With ``default_vote`` set, the item set is the union of both
        users' rated items and missing ratings take the default value.
        """
        row_a = self._ratings.get(user_a, {})
        row_b = self._ratings.get(user_b, {})
        common = sorted(set(row_a) & set(row_b))
        if len(common) < self.min_overlap:
            return None
        if self.default_vote is not None:
            items = sorted(set(row_a) | set(row_b))
            d = self.default_vote
            xs = [row_a[i][1] if i in row_a else d for i in items]
            ys = [row_b[i][1] if i in row_b else d for i in items]
        else:
            xs = [row_a[i][1] for i in common]
            ys = [row_b[i][1] for i in common]
        if self.similarity is Similarity.PEARSON:
            sim = pearson_correlation(xs, ys)
        else:
            sim = cosine_similarity(xs, ys)
        if sim is None:
            return None
        if self.significance_threshold > 0:
            sim *= min(1.0, len(common) / self.significance_threshold)
        return sim

    def _neighbours(
        self, user: EntityId, item: EntityId
    ) -> List[Tuple[EntityId, float]]:
        """(neighbour, similarity) pairs who rated *item*, best first."""
        candidates: List[Tuple[EntityId, float]] = []
        for other, row in self._ratings.items():
            if other == user or item not in row:
                continue
            sim = self.user_similarity(user, other)
            if sim is None or sim <= 0:
                continue
            candidates.append((other, sim))
        candidates.sort(key=lambda pair: (-pair[1], pair[0]))
        return candidates[: self.neighbourhood]

    # -- prediction ----------------------------------------------------------
    def predict(self, user: EntityId, item: EntityId) -> float:
        """Predicted rating of *item* for *user* on ``[0, 1]``.

        Falls back to the item mean (then 0.5) when the user is unknown
        or no positively-similar neighbour rated the item.
        """
        own = self.rating(user, item)
        if own is not None:
            return own
        if user not in self._ratings:
            return self.item_mean(item)
        neighbours = self._neighbours(user, item)
        if not neighbours:
            return self.item_mean(item)
        base = self.user_mean(user)
        numerator = 0.0
        denominator = 0.0
        for other, sim in neighbours:
            deviation = self._ratings[other][item][1] - self.user_mean(other)
            numerator += sim * deviation
            denominator += abs(sim)
        if denominator <= 0:
            return self.item_mean(item)
        return clamp(base + numerator / denominator, 0.0, 1.0)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        if perspective is None:
            return self.item_mean(target)
        return self.predict(perspective, target)

    # -- batch prediction --------------------------------------------------
    def _item_means(self, items: Sequence[EntityId]) -> Dict[EntityId, float]:
        """Means for several items in one pass over the rating matrix."""
        wanted = set(items)
        sums: Dict[EntityId, float] = {}
        counts: Dict[EntityId, int] = {}
        for row in self._ratings.values():
            for tgt, entry in row.items():
                if tgt in wanted:
                    sums[tgt] = sums.get(tgt, 0.0) + entry[1]
                    counts[tgt] = counts.get(tgt, 0) + 1
        return {
            item: (sums[item] / counts[item] if counts.get(item) else 0.5)
            for item in sorted(wanted)
        }

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch predictions with shared similarity/mean caches.

        User-user similarity is item-independent, so one cache entry per
        neighbour serves the whole candidate set — the per-candidate
        loop recomputes every similarity for every item, which is the
        dominant cost of memory-based CF.
        """
        if not targets:
            return []
        item_means = self._item_means(targets)
        if perspective is None or perspective not in self._ratings:
            # No perspective, or an unknown user: item-mean fallback.
            return [item_means[t] for t in targets]
        user = perspective
        row_user = self._ratings[user]
        sim_cache: Dict[EntityId, Optional[float]] = {}
        mean_cache: Dict[EntityId, float] = {}

        def mean_of(member: EntityId) -> float:
            cached = mean_cache.get(member)
            if cached is None:
                cached = self.user_mean(member)
                mean_cache[member] = cached
            return cached

        def similarity_to(other: EntityId) -> Optional[float]:
            if other in sim_cache:
                return sim_cache[other]
            sim = self.user_similarity(user, other)
            sim_cache[other] = sim
            return sim

        results: List[float] = []
        for item in targets:
            own = row_user.get(item)
            if own is not None:
                results.append(own[1])
                continue
            candidates: List[Tuple[EntityId, float]] = []
            for other, row in self._ratings.items():
                if other == user or item not in row:
                    continue
                sim = similarity_to(other)
                if sim is None or sim <= 0:
                    continue
                candidates.append((other, sim))
            candidates.sort(key=lambda pair: (-pair[1], pair[0]))
            neighbours = candidates[: self.neighbourhood]
            if not neighbours:
                results.append(item_means[item])
                continue
            base = mean_of(user)
            numerator = 0.0
            denominator = 0.0
            for other, sim in neighbours:
                deviation = self._ratings[other][item][1] - mean_of(other)
                numerator += sim * deviation
                denominator += abs(sim)
            if denominator <= 0:
                results.append(item_means[item])
            else:
                results.append(clamp(base + numerator / denominator, 0.0, 1.0))
        return results
