"""Sporas (Zacharia, Moukas & Maes) — centralized / person-agent / global.

Reputation evolves recursively with each new rating:

.. math::

    R_{i+1} = R_i + \\frac{1}{\\theta} \\cdot \\Phi(R_i) \\cdot
              R^{other}_{i+1} \\cdot (W_{i+1} - E_{i+1})

where :math:`E = R_i / D` is the expected rating, :math:`W` the received
rating, :math:`R^{other}` the (normalized) reputation of the rater, and
:math:`\\Phi(R) = 1 - 1/(1 + e^{-(R - D)/\\sigma})` the damping that
slows changes for very reputable users.  Reputation lives in
``[0, D]``; new users start at 0 (so identity-switching cannot help —
the design goal Zacharia emphasizes).

A *reliability deviation* (RD) tracks rating volatility via an
exponentially-weighted squared prediction error.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


class SporasModel(ReputationModel):
    """Sporas recursive reputation.

    Args:
        d: maximum reputation (Zacharia uses 3000).
        theta: effective number of ratings remembered (>1).
        sigma: damping slope of :math:`\\Phi`.
        rd_memory: EWMA factor for the reliability deviation.
    """

    name = "sporas"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    )
    paper_ref = "[37]"

    def __init__(
        self,
        d: float = 3000.0,
        theta: float = 10.0,
        sigma: Optional[float] = None,
        rd_memory: float = 0.9,
    ) -> None:
        if d <= 0:
            raise ConfigurationError("d must be positive")
        if theta <= 1:
            raise ConfigurationError("theta must be > 1")
        if not 0.0 < rd_memory < 1.0:
            raise ConfigurationError("rd_memory must be in (0, 1)")
        self.d = d
        self.theta = theta
        self.sigma = sigma if sigma is not None else d / 10.0
        if self.sigma <= 0:
            raise ConfigurationError("sigma must be positive")
        self.rd_memory = rd_memory
        self._reputation: Dict[EntityId, float] = {}
        self._rd: Dict[EntityId, float] = {}
        self._count: Dict[EntityId, int] = {}

    def _phi(self, reputation: float) -> float:
        return 1.0 - 1.0 / (1.0 + math.exp(-(reputation - self.d) / self.sigma))

    def record(self, feedback: Feedback) -> None:
        target = feedback.target
        current = self._reputation.get(target, 0.0)
        rater_rep = self._reputation.get(feedback.rater, 0.0)
        # Rater weight: at least a newcomer's influence, normalized to
        # [newcomer_floor, 1].  Zacharia multiplies by R_other/D; a pure
        # zero would let fresh raters have no effect at bootstrap, so a
        # small floor keeps the system live.
        rater_weight = max(rater_rep / self.d, 0.1)
        expected = current / self.d
        w = feedback.rating  # already on [0, 1]
        updated = current + (1.0 / self.theta) * self._phi(current) * (
            rater_weight * self.d
        ) * (w - expected)
        updated = max(0.0, min(self.d, updated))
        self._reputation[target] = updated
        # Reliability deviation: EWMA of squared prediction error.
        error = (w - expected) ** 2
        prev_rd = self._rd.get(target, 0.25)
        self._rd[target] = self.rd_memory * prev_rd + (1 - self.rd_memory) * error
        self._count[target] = self._count.get(target, 0) + 1

    def reputation(self, target: EntityId) -> float:
        """Raw Sporas reputation on ``[0, D]``."""
        return self._reputation.get(target, 0.0)

    def reliability_deviation(self, target: EntityId) -> float:
        """Volatility of *target*'s ratings (lower = more reliable)."""
        return math.sqrt(self._rd.get(target, 0.25))

    def ratings_seen(self, target: EntityId) -> int:
        return self._count.get(target, 0)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        return self._reputation.get(target, 0.0) / self.d

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch gather of the recursive reputations, scaled by D.

        One dict probe and one divide per candidate with hoisted
        lookups — the numpy round-trip costs more than it saves at
        ranking-sized batches.
        """
        reputation = self._reputation
        d = self.d
        return [reputation.get(target, 0.0) / d for target in targets]
