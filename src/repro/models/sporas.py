"""Sporas (Zacharia, Moukas & Maes) — centralized / person-agent / global.

Reputation evolves recursively with each new rating:

.. math::

    R_{i+1} = R_i + \\frac{1}{\\theta} \\cdot \\Phi(R_i) \\cdot
              R^{other}_{i+1} \\cdot (W_{i+1} - E_{i+1})

where :math:`E = R_i / D` is the expected rating, :math:`W` the received
rating, :math:`R^{other}` the (normalized) reputation of the rater, and
:math:`\\Phi(R) = 1 - 1/(1 + e^{-(R - D)/\\sigma})` the damping that
slows changes for very reputable users.  Reputation lives in
``[0, D]``; new users start at 0 (so identity-switching cannot help —
the design goal Zacharia emphasizes).

A *reliability deviation* (RD) tracks rating volatility via an
exponentially-weighted squared prediction error.

Events live in the columnar :class:`~repro.store.EventStore`; the
scalar path replays the recursion lazily.  The columnar kernel exploits
that the recursion couples targets only *through raters*: when no
entity is both a rater and a target (the common web-service shape —
consumers rate services), every rater weight is the newcomer floor and
the per-target recursions are independent, so the kernel runs them as
vectorized *rounds* — round k applies every target's k-th rating at
once.  Coupled streams fall back to the exact scalar replay.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback, feedback_columns
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.store import EventStore


class SporasModel(ReputationModel):
    """Sporas recursive reputation.

    Args:
        d: maximum reputation (Zacharia uses 3000).
        theta: effective number of ratings remembered (>1).
        sigma: damping slope of :math:`\\Phi`.
        rd_memory: EWMA factor for the reliability deviation.
    """

    name = "sporas"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    )
    paper_ref = "[37]"

    #: rater-weight floor for newcomers (see :meth:`record`)
    NEWCOMER_FLOOR = 0.1

    def __init__(
        self,
        d: float = 3000.0,
        theta: float = 10.0,
        sigma: Optional[float] = None,
        rd_memory: float = 0.9,
    ) -> None:
        if d <= 0:
            raise ConfigurationError("d must be positive")
        if theta <= 1:
            raise ConfigurationError("theta must be > 1")
        if not 0.0 < rd_memory < 1.0:
            raise ConfigurationError("rd_memory must be in (0, 1)")
        self.d = d
        self.theta = theta
        self.sigma = sigma if sigma is not None else d / 10.0
        if self.sigma <= 0:
            raise ConfigurationError("sigma must be positive")
        self.rd_memory = rd_memory
        self._store = EventStore()
        #: scalar reference state keyed by entity code, replayed lazily
        self._reputation: Dict[int, float] = {}
        self._rd: Dict[int, float] = {}
        self._count: Dict[int, int] = {}
        self._replay_pos = 0
        #: columnar kernel cache: (version, reputations | None)
        self._kernel: Optional[Tuple[int, Optional[np.ndarray]]] = None

    def _phi(self, reputation: float) -> float:
        return 1.0 - 1.0 / (1.0 + math.exp(-(reputation - self.d) / self.sigma))

    # -- evidence ------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        self._store.append(
            feedback.rater, feedback.target, feedback.rating, feedback.time
        )

    def record_many(self, feedbacks: Iterable[Feedback]) -> None:
        self._store.extend(*feedback_columns(feedbacks))

    def _advance(self) -> None:
        """Replay the Zacharia recursion over unconsumed store rows —
        the exact scalar reference.

        Rater weight: at least a newcomer's influence, normalized to
        [newcomer_floor, 1].  Zacharia multiplies by R_other/D; a pure
        zero would let fresh raters have no effect at bootstrap, so a
        small floor keeps the system live.
        """
        store = self._store
        n = len(store)
        if self._replay_pos == n:
            return
        reputation = self._reputation
        rd = self._rd
        count = self._count
        d = self.d
        inv_theta = 1.0 / self.theta
        rd_memory = self.rd_memory
        floor = self.NEWCOMER_FLOOR
        # reprolint: disable=R007 — scalar reference is the per-row replay
        for rater, target, _facet, value, _time in store.iter_rows(
            self._replay_pos
        ):
            current = reputation.get(target, 0.0)
            rater_weight = max(reputation.get(rater, 0.0) / d, floor)
            expected = current / d
            updated = current + inv_theta * self._phi(current) * (
                rater_weight * d
            ) * (value - expected)
            reputation[target] = max(0.0, min(d, updated))
            error = (value - expected) ** 2
            prev_rd = rd.get(target, 0.25)
            rd[target] = rd_memory * prev_rd + (1 - rd_memory) * error
            count[target] = count.get(target, 0) + 1
        self._replay_pos = n

    # -- accessors (scalar reference) ----------------------------------
    def _code(self, target: EntityId) -> int:
        return self._store.entities.code(target)

    def reputation(self, target: EntityId) -> float:
        """Raw Sporas reputation on ``[0, D]``."""
        self._advance()
        return self._reputation.get(self._code(target), 0.0)

    def reliability_deviation(self, target: EntityId) -> float:
        """Volatility of *target*'s ratings (lower = more reliable)."""
        self._advance()
        return math.sqrt(self._rd.get(self._code(target), 0.25))

    def ratings_seen(self, target: EntityId) -> int:
        self._advance()
        return self._count.get(self._code(target), 0)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        return self.reputation(target) / self.d

    def score_many_reference(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """The pre-columnar batched path (hoisted gathers over the
        replayed recursion state) — kept as the parity/bench reference."""
        self._advance()
        reputation = self._reputation
        code = self._store.entities.code
        d = self.d
        return [
            reputation.get(code(target), 0.0) / d for target in targets
        ]

    # -- columnar kernel -----------------------------------------------
    def _kernel_array(self) -> Optional[np.ndarray]:
        """Dense per-code reputations from the vectorized-rounds kernel,
        or ``None`` when the stream couples raters and targets (then the
        exact scalar replay is the only correct evaluation order)."""
        store = self._store
        version = store.version
        cached = self._kernel
        if cached is not None and cached[0] == version:
            return cached[1]
        columns = store.snapshot()
        result: Optional[np.ndarray]
        if not columns.n:
            result = np.zeros(max(len(store.entities), 1))
        elif np.intersect1d(
            np.unique(columns.rater), np.unique(columns.target)
        ).size:
            result = None  # coupled stream: rater weights depend on order
        else:
            # Disjoint raters/targets: every rater keeps reputation 0, so
            # rater_weight is the constant newcomer floor and targets
            # evolve independently.  Group rows by target (stable, so
            # within-group order = event order), then sweep rank rounds:
            # round k fancy-gathers the state of every target receiving
            # its k-th rating, applies the update, and scatters back.
            index = store.by_target()
            ranks = index.ranks()
            sorted_targets = columns.target[index.order]
            round_order = np.lexsort((sorted_targets, ranks))
            rows = index.order[round_order]
            round_ranks = ranks[round_order]
            targets_by_round = columns.target[rows]
            values_by_round = columns.value[rows]
            max_rank = int(round_ranks[-1])
            bounds = np.searchsorted(
                round_ranks, np.arange(max_rank + 2)
            )
            d = self.d
            gain = (1.0 / self.theta) * (self.NEWCOMER_FLOOR * d)
            inv_sigma = 1.0 / self.sigma
            state = np.zeros(max(len(store.entities), 1))
            for k in range(max_rank + 1):
                lo, hi = int(bounds[k]), int(bounds[k + 1])
                tc = targets_by_round[lo:hi]
                current = state[tc]
                phi = 1.0 - 1.0 / (
                    1.0 + np.exp(-(current - d) * inv_sigma)
                )
                updated = current + gain * phi * (
                    values_by_round[lo:hi] - current / d
                )
                np.clip(updated, 0.0, d, out=updated)
                state[tc] = updated
            result = state
        self._kernel = (version, result)
        return result

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch reputations from the rounds kernel (gather + divide);
        coupled streams use the scalar-replay reference instead."""
        state = self._kernel_array()
        if state is None:
            return self.score_many_reference(targets, perspective, now)
        codes = self._store.entities.codes(targets)
        known = codes >= 0
        safe = np.where(known, codes, 0)
        scaled = np.where(known, state[safe], 0.0) / self.d
        result: List[float] = scaled.tolist()
        return result
