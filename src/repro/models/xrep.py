"""XRep (Damiani et al.) — decentralized / resource / global.

A polling protocol for P2P networks: before using a resource, a servent
broadcasts a poll; peers respond with votes on the resource (and on the
servent offering it).  Two XRep defenses are reproduced:

* **vote clustering** — votes arriving from the same "network locality"
  (here: a rater's declared cluster key, the IP-prefix analogue) are
  collapsed toward a single effective vote, deflating ballot-stuffing
  from one locality, and
* **combined resource + servent reputation** — a resource vouched for
  by ill-reputed servents is suspect even with good resource votes.

Runs standalone on recorded feedback, or live over an
:class:`~repro.p2p.unstructured.UnstructuredOverlay` via :meth:`poll`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.p2p.unstructured import UnstructuredOverlay


class XRepModel(ReputationModel):
    """Poll-based resource reputation with vote clustering.

    Args:
        cluster_weight: effective weight of *k* same-cluster votes is
            ``1 + cluster_weight * (k - 1)`` — 0 collapses a cluster to
            one vote, 1 disables clustering.
        servent_blend: share of the final score taken from the offering
            servents' own reputation (0 scores resources alone).
        positive_threshold: rating above this counts as a positive vote.
    """

    name = "xrep"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.RESOURCE, Scope.GLOBAL
    )
    paper_ref = "[4]"

    def __init__(
        self,
        cluster_weight: float = 0.2,
        servent_blend: float = 0.3,
        positive_threshold: float = 0.5,
    ) -> None:
        if not 0.0 <= cluster_weight <= 1.0:
            raise ConfigurationError("cluster_weight must be in [0, 1]")
        if not 0.0 <= servent_blend <= 1.0:
            raise ConfigurationError("servent_blend must be in [0, 1]")
        self.cluster_weight = cluster_weight
        self.servent_blend = servent_blend
        self.positive_threshold = positive_threshold
        #: target -> list of (rater, rating)
        self._votes: Dict[EntityId, List[Tuple[EntityId, float]]] = {}
        #: rater -> declared cluster key (defaults to the rater itself)
        self._clusters: Dict[EntityId, str] = {}
        #: resource -> servents offering it
        self._offered_by: Dict[EntityId, List[EntityId]] = {}

    # -- wiring ------------------------------------------------------------
    def assign_cluster(self, rater: EntityId, cluster: str) -> None:
        """Declare *rater*'s network locality (IP-prefix analogue)."""
        self._clusters[rater] = cluster

    def register_offer(self, resource: EntityId, servent: EntityId) -> None:
        """Record that *servent* offers *resource*."""
        offered = self._offered_by.setdefault(resource, [])
        if servent not in offered:
            offered.append(servent)

    def record(self, feedback: Feedback) -> None:
        self._votes.setdefault(feedback.target, []).append(
            (feedback.rater, feedback.rating)
        )

    # -- scoring -------------------------------------------------------------
    def _clustered_tally(
        self, votes: "list[tuple[EntityId, float]]"
    ) -> Tuple[float, float]:
        """(positive_weight, negative_weight) after cluster deflation."""
        by_cluster: Dict[str, List[float]] = defaultdict(list)
        for rater, rating in votes:
            cluster = self._clusters.get(rater, rater)
            by_cluster[cluster].append(rating)
        positive = 0.0
        negative = 0.0
        for ratings in by_cluster.values():
            k = len(ratings)
            weight = 1.0 + self.cluster_weight * (k - 1)
            pos_share = sum(
                1 for r in ratings if r > self.positive_threshold
            ) / k
            positive += weight * pos_share
            negative += weight * (1.0 - pos_share)
        return positive, negative

    def resource_reputation(self, resource: EntityId) -> float:
        votes = self._votes.get(resource, [])
        if not votes:
            return 0.5
        positive, negative = self._clustered_tally(votes)
        return (positive + 1.0) / (positive + negative + 2.0)

    def servent_reputation(self, servent: EntityId) -> float:
        """A servent's standing: votes on it directly (as a target)."""
        return self.resource_reputation(servent)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        resource_rep = self.resource_reputation(target)
        servents = self._offered_by.get(target)
        if not servents or self.servent_blend <= 0:
            return resource_rep
        servent_rep = sum(
            self.servent_reputation(s) for s in servents
        ) / len(servents)
        return (
            (1.0 - self.servent_blend) * resource_rep
            + self.servent_blend * servent_rep
        )

    # -- live polling ------------------------------------------------------------
    def poll(
        self,
        overlay: UnstructuredOverlay,
        origin: EntityId,
        resource: EntityId,
        ttl: int = 3,
    ) -> Tuple[float, int]:
        """Run an XRep poll over *overlay* and score from the responses.

        Returns ``(score, messages)``.  Collected opinions are recorded
        into this model (polls accumulate knowledge, as in XRep).
        """
        opinions, messages = overlay.poll_opinions(origin, resource, ttl=ttl)
        for fb in opinions:
            if (fb.rater, fb.rating) not in self._votes.get(fb.target, []):
                self.record(fb)
        return self.score(resource), messages
