"""Wang & Vassileva's Bayesian-network trust — decentralized /
person-agent / personalized.

The authors' own P2P trust model (their [30, 31]): each agent maintains
a naive-Bayes model per partner, learning ``P(satisfying | facets)``
from its interaction history.  Trust is the posterior probability that
the next interaction will be satisfying, per QoS facet and overall, so
different agents (with different experiences and different facet
weightings) hold genuinely different trust in the same partner —
personalized by construction.

Two trust kinds, as in the original: trust in a partner as a *provider*
of service (competence) and trust as a *rater* (credibility of its
recommendations), the latter learned from how its recommendations
matched subsequent experience.

Feedback lives in the columnar :class:`~repro.store.EventStore` (one
overall row plus one row per facet rating); the per-agent partner
models are replayed lazily — the exact scalar reference.  The
recommendation channel has no feedback event behind it, so rater
evidence stays eager (pairs tracked in insertion order, with an epoch
counter invalidating kernels).  ``score_many`` reduces the (rater,
target) pair universe with ``np.unique`` + ``np.bincount``: per-pair
Laplace posteriors, then one pooling pass per perspective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.store import EventStore, OVERALL_FACET


@dataclass
class _FacetCounts:
    """Satisfied/unsatisfied counts for one facet of one partner."""

    satisfied: float = 0.0
    unsatisfied: float = 0.0

    def update(self, satisfying: bool, weight: float = 1.0) -> None:
        if satisfying:
            self.satisfied += weight
        else:
            self.unsatisfied += weight

    def probability(self, prior: float = 0.5, strength: float = 2.0) -> float:
        """Laplace-style posterior P(satisfying)."""
        total = self.satisfied + self.unsatisfied
        return (self.satisfied + prior * strength) / (total + strength)


@dataclass
class _PartnerModel:
    """One agent's learned model of one partner as a *provider*.

    Rater credibility lives in ``WangVassilevaModel._rater_cred``, not
    here: the recommendation channel is eager while provider evidence
    is replayed lazily, and keeping them separate lets the columnar
    kernel read credibility without forcing a replay.
    """

    overall: _FacetCounts = field(default_factory=_FacetCounts)
    facets: Dict[int, _FacetCounts] = field(default_factory=dict)


class WangVassilevaModel(ReputationModel):
    """Per-agent naive-Bayes trust with facet decomposition.

    Args:
        satisfaction_threshold: rating above which an interaction counts
            as satisfying.
        facet_weights: default facet importance for overall trust; when
            None, facets observed in feedback are weighted uniformly.
        recommendation_tolerance: how close a recommendation must be to
            the subsequent experience to count as credible.
    """

    name = "wang_vassileva"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    )
    paper_ref = "[30, 31]"

    def __init__(
        self,
        satisfaction_threshold: float = 0.5,
        facet_weights: Optional[Mapping[str, float]] = None,
        recommendation_tolerance: float = 0.2,
    ) -> None:
        if not 0.0 <= satisfaction_threshold <= 1.0:
            raise ConfigurationError(
                "satisfaction_threshold must be in [0, 1]"
            )
        if not 0.0 < recommendation_tolerance <= 1.0:
            raise ConfigurationError(
                "recommendation_tolerance must be in (0, 1]"
            )
        self.satisfaction_threshold = satisfaction_threshold
        self.facet_weights = dict(facet_weights) if facet_weights else None
        self.recommendation_tolerance = recommendation_tolerance
        self._store = EventStore()
        #: perspective agent code -> partner code -> learned model;
        #: replayed lazily from feedback rows, mutated eagerly by the
        #: recommendation channel
        self._models: Dict[int, Dict[int, _PartnerModel]] = {}
        self._replay_pos = 0
        #: recommendation-created (agent, recommender) code pairs in
        #: insertion order (a dict, not a set: iteration must be
        #: deterministic) + an epoch counter for kernel invalidation
        self._rec_pairs: Dict[Tuple[int, int], None] = {}
        self._rec_epoch = 0
        #: eager credibility evidence per (agent, recommender) pair —
        #: the recommendation channel has no store rows behind it
        self._rater_cred: Dict[Tuple[int, int], _FacetCounts] = {}
        #: columnar kernel caches: pair reductions per (version, epoch),
        #: pooled score arrays per perspective code
        self._kernel_base: Optional[
            Tuple[Tuple[int, int], Dict[str, np.ndarray]]
        ] = None
        self._kernel_scores: Dict[Optional[int], np.ndarray] = {}

    def _model(self, agent: int, partner: int) -> _PartnerModel:
        return self._models.setdefault(agent, {}).setdefault(
            partner, _PartnerModel()
        )

    # -- learning ------------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        """The rater's own experience updates its model of the target:
        one overall store row plus one row per facet rating."""
        store = self._store
        store.append(
            feedback.rater, feedback.target, feedback.rating, feedback.time
        )
        for facet, rating in feedback.facet_ratings.items():
            store.append(
                feedback.rater, feedback.target, rating, feedback.time,
                facet=facet,
            )

    def _advance(self) -> None:
        """Replay naive-Bayes count accumulation over unconsumed store
        rows — the exact scalar reference."""
        store = self._store
        n = len(store)
        if self._replay_pos == n:
            return
        threshold = self.satisfaction_threshold
        # reprolint: disable=R007 — scalar reference is the per-row replay
        for rater, target, facet, value, _time in store.iter_rows(
            self._replay_pos
        ):
            model = self._model(rater, target)
            if facet == OVERALL_FACET:
                model.overall.update(value > threshold)
            else:
                model.facets.setdefault(
                    facet, _FacetCounts()
                ).update(value > threshold)
        self._replay_pos = n

    def record_recommendation(
        self,
        agent: EntityId,
        recommender: EntityId,
        recommended_rating: float,
        experienced_rating: float,
    ) -> None:
        """Update *agent*'s rater-trust in *recommender*.

        Credible when the recommendation landed within tolerance of what
        *agent* then experienced.
        """
        intern = self._store.entities.intern
        pair = (intern(agent), intern(recommender))
        credible = (
            abs(recommended_rating - experienced_rating)
            <= self.recommendation_tolerance
        )
        self._rater_cred.setdefault(pair, _FacetCounts()).update(credible)
        # Register the pair as an (empty) partner model so the scalar
        # paths pool over the same pair universe as the columnar kernel:
        # a recommendation-only pair contributes provider trust 0.5 with
        # zero own evidence.
        self._model(*pair)
        self._rec_pairs[pair] = None
        self._rec_epoch += 1

    def _rater_weight(self, agent: int, other: int) -> float:
        """How much *agent* trusts *other* as a rater (0.5 with no
        recommendation history)."""
        cred = self._rater_cred.get((agent, other))
        return cred.probability() if cred is not None else 0.5

    # -- queries (scalar reference) -------------------------------------------
    def _lookup(self, agent: EntityId, partner: EntityId) -> Optional[_PartnerModel]:
        self._advance()
        code = self._store.entities.code
        return self._models.get(code(agent), {}).get(code(partner))

    def _provider_trust(
        self,
        model: Optional[_PartnerModel],
        facet_weights: Optional[Mapping[str, float]] = None,
    ) -> float:
        if model is None:
            return 0.5
        weights = facet_weights or self.facet_weights
        if not model.facets or not weights:
            return model.overall.probability()
        facet_name = self._store.facets.value
        total = 0.0
        weight_sum = 0.0
        for facet, counts in model.facets.items():
            w = weights.get(facet_name(facet), 0.0)
            if w <= 0:
                continue
            total += w * counts.probability()
            weight_sum += w
        if weight_sum <= 0:
            return model.overall.probability()
        return total / weight_sum

    def provider_trust(
        self,
        agent: EntityId,
        partner: EntityId,
        facet_weights: Optional[Mapping[str, float]] = None,
    ) -> float:
        """P(next interaction satisfying), facet-weighted."""
        return self._provider_trust(
            self._lookup(agent, partner), facet_weights
        )

    def rater_trust(self, agent: EntityId, partner: EntityId) -> float:
        """Trust in *partner*'s recommendations (credibility)."""
        code = self._store.entities.code
        return self._rater_weight(code(agent), code(partner))

    def recommendation_weighted_reputation(
        self, agent: EntityId, target: EntityId
    ) -> Optional[float]:
        """Pool other agents' trust in *target*, weighted by how much
        *agent* trusts each of them as a rater."""
        self._advance()
        code = self._store.entities.code
        agent_code = code(agent)
        target_code = code(target)
        total = 0.0
        weight_sum = 0.0
        for other, partners in self._models.items():
            if other == agent_code or target_code not in partners:
                continue
            opinion = self._provider_trust(partners[target_code])
            weight = self._rater_weight(agent_code, other)
            total += weight * opinion
            weight_sum += weight
        if weight_sum <= 0:
            return None
        return total / weight_sum

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        self._advance()
        code = self._store.entities.code
        target_code = code(target)
        if perspective is None:
            # Global fallback: mean of all agents' provider trust.
            opinions = [
                self._provider_trust(partners[target_code])
                for partners in self._models.values()
                if target_code in partners
            ]
            if not opinions:
                return 0.5
            return sum(opinions) / len(opinions)
        model = self._models.get(code(perspective), {}).get(target_code)
        own = self._provider_trust(model)
        own_evidence = (
            model.overall.satisfied + model.overall.unsatisfied
            if model
            else 0.0
        )
        pooled = self.recommendation_weighted_reputation(perspective, target)
        if pooled is None:
            return own
        # Blend: own experience dominates as it accumulates.
        own_weight = own_evidence / (own_evidence + 2.0)
        return own_weight * own + (1.0 - own_weight) * pooled

    def score_many_reference(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """The pre-columnar batched path: one sweep over the (agent,
        partner) models sharing the rater-credibility weights — kept as
        the parity/bench reference."""
        if not targets:
            return []
        self._advance()
        code = self._store.entities.code
        target_codes = [code(t) for t in targets]
        if perspective is None:
            wanted = set(target_codes)
            sums: Dict[int, float] = {}
            counts: Dict[int, int] = {}
            for partners in self._models.values():
                for target, model in partners.items():
                    if target in wanted:
                        sums[target] = sums.get(target, 0.0) + (
                            self._provider_trust(model)
                        )
                        counts[target] = counts.get(target, 0) + 1
            return [
                sums[t] / counts[t] if counts.get(t) else 0.5
                for t in target_codes
            ]
        persp = code(perspective)
        persp_models = self._models.get(persp, {})
        rater_memo: Dict[int, float] = {}
        wanted = set(target_codes)
        pooled_total: Dict[int, float] = {}
        pooled_weight: Dict[int, float] = {}
        for other, partners in self._models.items():
            if other == persp:
                continue
            weight: Optional[float] = None
            for target, model in partners.items():
                if target not in wanted:
                    continue
                if weight is None:
                    weight = rater_memo.get(other)
                    if weight is None:
                        weight = self._rater_weight(persp, other)
                        rater_memo[other] = weight
                opinion = self._provider_trust(model)
                pooled_total[target] = (
                    pooled_total.get(target, 0.0) + weight * opinion
                )
                pooled_weight[target] = (
                    pooled_weight.get(target, 0.0) + weight
                )
        results: List[float] = []
        for target in target_codes:
            model = persp_models.get(target)
            own = self._provider_trust(model)
            weight_sum = pooled_weight.get(target, 0.0)
            if weight_sum <= 0:
                results.append(own)
                continue
            pooled = pooled_total[target] / weight_sum
            own_evidence = (
                model.overall.satisfied + model.overall.unsatisfied
                if model
                else 0.0
            )
            own_weight = own_evidence / (own_evidence + 2.0)
            results.append(own_weight * own + (1.0 - own_weight) * pooled)
        return results

    # -- columnar kernel -------------------------------------------------------
    def _pair_arrays(self) -> Dict[str, np.ndarray]:
        """Per-(rater, target) posteriors over the pair universe (store
        pairs plus recommendation-created pairs), cached per
        (version, recommendation epoch)."""
        store = self._store
        key = (store.version, self._rec_epoch)
        cached = self._kernel_base
        if cached is not None and cached[0] == key:
            return cached[1]
        columns = store.snapshot()
        overall = columns.facet == OVERALL_FACET
        pair_keys = columns.pair_keys()[overall]
        values = columns.value[overall]
        upairs, inverse = np.unique(pair_keys, return_inverse=True)
        npairs = len(upairs)
        satisfying = (values > self.satisfaction_threshold).astype(
            np.float64
        )
        sat = np.bincount(inverse, weights=satisfying, minlength=npairs)
        tot = np.bincount(inverse, minlength=npairs).astype(np.float64)
        trust = (sat + 1.0) / (tot + 2.0)
        weights = self.facet_weights
        if weights:
            trust = self._facet_weighted(
                columns, upairs, trust, weights
            )
        # Recommendation-only pairs: a partner model with empty overall
        # counts — provider trust 0.5, zero own evidence.
        if self._rec_pairs:
            rec = np.fromiter(
                (
                    (np.int64(a) << 32) | np.int64(r)
                    for a, r in self._rec_pairs
                ),
                dtype=np.int64,
                count=len(self._rec_pairs),
            )
            fresh = rec[~np.isin(rec, upairs)]
            if len(fresh):
                upairs = np.concatenate([upairs, fresh])
                trust = np.concatenate(
                    [trust, np.full(len(fresh), 0.5)]
                )
                tot = np.concatenate(
                    [tot, np.zeros(len(fresh))]
                )
        base = {
            "pair_rater": (upairs >> 32).astype(np.int64),
            "pair_target": (upairs & 0xFFFFFFFF).astype(np.int64),
            "trust": trust,
            "tot": tot,
        }
        self._kernel_base = (key, base)
        self._kernel_scores = {}
        return base

    def _facet_weighted(
        self,
        columns: "np.ndarray",
        upairs: np.ndarray,
        overall_trust: np.ndarray,
        weights: Mapping[str, float],
    ) -> np.ndarray:
        """Facet-weighted provider trust per pair, falling back to the
        overall posterior for pairs without (weighted) facet evidence."""
        facet_rows = columns.facet != OVERALL_FACET
        if not np.any(facet_rows):
            return overall_trust
        pair_of_facet_rows = columns.pair_keys()[facet_rows]
        # record() writes an overall row with every report, so every
        # facet-row pair is present in upairs.
        pos_all = np.searchsorted(upairs, pair_of_facet_rows)
        has_facet = np.bincount(pos_all, minlength=len(upairs)) > 0
        wsum = np.zeros(len(upairs))
        wtot = np.zeros(len(upairs))
        facet_codes = columns.facet[facet_rows]
        facet_values = columns.value[facet_rows]
        threshold = self.satisfaction_threshold
        code_of = self._store.facets.code
        for name, w in weights.items():
            facet = code_of(name)
            if w <= 0 or facet < 0:
                continue
            mask = facet_codes == facet
            if not np.any(mask):
                continue
            up_f, inv_f = np.unique(
                pair_of_facet_rows[mask], return_inverse=True
            )
            sat_f = np.bincount(
                inv_f,
                weights=(facet_values[mask] > threshold).astype(
                    np.float64
                ),
            )
            tot_f = np.bincount(inv_f).astype(np.float64)
            prob_f = (sat_f + 1.0) / (tot_f + 2.0)
            pos = np.searchsorted(upairs, up_f)
            wsum[pos] += w
            wtot[pos] += w * prob_f
        return np.where(
            has_facet & (wsum > 0), wtot / np.maximum(wsum, 1e-300),
            overall_trust,
        )

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch scores: pair-posterior reductions plus one pooling
        bincount per perspective, then a gather per candidate."""
        if not targets:
            return []
        store = self._store
        base = self._pair_arrays()
        persp = (
            None
            if perspective is None
            else store.entities.code(perspective)
        )
        scores = self._kernel_scores.get(persp)
        if scores is None:
            scores = self._pooled_scores(base, persp)
            self._kernel_scores[persp] = scores
        codes = store.entities.codes(targets)
        known = codes >= 0
        safe = np.where(known, codes, 0)
        gathered = np.where(known, scores[safe], 0.5)
        result: List[float] = gathered.tolist()
        return result

    def _pooled_scores(
        self, base: Dict[str, np.ndarray], persp: Optional[int]
    ) -> np.ndarray:
        size = max(len(self._store.entities), 1)
        pair_rater = base["pair_rater"]
        pair_target = base["pair_target"]
        trust = base["trust"]
        if persp is None:
            # Global fallback: mean provider trust over rating agents.
            sums = np.bincount(
                pair_target, weights=trust, minlength=size
            )
            counts = np.bincount(pair_target, minlength=size)
            return np.where(
                counts > 0, sums / np.maximum(counts, 1), 0.5
            )
        others = np.unique(pair_rater)
        rater_weight = np.empty(len(others))
        for i, other in enumerate(others.tolist()):
            rater_weight[i] = self._rater_weight(persp, other)
        row_weight = rater_weight[np.searchsorted(others, pair_rater)]
        pooled_rows = pair_rater != persp
        pool_num = np.bincount(
            pair_target[pooled_rows],
            weights=(row_weight * trust)[pooled_rows],
            minlength=size,
        )
        pool_den = np.bincount(
            pair_target[pooled_rows],
            weights=row_weight[pooled_rows],
            minlength=size,
        )
        own_rows = ~pooled_rows
        own_trust = np.full(size, 0.5)
        own_trust[pair_target[own_rows]] = trust[own_rows]
        own_tot = np.zeros(size)
        own_tot[pair_target[own_rows]] = base["tot"][own_rows]
        own_weight = own_tot / (own_tot + 2.0)
        pooled = pool_num / np.maximum(pool_den, 1e-300)
        blended = own_weight * own_trust + (1.0 - own_weight) * pooled
        return np.where(pool_den > 0, blended, own_trust)
