"""Wang & Vassileva's Bayesian-network trust — decentralized /
person-agent / personalized.

The authors' own P2P trust model (their [30, 31]): each agent maintains
a naive-Bayes model per partner, learning ``P(satisfying | facets)``
from its interaction history.  Trust is the posterior probability that
the next interaction will be satisfying, per QoS facet and overall, so
different agents (with different experiences and different facet
weightings) hold genuinely different trust in the same partner —
personalized by construction.

Two trust kinds, as in the original: trust in a partner as a *provider*
of service (competence) and trust as a *rater* (credibility of its
recommendations), the latter learned from how its recommendations
matched subsequent experience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


@dataclass
class _FacetCounts:
    """Satisfied/unsatisfied counts for one facet of one partner."""

    satisfied: float = 0.0
    unsatisfied: float = 0.0

    def update(self, satisfying: bool, weight: float = 1.0) -> None:
        if satisfying:
            self.satisfied += weight
        else:
            self.unsatisfied += weight

    def probability(self, prior: float = 0.5, strength: float = 2.0) -> float:
        """Laplace-style posterior P(satisfying)."""
        total = self.satisfied + self.unsatisfied
        return (self.satisfied + prior * strength) / (total + strength)


@dataclass
class _PartnerModel:
    """One agent's learned model of one partner."""

    overall: _FacetCounts = field(default_factory=_FacetCounts)
    facets: Dict[str, _FacetCounts] = field(default_factory=dict)
    #: credibility evidence: recommendations vs. later experience
    rater: _FacetCounts = field(default_factory=_FacetCounts)


class WangVassilevaModel(ReputationModel):
    """Per-agent naive-Bayes trust with facet decomposition.

    Args:
        satisfaction_threshold: rating above which an interaction counts
            as satisfying.
        facet_weights: default facet importance for overall trust; when
            None, facets observed in feedback are weighted uniformly.
        recommendation_tolerance: how close a recommendation must be to
            the subsequent experience to count as credible.
    """

    name = "wang_vassileva"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    )
    paper_ref = "[30, 31]"

    def __init__(
        self,
        satisfaction_threshold: float = 0.5,
        facet_weights: Optional[Mapping[str, float]] = None,
        recommendation_tolerance: float = 0.2,
    ) -> None:
        if not 0.0 <= satisfaction_threshold <= 1.0:
            raise ConfigurationError(
                "satisfaction_threshold must be in [0, 1]"
            )
        if not 0.0 < recommendation_tolerance <= 1.0:
            raise ConfigurationError(
                "recommendation_tolerance must be in (0, 1]"
            )
        self.satisfaction_threshold = satisfaction_threshold
        self.facet_weights = dict(facet_weights) if facet_weights else None
        self.recommendation_tolerance = recommendation_tolerance
        #: perspective agent -> partner -> learned model
        self._models: Dict[EntityId, Dict[EntityId, _PartnerModel]] = {}

    def _model(self, agent: EntityId, partner: EntityId) -> _PartnerModel:
        return self._models.setdefault(agent, {}).setdefault(
            partner, _PartnerModel()
        )

    # -- learning ------------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        """The rater's own experience updates its model of the target."""
        model = self._model(feedback.rater, feedback.target)
        model.overall.update(feedback.rating > self.satisfaction_threshold)
        for facet, rating in feedback.facet_ratings.items():
            counts = model.facets.setdefault(facet, _FacetCounts())
            counts.update(rating > self.satisfaction_threshold)

    def record_recommendation(
        self,
        agent: EntityId,
        recommender: EntityId,
        recommended_rating: float,
        experienced_rating: float,
    ) -> None:
        """Update *agent*'s rater-trust in *recommender*.

        Credible when the recommendation landed within tolerance of what
        *agent* then experienced.
        """
        model = self._model(agent, recommender)
        credible = (
            abs(recommended_rating - experienced_rating)
            <= self.recommendation_tolerance
        )
        model.rater.update(credible)

    # -- queries ----------------------------------------------------------------
    def provider_trust(
        self,
        agent: EntityId,
        partner: EntityId,
        facet_weights: Optional[Mapping[str, float]] = None,
    ) -> float:
        """P(next interaction satisfying), facet-weighted."""
        model = self._models.get(agent, {}).get(partner)
        if model is None:
            return 0.5
        weights = facet_weights or self.facet_weights
        if not model.facets or not weights:
            return model.overall.probability()
        total = 0.0
        weight_sum = 0.0
        for facet, counts in model.facets.items():
            w = weights.get(facet, 0.0)
            if w <= 0:
                continue
            total += w * counts.probability()
            weight_sum += w
        if weight_sum <= 0:
            return model.overall.probability()
        return total / weight_sum

    def rater_trust(self, agent: EntityId, partner: EntityId) -> float:
        """Trust in *partner*'s recommendations (credibility)."""
        model = self._models.get(agent, {}).get(partner)
        if model is None:
            return 0.5
        return model.rater.probability()

    def recommendation_weighted_reputation(
        self, agent: EntityId, target: EntityId
    ) -> Optional[float]:
        """Pool other agents' trust in *target*, weighted by how much
        *agent* trusts each of them as a rater."""
        total = 0.0
        weight_sum = 0.0
        for other, partners in self._models.items():
            if other == agent or target not in partners:
                continue
            opinion = self.provider_trust(other, target)
            weight = self.rater_trust(agent, other)
            total += weight * opinion
            weight_sum += weight
        if weight_sum <= 0:
            return None
        return total / weight_sum

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        if perspective is None:
            # Global fallback: mean of all agents' provider trust.
            opinions = [
                self.provider_trust(agent, target)
                for agent, partners in self._models.items()
                if target in partners
            ]
            if not opinions:
                return 0.5
            return sum(opinions) / len(opinions)
        model = self._models.get(perspective, {}).get(target)
        own = self.provider_trust(perspective, target)
        own_evidence = (
            model.overall.satisfied + model.overall.unsatisfied
            if model
            else 0.0
        )
        pooled = self.recommendation_weighted_reputation(perspective, target)
        if pooled is None:
            return own
        # Blend: own experience dominates as it accumulates.
        own_weight = own_evidence / (own_evidence + 2.0)
        return own_weight * own + (1.0 - own_weight) * pooled

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch scores sharing the rater-credibility weights.

        ``rater_trust(agent, other)`` does not depend on the candidate
        being scored, so the pooling pass reuses one credibility value
        per recommender instead of recomputing it for every candidate.
        """
        if not targets:
            return []
        if perspective is None:
            # Global fallback: one pass over the agents' models serves
            # every candidate.
            wanted = set(targets)
            sums: Dict[EntityId, float] = {}
            counts: Dict[EntityId, int] = {}
            for agent, partners in self._models.items():
                for target in partners:
                    if target in wanted:
                        sums[target] = sums.get(target, 0.0) + (
                            self.provider_trust(agent, target)
                        )
                        counts[target] = counts.get(target, 0) + 1
            return [
                sums[t] / counts[t] if counts.get(t) else 0.5
                for t in targets
            ]
        # One sweep over the (agent, partner) pairs gathers each
        # candidate's recommenders (in agent order, matching the
        # per-candidate loop), with one rater-trust value per
        # recommender — instead of len(targets) scans of every agent.
        rater_memo: Dict[EntityId, float] = {}
        wanted = set(targets)
        pooled_total: Dict[EntityId, float] = {}
        pooled_weight: Dict[EntityId, float] = {}
        for other, partners in self._models.items():
            if other == perspective:
                continue
            weight: Optional[float] = None
            for target in partners:
                if target not in wanted:
                    continue
                if weight is None:
                    weight = rater_memo.get(other)
                    if weight is None:
                        weight = self.rater_trust(perspective, other)
                        rater_memo[other] = weight
                opinion = self.provider_trust(other, target)
                pooled_total[target] = (
                    pooled_total.get(target, 0.0) + weight * opinion
                )
                pooled_weight[target] = (
                    pooled_weight.get(target, 0.0) + weight
                )
        own_models = self._models.get(perspective, {})
        results: List[float] = []
        for target in targets:
            model = own_models.get(target)
            own = self.provider_trust(perspective, target)
            weight_sum = pooled_weight.get(target, 0.0)
            if weight_sum <= 0:
                results.append(own)
                continue
            pooled = pooled_total[target] / weight_sum
            own_evidence = (
                model.overall.satisfied + model.overall.unsatisfied
                if model
                else 0.0
            )
            own_weight = own_evidence / (own_evidence + 2.0)
            results.append(own_weight * own + (1.0 - own_weight) * pooled)
        return results
