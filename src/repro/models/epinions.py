"""Epinions web-of-trust — centralized / resource / personalized.

Epinions lets each member maintain a *trust list* (reviewers whose
opinions they value) and a *block list* (reviewers to ignore).  A
product's rating shown to member *p* weights each review by the
reviewer's standing in *p*'s web of trust:

* directly trusted reviewer: full weight,
* trusted at distance *d* through the trust graph: weight
  ``trust_decay ** d``,
* blocked reviewer (at any distance): zero weight,
* stranger: a small residual weight, so lurkers still see scores.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


class EpinionsModel(ReputationModel):
    """Review aggregation weighted by a personal web of trust.

    Args:
        trust_decay: per-hop attenuation of transitive trust.
        stranger_weight: weight of reviews from members outside the
            perspective's web of trust.
        max_depth: trust-graph traversal bound.
    """

    name = "epinions"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    )
    paper_ref = "[8]"

    def __init__(
        self,
        trust_decay: float = 0.5,
        stranger_weight: float = 0.1,
        max_depth: int = 3,
    ) -> None:
        if not 0.0 < trust_decay <= 1.0:
            raise ConfigurationError("trust_decay must be in (0, 1]")
        if not 0.0 <= stranger_weight <= 1.0:
            raise ConfigurationError("stranger_weight must be in [0, 1]")
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        self.trust_decay = trust_decay
        self.stranger_weight = stranger_weight
        self.max_depth = max_depth
        self._reviews: Dict[EntityId, List[Feedback]] = {}
        self._trusts: Dict[EntityId, Set[EntityId]] = {}
        self._blocks: Dict[EntityId, Set[EntityId]] = {}

    # -- web of trust ------------------------------------------------------
    def trust(self, member: EntityId, reviewer: EntityId) -> None:
        """Add *reviewer* to *member*'s trust list."""
        if member == reviewer:
            return
        self._trusts.setdefault(member, set()).add(reviewer)
        self._blocks.get(member, set()).discard(reviewer)

    def block(self, member: EntityId, reviewer: EntityId) -> None:
        """Add *reviewer* to *member*'s block list."""
        if member == reviewer:
            return
        self._blocks.setdefault(member, set()).add(reviewer)
        self._trusts.get(member, set()).discard(reviewer)

    def trust_distance(
        self, member: EntityId, reviewer: EntityId
    ) -> Optional[int]:
        """Hops from *member* to *reviewer* through trust lists.

        Returns None when unreachable within ``max_depth`` or blocked.
        """
        if reviewer in self._blocks.get(member, ()):
            return None
        if reviewer in self._trusts.get(member, ()):
            return 1
        visited = {member}
        queue = deque([(member, 0)])
        while queue:
            current, depth = queue.popleft()
            if depth >= self.max_depth:
                continue
            for trusted in sorted(self._trusts.get(current, ())):
                if trusted in visited:
                    continue
                if trusted in self._blocks.get(member, ()):
                    continue
                if trusted == reviewer:
                    return depth + 1
                visited.add(trusted)
                queue.append((trusted, depth + 1))
        return None

    def _weight(self, member: Optional[EntityId], reviewer: EntityId) -> float:
        if member is None or member == reviewer:
            return 1.0
        if reviewer in self._blocks.get(member, ()):
            return 0.0
        distance = self.trust_distance(member, reviewer)
        if distance is None:
            return self.stranger_weight
        return self.trust_decay ** (distance - 1)

    # -- reviews -------------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        self._reviews.setdefault(feedback.target, []).append(feedback)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        reviews = self._reviews.get(target)
        if not reviews:
            return 0.5
        total = 0.0
        weight_sum = 0.0
        for review in reviews:
            weight = self._weight(perspective, review.rater)
            total += weight * review.rating
            weight_sum += weight
        if weight_sum <= 0:
            return 0.5
        return total / weight_sum
