"""Vu, Hauswirth & Aberer: QoS-based selection with trust management —
decentralized / person-agent + resource / personalized.

The only decentralized web-service approach the survey found.  Its three
ingredients are reproduced:

1. **Dedicated QoS registries over P-Grid** — feedback about a service
   is routed to (and replicated at) the P-Grid peers responsible for
   the service's key (:meth:`publish_report` / :meth:`query_reports`).
2. **Dishonesty detection against monitor data** — a fraction of
   services is watched by trusted monitoring agents; a rater whose
   reports repeatedly deviate from the monitor's measurements beyond a
   tolerance loses credibility for *all* its reports (their key trick:
   liars caught on monitored services are discounted everywhere).
3. **Trust-weighted QoS prediction** — a service's expected quality per
   metric is the credibility-weighted mean of user reports, blended
   with monitor data where available; ranking is against the consumer's
   per-metric preferences.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.p2p.pgrid import PGrid


class VuAbererModel(ReputationModel):
    """Decentralized QoS reputation with monitor-based liar detection.

    Args:
        deviation_tolerance: max |report − monitor| counted as honest.
        min_credibility: floor so condemned raters keep an epsilon voice
            (their algorithm never fully zeroes a rater).
        monitor_weight: blend weight of monitor data in predictions for
            monitored services.
    """

    name = "vu_aberer"
    typology = Typology(
        Architecture.DECENTRALIZED,
        Subject.PERSON_AGENT_AND_RESOURCE,
        Scope.PERSONALIZED,
    )
    paper_ref = "[28, 29]"

    def __init__(
        self,
        deviation_tolerance: float = 0.15,
        min_credibility: float = 0.05,
        monitor_weight: float = 0.5,
    ) -> None:
        if not 0.0 < deviation_tolerance <= 1.0:
            raise ConfigurationError("deviation_tolerance must be in (0, 1]")
        if not 0.0 <= min_credibility < 1.0:
            raise ConfigurationError("min_credibility must be in [0, 1)")
        if not 0.0 <= monitor_weight <= 1.0:
            raise ConfigurationError("monitor_weight must be in [0, 1]")
        self.deviation_tolerance = deviation_tolerance
        self.min_credibility = min_credibility
        self.monitor_weight = monitor_weight
        self._reports: Dict[EntityId, List[Feedback]] = {}
        #: service -> metric -> monitor-measured quality
        self._monitor_data: Dict[EntityId, Dict[str, float]] = {}
        #: rater -> (honest_count, caught_count)
        self._rater_record: Dict[EntityId, Tuple[int, int]] = {}
        #: consumer -> metric weights
        self._preferences: Dict[EntityId, Dict[str, float]] = {}

    # -- inputs ------------------------------------------------------------
    def set_preferences(
        self, consumer: EntityId, weights: Mapping[str, float]
    ) -> None:
        self._preferences[consumer] = dict(weights)

    def record_monitor_data(
        self, service: EntityId, facets: Mapping[str, float]
    ) -> None:
        """Trusted monitoring-agent measurements for *service*."""
        store = self._monitor_data.setdefault(service, {})
        store.update(facets)
        # Re-screen raters that already reported on this service.
        for fb in self._reports.get(service, ()):
            self._screen(fb)

    def record(self, feedback: Feedback) -> None:
        self._reports.setdefault(feedback.target, []).append(feedback)
        self._screen(feedback)

    def _screen(self, feedback: Feedback) -> None:
        """Compare a report against monitor data, update rater record."""
        monitor = self._monitor_data.get(feedback.target)
        if not monitor:
            return
        facets = feedback.facet_ratings or {"overall": feedback.rating}
        deviations = [
            abs(facets[m] - monitor[m]) for m in facets if m in monitor
        ]
        if not deviations and "overall" not in monitor:
            # No overlapping facet: judge the overall rating against the
            # monitor's mean observable quality.
            deviations = [
                abs(feedback.rating - safe_mean(monitor.values(), 0.5))
            ]
        if not deviations:
            return
        honest, caught = self._rater_record.get(feedback.rater, (0, 0))
        if max(deviations) <= self.deviation_tolerance:
            honest += 1
        else:
            caught += 1
        self._rater_record[feedback.rater] = (honest, caught)

    # -- credibility --------------------------------------------------------
    def credibility(self, rater: EntityId) -> float:
        """Rater trust from screening outcomes (Laplace-smoothed)."""
        honest, caught = self._rater_record.get(rater, (0, 0))
        value = (honest + 1.0) / (honest + caught + 2.0)
        return max(self.min_credibility, value)

    # -- prediction -----------------------------------------------------------
    def predicted_quality(
        self, service: EntityId, metric: Optional[str] = None
    ) -> float:
        """Credibility-weighted expected quality of *service*.

        With *metric* given, predicts that facet; otherwise the overall
        rating.  Monitor data is blended in when present.
        """
        reports = self._reports.get(service, [])
        total = 0.0
        weight_sum = 0.0
        for fb in reports:
            if metric is not None:
                if metric not in fb.facet_ratings:
                    continue
                value = fb.facet_ratings[metric]
            else:
                value = fb.rating
            cred = self.credibility(fb.rater)
            total += cred * value
            weight_sum += cred
        user_estimate = total / weight_sum if weight_sum > 0 else None
        monitor = self._monitor_data.get(service, {})
        monitor_estimate: Optional[float] = None
        if metric is not None and metric in monitor:
            monitor_estimate = monitor[metric]
        elif metric is None and monitor:
            monitor_estimate = safe_mean(monitor.values())
        if user_estimate is None and monitor_estimate is None:
            return 0.5
        if user_estimate is None:
            assert monitor_estimate is not None
            return monitor_estimate
        if monitor_estimate is None:
            return user_estimate
        w = self.monitor_weight
        return w * monitor_estimate + (1.0 - w) * user_estimate

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        weights = (
            self._preferences.get(perspective) if perspective else None
        )
        if weights:
            metrics = [
                (m, w)
                for m, w in weights.items()
                if w > 0
            ]
            total_weight = sum(w for _, w in metrics)
            if metrics and total_weight > 0:
                return (
                    sum(
                        self.predicted_quality(target, m) * w
                        for m, w in metrics
                    )
                    / total_weight
                )
        return self.predicted_quality(target)

    # -- P-Grid deployment ---------------------------------------------------------
    def publish_report(
        self, pgrid: PGrid, origin: EntityId, feedback: Feedback
    ) -> int:
        """Route a report to the responsible QoS registries.

        The record is both stored on the overlay and ingested by this
        model; returns messages used.
        """
        messages = pgrid.insert(origin, feedback.target, feedback)
        self.record(feedback)
        return messages

    def query_reports(
        self, pgrid: PGrid, origin: EntityId, service: EntityId
    ) -> Tuple[List[Feedback], int]:
        """Fetch a service's reports from its QoS registries."""
        return pgrid.lookup(origin, service, service)
