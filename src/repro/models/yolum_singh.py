"""Yolum & Singh: locating trustworthy services through referrals —
decentralized / person-agent / personalized.

The contribution is less the trust arithmetic than the *search*: agents
hold acquaintances, queries travel as referrals, and agents adapt their
neighbour sets toward acquaintances who give useful answers.  The model
wraps a :class:`~repro.p2p.referral.ReferralNetwork`: scoring a target
issues a referral query from the perspective agent, combines the
witnesses' opinions discounted by chain length, and reinforces the
network toward useful witnesses.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.p2p.referral import ReferralNetwork


class YolumSinghModel(ReputationModel):
    """Referral-network service location.

    Args:
        network: the referral substrate (agents join it separately).
        depth_limit: referral chain bound per query.
        chain_discount: per-hop attenuation of witness opinions.
        adapt: whether to reinforce neighbour weights after queries.
    """

    name = "yolum_singh"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    )
    paper_ref = "[34]"

    def __init__(
        self,
        network: Optional[ReferralNetwork] = None,
        depth_limit: int = 3,
        chain_discount: float = 0.8,
        adapt: bool = True,
        rng=None,
    ) -> None:
        if depth_limit < 0:
            raise ConfigurationError("depth_limit must be >= 0")
        if not 0.0 < chain_discount <= 1.0:
            raise ConfigurationError("chain_discount must be in (0, 1]")
        self.network = network or ReferralNetwork(rng=rng)
        self.depth_limit = depth_limit
        self.chain_discount = chain_discount
        self.adapt = adapt
        self.queries_issued = 0
        self.messages_used = 0

    def ensure_agent(self, agent_id: EntityId) -> None:
        """Join *agent_id* to the referral network if not yet present."""
        if agent_id not in [a.peer_id for a in self.network.agents()]:
            self.network.join(agent_id)

    def record(self, feedback: Feedback) -> None:
        self.ensure_agent(feedback.rater)
        self.network.record_experience(feedback.rater, feedback)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        if perspective is None:
            # Global view: average everyone's first-hand experience.
            ratings = [
                fb.rating
                for agent in self.network.agents()
                for fb in agent.store.for_target(target)
            ]
            return safe_mean(ratings, default=0.5)
        self.ensure_agent(perspective)
        own = [
            fb.rating
            for fb in self.network.agent(perspective).store.for_target(target)
        ]
        responses, messages = self.network.query(
            perspective, target, depth_limit=self.depth_limit
        )
        self.queries_issued += 1
        self.messages_used += messages
        weighted: Dict[EntityId, float] = {}
        weights: Dict[EntityId, float] = {}
        for response in responses:
            opinion = safe_mean(
                (fb.rating for fb in response.opinions), default=0.5
            )
            weight = self.chain_discount ** max(1, response.chain_length)
            weighted[response.witness] = opinion * weight
            weights[response.witness] = weight
            if self.adapt:
                # A useful witness is one that had a confident opinion
                # (clearly good or clearly bad).
                useful = abs(opinion - 0.5) > 0.2
                self.network.reinforce(perspective, response.witness, useful)
        total_weight = sum(weights.values()) + (1.0 if own else 0.0) * len(own)
        if total_weight <= 0:
            return 0.5
        own_part = sum(own)  # weight 1 per first-hand experience
        witness_part = sum(weighted.values())
        return (own_part + witness_part) / total_weight
