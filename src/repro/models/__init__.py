"""Trust and reputation models — the leaves of the paper's Figure 4.

Every module implements one surveyed system on the common
:class:`~repro.models.base.ReputationModel` interface, declaring its
position in the three-criterion typology.  The model registry in
:mod:`repro.core.registry` collects them so the Figure 4 tree can be
rebuilt programmatically.
"""

from repro.models.base import ReputationModel, ScoredTarget
from repro.models.beta import BetaReputation
from repro.models.ebay import EbayModel
from repro.models.sporas import SporasModel
from repro.models.histos import HistosModel
from repro.models.pagerank import PageRankModel
from repro.models.amazon import AmazonModel
from repro.models.epinions import EpinionsModel
from repro.models.collaborative import (
    CollaborativeFilteringModel,
    Similarity,
)
from repro.models.yu_singh import YuSinghModel, dempster_combine
from repro.models.yolum_singh import YolumSinghModel
from repro.models.wang_vassileva import WangVassilevaModel
from repro.models.xrep import XRepModel
from repro.models.socialnetwork import SocialNetworkModel
from repro.models.aberer import AbererDespotovicModel
from repro.models.peertrust import CredibilityMeasure, PeerTrustModel
from repro.models.eigentrust import DistributedEigenTrust, EigenTrustModel
from repro.models.maximilien_singh import MaximilienSinghModel
from repro.models.liu_ngu_zeng import LiuNguZengModel
from repro.models.day import DayExpertSystem, DayNaiveBayes, Rule
from repro.models.provider_backoff import ProviderBackoffModel
from repro.models.subjective_logic import SubjectiveLogicModel
from repro.models.vu_aberer import VuAbererModel

__all__ = [
    "AbererDespotovicModel",
    "AmazonModel",
    "BetaReputation",
    "CollaborativeFilteringModel",
    "CredibilityMeasure",
    "DayExpertSystem",
    "DayNaiveBayes",
    "DistributedEigenTrust",
    "EbayModel",
    "EigenTrustModel",
    "EpinionsModel",
    "HistosModel",
    "LiuNguZengModel",
    "MaximilienSinghModel",
    "PageRankModel",
    "PeerTrustModel",
    "ProviderBackoffModel",
    "ReputationModel",
    "Rule",
    "ScoredTarget",
    "Similarity",
    "SocialNetworkModel",
    "SporasModel",
    "SubjectiveLogicModel",
    "VuAbererModel",
    "WangVassilevaModel",
    "XRepModel",
    "YolumSinghModel",
    "YuSinghModel",
    "dempster_combine",
]
