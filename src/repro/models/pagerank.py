"""PageRank (Page, Brin, Motwani & Winograd) — centralized / resource /
global.

The survey places Google in the centralized-resource-global leaf: a
resource's standing derives from who endorses it.  Here the endorsement
graph is built from feedback — a positive rating creates (or refreshes)
an edge ``rater -> target`` — and reputation is the stationary
distribution of the damped random walk.

The stationary vector is maintained incrementally: edges accumulate in
index arrays (no dense matrix), :meth:`record` flips a dirty flag
instead of discarding state, and :meth:`compute` re-converges by
warm-starting the power iteration from the previous fixed point — the
damped walk has a unique stationary distribution, so the warm start
lands on the same answer as a cold one.  :meth:`compute_naive` keeps
the original pure-Python iteration as the reference implementation the
property tests and the benchmark baseline compare against.

Scores are normalized by the maximum rank so they land on ``[0, 1]``
like every other model; :meth:`raw_rank` exposes the probability mass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.obs.recorder import get_recorder


class PageRankModel(ReputationModel):
    """PageRank over the positive-endorsement graph.

    Args:
        damping: probability of following an edge (0.85 in the paper).
        positive_threshold: ratings above this create an endorsement edge.
        tol / max_iter: power-iteration convergence controls.
    """

    name = "pagerank"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.GLOBAL
    )
    paper_ref = "[23]"

    def __init__(
        self,
        damping: float = 0.85,
        positive_threshold: float = 0.5,
        tol: float = 1e-12,
        max_iter: int = 200,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise ConfigurationError("damping must be in (0, 1)")
        if max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        self.damping = damping
        self.positive_threshold = positive_threshold
        self.tol = tol
        self.max_iter = max_iter
        self._out: Dict[EntityId, Set[EntityId]] = {}
        self._nodes: Set[EntityId] = set()
        self._ranks: Optional[Dict[EntityId, float]] = None
        self.iterations_last_run = 0
        # -- incremental cache state --------------------------------------
        #: bumped on every graph mutation
        self.version = 0
        #: edges in insertion order; re-indexed only on structural change
        self._edge_pairs: List[Tuple[EntityId, EntityId]] = []
        self._node_list: List[EntityId] = []
        self._index: Dict[EntityId, int] = {}
        self._src: Optional[np.ndarray] = None
        self._dst: Optional[np.ndarray] = None
        self._out_degree: Optional[np.ndarray] = None
        self._indexed_edges = 0
        self._structure_dirty = True
        #: previous fixed point, the warm start for the next compute
        self._rank_vec: Optional[np.ndarray] = None

    def add_edge(self, source: EntityId, target: EntityId) -> None:
        """Add an endorsement edge directly (citation-graph use)."""
        if source == target:
            return
        targets = self._out.setdefault(source, set())
        if target not in targets:
            targets.add(target)
            self._edge_pairs.append((source, target))
        if source not in self._nodes or target not in self._nodes:
            self._nodes.add(source)
            self._nodes.add(target)
            self._structure_dirty = True
        self.version += 1
        self._ranks = None

    def record(self, feedback: Feedback) -> None:
        if feedback.rater not in self._nodes or feedback.target not in self._nodes:
            self._nodes.add(feedback.rater)
            self._nodes.add(feedback.target)
            self._structure_dirty = True
        if feedback.rating > self.positive_threshold:
            self.add_edge(feedback.rater, feedback.target)
        else:
            self.version += 1
            self._ranks = None

    # -- incremental cache ---------------------------------------------------
    def _refresh_arrays(self) -> None:
        """Bring the edge index arrays up to date with the graph.

        Node growth re-derives the index map (O(V + E)); new edges on a
        stable node set just extend the index arrays.  Neither path is
        per-query work — queries reuse the cached stationary vector
        until feedback dirties it.
        """
        if self._structure_dirty:
            warm: Optional[Dict[EntityId, float]] = None
            if self._rank_vec is not None and self._node_list:
                warm = {
                    node: float(v)
                    for node, v in zip(self._node_list, self._rank_vec)
                }
            nodes = sorted(self._nodes)
            index = {node: i for i, node in enumerate(nodes)}
            self._node_list = nodes
            self._index = index
            self._src = np.fromiter(
                (index[s] for s, _ in self._edge_pairs),
                dtype=np.intp,
                count=len(self._edge_pairs),
            )
            self._dst = np.fromiter(
                (index[t] for _, t in self._edge_pairs),
                dtype=np.intp,
                count=len(self._edge_pairs),
            )
            self._out_degree = np.fromiter(
                (len(self._out.get(node, ())) for node in nodes),
                dtype=float,
                count=len(nodes),
            )
            self._indexed_edges = len(self._edge_pairs)
            self._structure_dirty = False
            if warm:
                vec = np.array([warm.get(node, 0.0) for node in nodes])
                self._rank_vec = vec if float(vec.sum()) > 0 else None
            else:
                self._rank_vec = None
        elif self._indexed_edges < len(self._edge_pairs):
            assert self._src is not None and self._dst is not None
            index = self._index
            fresh = self._edge_pairs[self._indexed_edges:]
            self._src = np.concatenate(
                [self._src, np.array([index[s] for s, _ in fresh], dtype=np.intp)]
            )
            self._dst = np.concatenate(
                [self._dst, np.array([index[t] for _, t in fresh], dtype=np.intp)]
            )
            self._out_degree = np.fromiter(
                (len(self._out.get(node, ())) for node in self._node_list),
                dtype=float,
                count=len(self._node_list),
            )
            self._indexed_edges = len(self._edge_pairs)

    def compute(self) -> Dict[EntityId, float]:
        """Converge the rank vector; returns rank per node (sums to 1).

        Vectorized scatter-gather power iteration, warm-started from the
        previous fixed point when the graph only changed incrementally.
        """
        n = len(self._nodes)
        if n == 0:
            self._ranks = {}
            return {}
        self._refresh_arrays()
        assert self._src is not None and self._out_degree is not None
        nodes = self._node_list
        d = self.damping
        rank = self._rank_vec
        if rank is None or len(rank) != n:
            rank = np.full(n, 1.0 / n)
        else:
            total = float(rank.sum())
            rank = rank / total if total > 0 else np.full(n, 1.0 / n)
        dangling = self._out_degree == 0
        out_degree_safe = np.where(dangling, 1.0, self._out_degree)
        base = (1.0 - d) / n
        for iteration in range(self.max_iter):
            dangling_mass = float(rank[dangling].sum())
            shares = d * rank[self._src] / out_degree_safe[self._src]
            nxt = np.bincount(
                self._dst, weights=shares, minlength=n
            ).astype(float)
            nxt += base + d * dangling_mass / n
            delta = float(np.abs(nxt - rank).sum())
            rank = nxt
            if delta < self.tol:
                self.iterations_last_run = iteration + 1
                break
        else:
            self.iterations_last_run = self.max_iter
        self._rank_vec = rank
        self._ranks = {node: float(rank[i]) for i, node in enumerate(nodes)}
        return dict(self._ranks)

    def compute_naive(self) -> Dict[EntityId, float]:
        """The original pure-Python cold-start iteration — kept as the
        reference path the cached engine is benchmarked and verified
        against.  Does not touch the incremental cache."""
        nodes = sorted(self._nodes)
        n = len(nodes)
        if n == 0:
            return {}
        index = {node: i for i, node in enumerate(nodes)}
        rank = [1.0 / n] * n
        out_degree = [len(self._out.get(node, ())) for node in nodes]
        for iteration in range(self.max_iter):
            nxt = [(1.0 - self.damping) / n] * n
            dangling_mass = sum(
                rank[i] for i in range(n) if out_degree[i] == 0
            )
            spread = self.damping * dangling_mass / n
            for i in range(n):
                nxt[i] += spread
            for node, targets in self._out.items():
                i = index[node]
                if not targets:
                    continue
                share = self.damping * rank[i] / len(targets)
                for tgt in sorted(targets):
                    nxt[index[tgt]] += share
            delta = sum(abs(a - b) for a, b in zip(rank, nxt))
            rank = nxt
            if delta < self.tol:
                self.iterations_last_run = iteration + 1
                break
        else:
            self.iterations_last_run = self.max_iter
        return {node: rank[index[node]] for node in nodes}

    def _ensure_ranks(self) -> Dict[EntityId, float]:
        rec = get_recorder()
        if self._ranks is None:
            self.compute()
            if rec.enabled:
                rec.count(
                    "model.cache.misses",
                    labels=(self.name,),
                    label_names=("model",),
                )
                rec.count(
                    "model.power_iterations",
                    self.iterations_last_run,
                    labels=(self.name,),
                    label_names=("model",),
                )
        elif rec.enabled:
            rec.count(
                "model.cache.hits",
                labels=(self.name,),
                label_names=("model",),
            )
        assert self._ranks is not None
        return self._ranks

    def raw_rank(self, target: EntityId) -> float:
        return self._ensure_ranks().get(target, 0.0)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        ranks = self._ensure_ranks()
        if not ranks:
            return 0.5
        top = max(ranks.values())
        if top <= 0:
            return 0.5
        return ranks.get(target, 0.0) / top

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch scores from one cached stationary vector."""
        if not targets:
            return []
        ranks = self._ensure_ranks()
        if not ranks:
            return [0.5] * len(targets)
        top = max(ranks.values())
        if top <= 0:
            return [0.5] * len(targets)
        values = np.fromiter(
            (ranks.get(t, 0.0) for t in targets),
            dtype=float,
            count=len(targets),
        )
        return (values / top).tolist()
