"""PageRank (Page, Brin, Motwani & Winograd) — centralized / resource /
global.

The survey places Google in the centralized-resource-global leaf: a
resource's standing derives from who endorses it.  Here the endorsement
graph is built from feedback — a positive rating creates (or refreshes)
an edge ``rater -> target`` — and reputation is the stationary
distribution of the damped random walk, computed by power iteration
from scratch (no networkx).

Scores are normalized by the maximum rank so they land on ``[0, 1]``
like every other model; :meth:`raw_rank` exposes the probability mass.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


class PageRankModel(ReputationModel):
    """PageRank over the positive-endorsement graph.

    Args:
        damping: probability of following an edge (0.85 in the paper).
        positive_threshold: ratings above this create an endorsement edge.
        tol / max_iter: power-iteration convergence controls.
    """

    name = "pagerank"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.GLOBAL
    )
    paper_ref = "[23]"

    def __init__(
        self,
        damping: float = 0.85,
        positive_threshold: float = 0.5,
        tol: float = 1e-10,
        max_iter: int = 200,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise ConfigurationError("damping must be in (0, 1)")
        if max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        self.damping = damping
        self.positive_threshold = positive_threshold
        self.tol = tol
        self.max_iter = max_iter
        self._out: Dict[EntityId, Set[EntityId]] = {}
        self._nodes: Set[EntityId] = set()
        self._ranks: Optional[Dict[EntityId, float]] = None
        self.iterations_last_run = 0

    def add_edge(self, source: EntityId, target: EntityId) -> None:
        """Add an endorsement edge directly (citation-graph use)."""
        if source == target:
            return
        self._out.setdefault(source, set()).add(target)
        self._nodes.add(source)
        self._nodes.add(target)
        self._ranks = None

    def record(self, feedback: Feedback) -> None:
        self._nodes.add(feedback.rater)
        self._nodes.add(feedback.target)
        if feedback.rating > self.positive_threshold:
            self.add_edge(feedback.rater, feedback.target)
        else:
            self._ranks = None

    def compute(self) -> Dict[EntityId, float]:
        """Run power iteration; returns rank per node (sums to 1)."""
        nodes = sorted(self._nodes)
        n = len(nodes)
        if n == 0:
            self._ranks = {}
            return {}
        index = {node: i for i, node in enumerate(nodes)}
        rank = [1.0 / n] * n
        out_degree = [len(self._out.get(node, ())) for node in nodes]
        for iteration in range(self.max_iter):
            nxt = [(1.0 - self.damping) / n] * n
            dangling_mass = sum(
                rank[i] for i in range(n) if out_degree[i] == 0
            )
            spread = self.damping * dangling_mass / n
            for i in range(n):
                nxt[i] += spread
            for node, targets in self._out.items():
                i = index[node]
                if not targets:
                    continue
                share = self.damping * rank[i] / len(targets)
                for tgt in targets:
                    nxt[index[tgt]] += share
            delta = sum(abs(a - b) for a, b in zip(rank, nxt))
            rank = nxt
            if delta < self.tol:
                self.iterations_last_run = iteration + 1
                break
        else:
            self.iterations_last_run = self.max_iter
        self._ranks = {node: rank[index[node]] for node in nodes}
        return dict(self._ranks)

    def raw_rank(self, target: EntityId) -> float:
        if self._ranks is None:
            self.compute()
        assert self._ranks is not None
        return self._ranks.get(target, 0.0)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        if self._ranks is None:
            self.compute()
        assert self._ranks is not None
        if not self._ranks:
            return 0.5
        top = max(self._ranks.values())
        if top <= 0:
            return 0.5
        return self._ranks.get(target, 0.0) / top
