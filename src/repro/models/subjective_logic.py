"""Subjective-logic reputation — Jøsang's algebra as a mechanism.

Not a Figure 4 leaf (the survey cites Jøsang [10] for the *theory* of
transitive trust), but the natural "what if we ran it" companion: each
rater's experience with a target becomes an evidence-based
:class:`~repro.trustnet.opinion.Opinion`, and

* the **global** reputation of a target is the consensus fusion of all
  raters' opinions (evidence pooling);
* the **personalized** trust adds a discounting step: the asking
  consumer trusts each rater as a *referrer* according to how well that
  rater's past opinions matched the consumer's own first-hand
  experience (agreement evidence), and rater opinions are discounted
  through that referral trust before fusion — a direct TNA-SL
  evaluation with the asker as root.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.trustnet.opinion import Opinion, consensus, discount


class SubjectiveLogicModel(ReputationModel):
    """Opinion-algebra reputation with optional personalization.

    Args:
        agreement_tolerance: |rater rating − own rating| within which
            two ratings of the same target count as agreement (the
            evidence for referral trust).
        base_rate: prior probability used in expectations.
    """

    name = "subjective_logic"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    )
    paper_ref = "[10]"

    def __init__(
        self,
        agreement_tolerance: float = 0.2,
        base_rate: float = 0.5,
    ) -> None:
        if not 0.0 < agreement_tolerance <= 1.0:
            raise ConfigurationError(
                "agreement_tolerance must be in (0, 1]"
            )
        if not 0.0 <= base_rate <= 1.0:
            raise ConfigurationError("base_rate must be in [0, 1]")
        self.agreement_tolerance = agreement_tolerance
        self.base_rate = base_rate
        #: (rater, target) -> (positive evidence, negative evidence)
        self._evidence: Dict[Tuple[EntityId, EntityId], Tuple[float, float]] = {}
        #: rater -> target -> latest rating (for agreement bookkeeping)
        self._latest: Dict[EntityId, Dict[EntityId, float]] = {}

    # -- evidence -------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        key = (feedback.rater, feedback.target)
        r, s = self._evidence.get(key, (0.0, 0.0))
        self._evidence[key] = (r + feedback.rating,
                               s + (1.0 - feedback.rating))
        self._latest.setdefault(feedback.rater, {})[feedback.target] = (
            feedback.rating
        )

    def functional_opinion(
        self, rater: EntityId, target: EntityId
    ) -> Opinion:
        """The opinion *rater*'s own evidence about *target* induces."""
        r, s = self._evidence.get((rater, target), (0.0, 0.0))
        return Opinion.from_evidence(r, s, base_rate=self.base_rate)

    def referral_opinion(
        self, perspective: EntityId, rater: EntityId
    ) -> Opinion:
        """*perspective*'s trust in *rater* as a referrer.

        Agreement evidence: over targets both have rated, how often the
        rater's rating landed within tolerance of the perspective's.
        """
        own = self._latest.get(perspective, {})
        theirs = self._latest.get(rater, {})
        agree = 0.0
        disagree = 0.0
        for target in sorted(set(own) & set(theirs)):
            if abs(own[target] - theirs[target]) <= self.agreement_tolerance:
                agree += 1.0
            else:
                disagree += 1.0
        return Opinion.from_evidence(agree, disagree,
                                     base_rate=self.base_rate)

    # -- scoring -----------------------------------------------------------
    def derived_opinion(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
    ) -> Opinion:
        """The fused opinion about *target* (personalized when asked)."""
        fused: Optional[Opinion] = None
        raters = sorted(
            rater
            for (rater, tgt) in self._evidence
            if tgt == target
        )
        for rater in raters:
            opinion = self.functional_opinion(rater, target)
            if perspective is not None and rater != perspective:
                trust = self.referral_opinion(perspective, rater)
                opinion = discount(trust, opinion)
            fused = opinion if fused is None else consensus(fused, opinion)
        return fused if fused is not None else Opinion.vacuous(
            self.base_rate
        )

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        return self.derived_opinion(target, perspective).expectation

    def uncertainty(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
    ) -> float:
        """How much of the derived opinion is uncommitted mass."""
        return self.derived_opinion(target, perspective).uncertainty
