"""Provider-level reputation backoff — the survey's research direction 2.

"Building trust and reputation for web service providers … has been
neglected in current trust and reputation approaches for web services.
… for the service for which the trust and reputation has not been
established, the trust and reputation of the service provider …
can be used for the selection."

:class:`ProviderBackoffModel` wraps any per-entity evidence model: a
service's score blends its own evidence with its provider's aggregated
standing, the provider's share shrinking as the service accumulates
evidence of its own.  With zero service evidence the score *is* the
provider's reputation — which is what lets brand-new services from
reputable providers be tried at all (benchmark C7).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.models.beta import BetaReputation


class ProviderBackoffModel(ReputationModel):
    """Service reputation backed off to provider reputation.

    Args:
        provider_of: mapping from service id to provider id; services
            absent from the mapping are scored on their own evidence
            only.  The mapping may grow after construction (new
            services registering) — it is read live.
        service_model / provider_model: the evidence substrates
            (default: fresh :class:`BetaReputation` instances).
    """

    name = "provider_backoff"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.GLOBAL
    )
    paper_ref = "Section 5, research direction 2"

    def __init__(
        self,
        provider_of: Mapping[EntityId, EntityId],
        service_model: Optional[BetaReputation] = None,
        provider_model: Optional[BetaReputation] = None,
    ) -> None:
        self.provider_of: Mapping[EntityId, EntityId] = provider_of
        self.service_model = service_model or BetaReputation()
        self.provider_model = provider_model or BetaReputation()

    def register_service(
        self, service: EntityId, provider: EntityId
    ) -> None:
        """Attach *service* to *provider* (for mutable mappings)."""
        if isinstance(self.provider_of, dict):
            self.provider_of[service] = provider

    def record(self, feedback: Feedback) -> None:
        self.service_model.record(feedback)
        provider = self.provider_of.get(feedback.target)
        if provider is not None:
            self.provider_model.record(
                Feedback(
                    rater=feedback.rater,
                    target=provider,
                    time=feedback.time,
                    rating=feedback.rating,
                )
            )

    def provider_reputation(self, provider: EntityId) -> float:
        return self.provider_model.score(provider)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        own = self.service_model.score(target, perspective, now)
        provider = self.provider_of.get(target)
        if provider is None:
            return own
        confidence = self.service_model.confidence(target)
        provider_score = self.provider_model.score(provider,
                                                   perspective, now)
        return confidence * own + (1.0 - confidence) * provider_score
