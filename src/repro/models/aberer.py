"""Aberer & Despotovic's complaint-based trust — decentralized /
person-agent / global.

"Managing trust in a peer-to-peer information system": the *only*
behavioural data is **complaints** — after a bad interaction, the
wronged peer files a complaint about the other.  An agent's
(dis)trustworthiness is assessed from complaints it *received* (cr) and
complaints it *filed* (cf); the decision statistic is their product

.. math::  T(p) = cr(p) \\cdot cf(p)

because a malicious peer both misbehaves (collecting cr) and covers
itself by complaining about honest partners (inflating cf).  A peer is
judged untrustworthy when ``T(p)`` exceeds the population average by a
tolerance factor.  Complaint records live on a P-Grid in the original;
:meth:`store_on_pgrid` / :meth:`assess_via_pgrid` reproduce that
deployment, while the model also runs standalone.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.p2p.pgrid import PGrid


class AbererDespotovicModel(ReputationModel):
    """Complaint-based binary trust with a graded score.

    Args:
        complaint_threshold: rating below this files a complaint.
        tolerance: multiple of the average complaint statistic above
            which a peer is judged untrustworthy.
    """

    name = "aberer_despotovic"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    )
    paper_ref = "[1]"

    def __init__(
        self,
        complaint_threshold: float = 0.5,
        tolerance: float = 2.0,
    ) -> None:
        if not 0.0 <= complaint_threshold <= 1.0:
            raise ConfigurationError("complaint_threshold must be in [0, 1]")
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        self.complaint_threshold = complaint_threshold
        self.tolerance = tolerance
        self._received: Dict[EntityId, int] = {}
        self._filed: Dict[EntityId, int] = {}
        self._interactions: Dict[EntityId, int] = {}

    # -- evidence -------------------------------------------------------
    def file_complaint(self, complainant: EntityId, about: EntityId) -> None:
        self._received[about] = self._received.get(about, 0) + 1
        self._filed[complainant] = self._filed.get(complainant, 0) + 1

    def record(self, feedback: Feedback) -> None:
        self._interactions[feedback.target] = (
            self._interactions.get(feedback.target, 0) + 1
        )
        self._interactions.setdefault(feedback.rater, 0)
        if feedback.rating < self.complaint_threshold:
            self.file_complaint(feedback.rater, feedback.target)
        else:
            self._received.setdefault(feedback.target, 0)
            self._filed.setdefault(feedback.rater, 0)

    def complaints(self, peer: EntityId) -> Tuple[int, int]:
        """(received, filed) complaint counts for *peer*."""
        return self._received.get(peer, 0), self._filed.get(peer, 0)

    # -- assessment ------------------------------------------------------
    def statistic(self, peer: EntityId) -> float:
        """The decision statistic cr(p) * cf(p), smoothed by +1."""
        cr, cf = self.complaints(peer)
        return float((cr + 1) * (cf + 1))

    def _population_average(self) -> float:
        peers = (
            set(self._received) | set(self._filed) | set(self._interactions)
        )
        if not peers:
            return 1.0
        return sum(self.statistic(p) for p in sorted(peers)) / len(peers)

    def is_trustworthy(self, peer: EntityId) -> bool:
        """Aberer & Despotovic's binary decision."""
        return self.statistic(peer) <= self.tolerance * self._population_average()

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        """Graded score: average statistic maps to 0.5, higher is worse."""
        average = self._population_average()
        ratio = self.statistic(target) / average if average > 0 else 1.0
        return 1.0 / (1.0 + ratio)  # ratio 1 -> 0.5, clean peer -> ~1

    # -- P-Grid deployment --------------------------------------------------
    def store_on_pgrid(
        self,
        pgrid: PGrid,
        origin: EntityId,
        complainant: EntityId,
        about: EntityId,
        time: float = 0.0,
    ) -> int:
        """File a complaint as a P-Grid record under the subject's key.

        Returns messages used.  Complaints are encoded as rating-0
        feedback so P-Grid peers can store them natively.
        """
        record = Feedback(
            rater=complainant, target=about, time=time, rating=0.0
        )
        return pgrid.insert(origin, about, record)

    def assess_via_pgrid(
        self, pgrid: PGrid, origin: EntityId, peer: EntityId
    ) -> Tuple[int, int]:
        """Fetch *peer*'s complaint count from the overlay.

        Returns ``(complaints_received, messages)``.
        """
        records, messages = pgrid.lookup(origin, peer, peer)
        complaints = sum(1 for fb in records if fb.rating <= 0.0)
        return complaints, messages
