"""Histos (Zacharia, Moukas & Maes) — centralized / person-agent /
personalized.

Where Sporas keeps one global value, Histos answers "what does *this*
user think of that one?" by walking the directed rating graph rooted at
the asking user.  The personalized reputation of ``x`` for root ``u``:

* the direct rating ``u -> x`` when it exists, else
* the recursive weighted mean over ``u``'s rated acquaintances ``y``:
  weight = ``u``'s (recursive) trust in ``y``, value = trust of ``y`` in
  ``x`` — evaluated breadth-first to a depth bound, ignoring cycles.

Only the *latest* rating per (rater, target) edge counts, matching the
"most recent experience dominates" reading in the original paper.

Events live in the columnar :class:`~repro.store.EventStore`; the
latest-edge graph the walks consume is replayed lazily (codes, not
strings).  The *global* fallback — the hot batch path when no
perspective is given — is a columnar kernel: latest-per-pair rows via
one lexsort, then a per-target ``np.bincount`` mean.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback, feedback_columns
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.store import EventStore, group_sums, latest_rows


class HistosModel(ReputationModel):
    """Personalized reputation over the rating graph.

    Args:
        max_depth: longest referral chain considered.
        prior: score when no path from the perspective reaches the target.
    """

    name = "histos"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    )
    paper_ref = "[37]"

    def __init__(self, max_depth: int = 4, prior: float = 0.5) -> None:
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if not 0.0 <= prior <= 1.0:
            raise ConfigurationError("prior must be in [0, 1]")
        self.max_depth = max_depth
        self.prior = prior
        self._store = EventStore()
        #: rater code -> target code -> (time, rating); latest wins;
        #: replayed lazily off the store rows
        self._edges: Dict[int, Dict[int, Tuple[float, float]]] = {}
        self._replay_pos = 0
        #: global-mean kernel cache: (version, sums, counts) per code
        self._kernel: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    # -- evidence ------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        self._store.append(
            feedback.rater, feedback.target, feedback.rating, feedback.time
        )

    def record_many(self, feedbacks: Iterable[Feedback]) -> None:
        self._store.extend(*feedback_columns(feedbacks))

    def _advance(self) -> None:
        """Replay latest-edge extraction over unconsumed store rows —
        the exact scalar reference for the graph walks."""
        store = self._store
        n = len(store)
        if self._replay_pos == n:
            return
        edges = self._edges
        # reprolint: disable=R007 — scalar reference is the per-row replay
        for rater, target, _facet, value, time in store.iter_rows(
            self._replay_pos
        ):
            outgoing = edges.get(rater)
            if outgoing is None:
                outgoing = {}
                edges[rater] = outgoing
            existing = outgoing.get(target)
            if existing is None or time >= existing[0]:
                outgoing[target] = (time, value)
        self._replay_pos = n

    def direct_rating(
        self, rater: EntityId, target: EntityId
    ) -> Optional[float]:
        self._advance()
        code = self._store.entities.code
        entry = self._edges.get(code(rater), {}).get(code(target))
        return entry[1] if entry else None

    # -- personalized walks (scalar reference, code-keyed) -------------
    def _direct(self, root: int, target: int) -> Optional[float]:
        entry = self._edges.get(root, {}).get(target)
        return entry[1] if entry else None

    def _trust(
        self,
        root: int,
        target: int,
        depth: int,
        visited: Set[int],
    ) -> Optional[float]:
        direct = self._direct(root, target)
        if direct is not None:
            return direct
        if depth <= 0:
            return None
        total_weight = 0.0
        total = 0.0
        for neighbor, (_, weight) in self._edges.get(root, {}).items():
            if neighbor in visited or neighbor == target:
                continue
            if weight <= 0:
                continue  # distrusted acquaintances carry no referrals
            downstream = self._trust(
                neighbor, target, depth - 1, visited | {neighbor}
            )
            if downstream is None:
                continue
            total += weight * downstream
            total_weight += weight
        if total_weight <= 0:
            return None
        return total / total_weight

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        self._advance()
        code = self._store.entities.code
        target_code = code(target)
        if perspective is None:
            # No root given: fall back to the global mean of incoming
            # latest ratings (what a new, unconnected user would see).
            incoming = [
                entry[1]
                for edges in self._edges.values()
                for tgt, entry in edges.items()
                if tgt == target_code
            ]
            if not incoming or target_code < 0:
                return self.prior
            return sum(incoming) / len(incoming)
        value = self._trust(
            code(perspective), target_code, self.max_depth, {code(perspective)}
        )
        return self.prior if value is None else value

    def _trust_many(
        self,
        root: int,
        targets: Sequence[int],
        depth: int,
        visited: Set[int],
    ) -> Dict[int, Optional[float]]:
        """One graph walk evaluating every target simultaneously.

        The per-target recursion's control flow (visited set, depth
        bound) depends only on the path from the root, so a single
        traversal can carry the whole candidate set: each node resolves
        direct ratings locally and recurses once per acquaintance for
        the targets still unresolved, instead of walking the graph once
        per candidate.  Produces exactly what per-target :meth:`_trust`
        calls would.
        """
        results: Dict[int, Optional[float]] = {}
        remaining: List[int] = []
        for target in targets:
            direct = self._direct(root, target)
            if direct is not None:
                results[target] = direct
            else:
                remaining.append(target)
        if not remaining:
            return results
        if depth <= 0:
            for target in remaining:
                results[target] = None
            return results
        totals = {target: 0.0 for target in remaining}
        total_weights = {target: 0.0 for target in remaining}
        for neighbor, (_, weight) in self._edges.get(root, {}).items():
            if neighbor in visited:
                continue
            if weight <= 0:
                continue  # distrusted acquaintances carry no referrals
            # The per-target walk skips the target itself as a referrer.
            subset = [t for t in remaining if t != neighbor]
            if not subset:
                continue
            downstream = self._trust_many(
                neighbor, subset, depth - 1, visited | {neighbor}
            )
            for target in subset:
                value = downstream[target]
                if value is None:
                    continue
                totals[target] += weight * value
                total_weights[target] += weight
        for target in remaining:
            if total_weights[target] <= 0:
                results[target] = None
            else:
                results[target] = totals[target] / total_weights[target]
        return results

    # -- columnar kernel (global fallback) -----------------------------
    def _global_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-code (sum, count) of incoming latest ratings, reduced
        from the store columns and cached per version."""
        store = self._store
        version = store.version
        cached = self._kernel
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        columns = store.snapshot()
        size = max(len(store.entities), 1)
        _keys, rows = latest_rows(columns.pair_keys(), columns.time)
        targets = columns.target[rows]
        sums = group_sums(targets, size, columns.value[rows])
        counts = np.bincount(targets, minlength=size)
        self._kernel = (version, sums, counts)
        return sums, counts

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch scores: columnar latest-edge means for the global view,
        one shared graph traversal for personalized queries."""
        if not targets:
            return []
        if perspective is None:
            sums, counts = self._global_arrays()
            codes = self._store.entities.codes(targets)
            known = codes >= 0
            safe = np.where(known, codes, 0)
            cnt = np.where(known, counts[safe], 0)
            total = np.where(known, sums[safe], 0.0)
            scores = np.where(
                cnt > 0, total / np.maximum(cnt, 1), self.prior
            )
            result: List[float] = scores.tolist()
            return result
        self._advance()
        code = self._store.entities.code
        root = code(perspective)
        target_codes = [code(t) for t in targets]
        values = self._trust_many(
            root, target_codes, self.max_depth, {root}
        )
        return [
            self.prior if values[t] is None else values[t]
            for t in target_codes
        ]
