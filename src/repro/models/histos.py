"""Histos (Zacharia, Moukas & Maes) — centralized / person-agent /
personalized.

Where Sporas keeps one global value, Histos answers "what does *this*
user think of that one?" by walking the directed rating graph rooted at
the asking user.  The personalized reputation of ``x`` for root ``u``:

* the direct rating ``u -> x`` when it exists, else
* the recursive weighted mean over ``u``'s rated acquaintances ``y``:
  weight = ``u``'s (recursive) trust in ``y``, value = trust of ``y`` in
  ``x`` — evaluated breadth-first to a depth bound, ignoring cycles.

Only the *latest* rating per (rater, target) edge counts, matching the
"most recent experience dominates" reading in the original paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


class HistosModel(ReputationModel):
    """Personalized reputation over the rating graph.

    Args:
        max_depth: longest referral chain considered.
        prior: score when no path from the perspective reaches the target.
    """

    name = "histos"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    )
    paper_ref = "[37]"

    def __init__(self, max_depth: int = 4, prior: float = 0.5) -> None:
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if not 0.0 <= prior <= 1.0:
            raise ConfigurationError("prior must be in [0, 1]")
        self.max_depth = max_depth
        self.prior = prior
        #: rater -> target -> (time, rating); latest rating wins
        self._edges: Dict[EntityId, Dict[EntityId, tuple]] = {}

    def record(self, feedback: Feedback) -> None:
        outgoing = self._edges.setdefault(feedback.rater, {})
        existing = outgoing.get(feedback.target)
        if existing is None or feedback.time >= existing[0]:
            outgoing[feedback.target] = (feedback.time, feedback.rating)

    def direct_rating(
        self, rater: EntityId, target: EntityId
    ) -> Optional[float]:
        entry = self._edges.get(rater, {}).get(target)
        return entry[1] if entry else None

    def _trust(
        self,
        root: EntityId,
        target: EntityId,
        depth: int,
        visited: Set[EntityId],
    ) -> Optional[float]:
        direct = self.direct_rating(root, target)
        if direct is not None:
            return direct
        if depth <= 0:
            return None
        total_weight = 0.0
        total = 0.0
        for neighbor, (_, weight) in self._edges.get(root, {}).items():
            if neighbor in visited or neighbor == target:
                continue
            if weight <= 0:
                continue  # distrusted acquaintances carry no referrals
            downstream = self._trust(
                neighbor, target, depth - 1, visited | {neighbor}
            )
            if downstream is None:
                continue
            total += weight * downstream
            total_weight += weight
        if total_weight <= 0:
            return None
        return total / total_weight

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        if perspective is None:
            # No root given: fall back to the global mean of incoming
            # latest ratings (what a new, unconnected user would see).
            incoming = [
                entry[1]
                for edges in self._edges.values()
                for tgt, entry in edges.items()
                if tgt == target
            ]
            if not incoming:
                return self.prior
            return sum(incoming) / len(incoming)
        value = self._trust(
            perspective, target, self.max_depth, {perspective}
        )
        return self.prior if value is None else value

    def _trust_many(
        self,
        root: EntityId,
        targets: Sequence[EntityId],
        depth: int,
        visited: Set[EntityId],
    ) -> Dict[EntityId, Optional[float]]:
        """One graph walk evaluating every target simultaneously.

        The per-target recursion's control flow (visited set, depth
        bound) depends only on the path from the root, so a single
        traversal can carry the whole candidate set: each node resolves
        direct ratings locally and recurses once per acquaintance for
        the targets still unresolved, instead of walking the graph once
        per candidate.  Produces exactly what per-target :meth:`_trust`
        calls would.
        """
        results: Dict[EntityId, Optional[float]] = {}
        remaining: List[EntityId] = []
        for target in targets:
            direct = self.direct_rating(root, target)
            if direct is not None:
                results[target] = direct
            else:
                remaining.append(target)
        if not remaining:
            return results
        if depth <= 0:
            for target in remaining:
                results[target] = None
            return results
        totals = {target: 0.0 for target in remaining}
        total_weights = {target: 0.0 for target in remaining}
        for neighbor, (_, weight) in self._edges.get(root, {}).items():
            if neighbor in visited:
                continue
            if weight <= 0:
                continue  # distrusted acquaintances carry no referrals
            # The per-target walk skips the target itself as a referrer.
            subset = [t for t in remaining if t != neighbor]
            if not subset:
                continue
            downstream = self._trust_many(
                neighbor, subset, depth - 1, visited | {neighbor}
            )
            for target in subset:
                value = downstream[target]
                if value is None:
                    continue
                totals[target] += weight * value
                total_weights[target] += weight
        for target in remaining:
            if total_weights[target] <= 0:
                results[target] = None
            else:
                results[target] = totals[target] / total_weights[target]
        return results

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch personalized scores via one shared graph traversal."""
        if not targets:
            return []
        if perspective is None:
            # Global fallback: one pass over the edge set serves every
            # candidate instead of a full scan per candidate.
            wanted = set(targets)
            sums: Dict[EntityId, float] = {}
            counts: Dict[EntityId, int] = {}
            for edges in self._edges.values():
                for tgt, entry in edges.items():
                    if tgt in wanted:
                        sums[tgt] = sums.get(tgt, 0.0) + entry[1]
                        counts[tgt] = counts.get(tgt, 0) + 1
            return [
                sums[t] / counts[t] if counts.get(t) else self.prior
                for t in targets
            ]
        values = self._trust_many(
            perspective, list(targets), self.max_depth, {perspective}
        )
        return [
            self.prior if values[t] is None else values[t] for t in targets
        ]
