"""Histos (Zacharia, Moukas & Maes) — centralized / person-agent /
personalized.

Where Sporas keeps one global value, Histos answers "what does *this*
user think of that one?" by walking the directed rating graph rooted at
the asking user.  The personalized reputation of ``x`` for root ``u``:

* the direct rating ``u -> x`` when it exists, else
* the recursive weighted mean over ``u``'s rated acquaintances ``y``:
  weight = ``u``'s (recursive) trust in ``y``, value = trust of ``y`` in
  ``x`` — evaluated breadth-first to a depth bound, ignoring cycles.

Only the *latest* rating per (rater, target) edge counts, matching the
"most recent experience dominates" reading in the original paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


class HistosModel(ReputationModel):
    """Personalized reputation over the rating graph.

    Args:
        max_depth: longest referral chain considered.
        prior: score when no path from the perspective reaches the target.
    """

    name = "histos"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    )
    paper_ref = "[37]"

    def __init__(self, max_depth: int = 4, prior: float = 0.5) -> None:
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if not 0.0 <= prior <= 1.0:
            raise ConfigurationError("prior must be in [0, 1]")
        self.max_depth = max_depth
        self.prior = prior
        #: rater -> target -> (time, rating); latest rating wins
        self._edges: Dict[EntityId, Dict[EntityId, tuple]] = {}

    def record(self, feedback: Feedback) -> None:
        outgoing = self._edges.setdefault(feedback.rater, {})
        existing = outgoing.get(feedback.target)
        if existing is None or feedback.time >= existing[0]:
            outgoing[feedback.target] = (feedback.time, feedback.rating)

    def direct_rating(
        self, rater: EntityId, target: EntityId
    ) -> Optional[float]:
        entry = self._edges.get(rater, {}).get(target)
        return entry[1] if entry else None

    def _trust(
        self,
        root: EntityId,
        target: EntityId,
        depth: int,
        visited: Set[EntityId],
    ) -> Optional[float]:
        direct = self.direct_rating(root, target)
        if direct is not None:
            return direct
        if depth <= 0:
            return None
        total_weight = 0.0
        total = 0.0
        for neighbor, (_, weight) in self._edges.get(root, {}).items():
            if neighbor in visited or neighbor == target:
                continue
            if weight <= 0:
                continue  # distrusted acquaintances carry no referrals
            downstream = self._trust(
                neighbor, target, depth - 1, visited | {neighbor}
            )
            if downstream is None:
                continue
            total += weight * downstream
            total_weight += weight
        if total_weight <= 0:
            return None
        return total / total_weight

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        if perspective is None:
            # No root given: fall back to the global mean of incoming
            # latest ratings (what a new, unconnected user would see).
            incoming = [
                entry[1]
                for edges in self._edges.values()
                for tgt, entry in edges.items()
                if tgt == target
            ]
            if not incoming:
                return self.prior
            return sum(incoming) / len(incoming)
        value = self._trust(
            perspective, target, self.max_depth, {perspective}
        )
        return self.prior if value is None else value
