"""Liu, Ngu & Zeng: extensible QoS computation and policing —
centralized / resource / personalized.

"QoS computation and policing in dynamic web service selection" (WWW
2004): build a candidates × metrics quality matrix from consumer
reports, **min-max normalize each metric column across the candidate
set** (so a metric where everyone ties contributes nothing), then rank
by the consumer's preference-weighted sum.  Because normalization is
relative to the candidate set, scoring is done per *ranking* call —
:meth:`rank` is the native operation and :meth:`score` degenerates to a
single-candidate view.

"Policing": reports older than a freshness window are dropped, and a
candidate needs a minimum report count before its data is trusted at
all (otherwise it scores the neutral prior).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel, ScoredTarget


class LiuNguZengModel(ReputationModel):
    """Matrix-normalized, preference-weighted QoS ranking.

    Args:
        freshness_window: report age limit (policing); None disables.
        min_reports: reports needed before a candidate's data counts.
    """

    name = "liu_ngu_zeng"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    )
    paper_ref = "[16]"

    def __init__(
        self,
        freshness_window: Optional[float] = None,
        min_reports: int = 1,
    ) -> None:
        if freshness_window is not None and freshness_window <= 0:
            raise ConfigurationError("freshness_window must be positive")
        if min_reports < 1:
            raise ConfigurationError("min_reports must be >= 1")
        self.freshness_window = freshness_window
        self.min_reports = min_reports
        self._reports: Dict[EntityId, List[Feedback]] = {}
        #: consumer -> metric weights
        self._preferences: Dict[EntityId, Dict[str, float]] = {}

    def set_preferences(
        self, consumer: EntityId, weights: Mapping[str, float]
    ) -> None:
        self._preferences[consumer] = dict(weights)

    def record(self, feedback: Feedback) -> None:
        self._reports.setdefault(feedback.target, []).append(feedback)

    # -- the QoS matrix ------------------------------------------------------
    def _fresh_reports(
        self, target: EntityId, now: Optional[float]
    ) -> List[Feedback]:
        reports = self._reports.get(target, [])
        if self.freshness_window is None or now is None:
            return reports
        return [
            fb for fb in reports if now - fb.time <= self.freshness_window
        ]

    def quality_row(
        self, target: EntityId, now: Optional[float] = None
    ) -> Optional[Dict[str, float]]:
        """Mean per-facet quality from fresh reports; None if too few."""
        reports = self._fresh_reports(target, now)
        if len(reports) < self.min_reports:
            return None
        facets: Dict[str, List[float]] = {}
        for fb in reports:
            source = fb.facet_ratings or {"overall": fb.rating}
            for facet, rating in source.items():
                facets.setdefault(facet, []).append(rating)
        return {f: safe_mean(vals) for f, vals in facets.items()}

    def quality_matrix(
        self, candidates: Iterable[EntityId], now: Optional[float] = None
    ) -> Dict[EntityId, Dict[str, float]]:
        matrix: Dict[EntityId, Dict[str, float]] = {}
        for candidate in candidates:
            row = self.quality_row(candidate, now)
            if row is not None:
                matrix[candidate] = row
        return matrix

    @staticmethod
    def _normalize_columns(
        matrix: Mapping[EntityId, Mapping[str, float]],
    ) -> Dict[EntityId, Dict[str, float]]:
        """Min-max normalize each metric column across candidates.

        A column with zero spread contributes 0.5 for everyone (it
        cannot discriminate).
        """
        metrics = sorted({m for row in matrix.values() for m in row})
        ranges: Dict[str, tuple] = {}
        for metric in metrics:
            values = [row[metric] for row in matrix.values() if metric in row]
            ranges[metric] = (min(values), max(values))
        normalized: Dict[EntityId, Dict[str, float]] = {}
        for candidate, row in matrix.items():
            out: Dict[str, float] = {}
            for metric, value in row.items():
                low, high = ranges[metric]
                if high - low <= 1e-12:
                    out[metric] = 0.5
                else:
                    out[metric] = (value - low) / (high - low)
            normalized[candidate] = out
        return normalized

    # -- ranking (native operation) -----------------------------------------------
    def rank(
        self,
        candidates: Iterable[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[ScoredTarget]:
        candidates = list(candidates)
        matrix = self.quality_matrix(candidates, now)
        normalized = self._normalize_columns(matrix)
        weights = self._preferences.get(perspective, {}) if perspective else {}
        scored: List[ScoredTarget] = []
        for candidate in candidates:
            row = normalized.get(candidate)
            if row is None:
                scored.append(ScoredTarget(candidate, 0.5))
                continue
            if weights:
                common = {m: w for m, w in weights.items() if m in row}
                total = sum(common.values())
                if total > 0:
                    value = sum(row[m] * w for m, w in common.items()) / total
                    scored.append(ScoredTarget(candidate, value))
                    continue
            scored.append(
                ScoredTarget(candidate, safe_mean(row.values(), default=0.5))
            )
        scored.sort(key=lambda st: (-st.score, st.target))
        return scored

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        """Absolute (non-candidate-relative) view: mean fresh quality."""
        row = self.quality_row(target, now)
        if row is None:
            return 0.5
        weights = self._preferences.get(perspective, {}) if perspective else {}
        if weights:
            common = {m: w for m, w in weights.items() if m in row}
            total = sum(common.values())
            if total > 0:
                return sum(row[m] * w for m, w in common.items()) / total
        return safe_mean(row.values(), default=0.5)

    def police(self, now: float) -> int:
        """Drop stale reports permanently; returns count removed."""
        if self.freshness_window is None:
            return 0
        removed = 0
        for target in list(self._reports):
            kept = [
                fb
                for fb in self._reports[target]
                if now - fb.time <= self.freshness_window
            ]
            removed += len(self._reports[target]) - len(kept)
            if kept:
                self._reports[target] = kept
            else:
                del self._reports[target]
        return removed
