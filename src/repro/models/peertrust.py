"""PeerTrust (Xiong & Liu) — decentralized / person-agent / global.

The general trust metric (their eq. 3):

.. math::

    T(u) = \\alpha \\cdot
           \\frac{\\sum_i S(u,i) \\cdot Cr(p(u,i)) \\cdot TF(u,i)}
                {\\sum_i Cr(p(u,i)) \\cdot TF(u,i)}
           + \\beta \\cdot CF(u)

with five factors: per-transaction **satisfaction** S, **credibility**
Cr of the rater, **transaction context** TF (e.g. transaction size),
an additive **community context** CF (e.g. rewarding peers who file
feedback), and the weights α, β.

Both published credibility measures are implemented:

* **PSM** — peer-feedback similarity: Cr(v) from the similarity of v's
  rating vector to the evaluator's over commonly-rated peers (robust to
  collusion: colluders' skewed vectors diverge from honest ones);
* **TVM** — trust-value: Cr(v) is v's own (recursively damped) trust.

Events live in the columnar :class:`~repro.store.EventStore` (one
append per report; the transaction-context factor, which needs the
interaction object, is captured eagerly in a row-aligned side column).
The scalar path replays the transaction/filed structures lazily — the
exact reference.  ``score_many`` is a columnar kernel: windowed rows
via one lexsort, PSM rating vectors and similarities via pair-key
``np.bincount`` reductions, and the TVM recursion as per-depth
vectorized sweeps over all entities at once.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback, feedback_columns
from repro.common.simtime import from_ticks, ticks_array, to_ticks
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.store import EventStore


class CredibilityMeasure(enum.Enum):
    PSM = "feedback_similarity"
    TVM = "trust_value"


@dataclass(frozen=True)
class _Transaction:
    rater: EntityId
    satisfaction: float
    context: float
    time: float


def _transaction_context(feedback: Feedback) -> float:
    """TF: successful, observation-rich interactions weigh more than
    thin ones; reports without a backing interaction weigh 1."""
    if feedback.interaction is None:
        return 1.0
    return 0.5 + 0.5 * min(
        1.0, len(feedback.interaction.observations) / 3.0
    )


class PeerTrustModel(ReputationModel):
    """PeerTrust's five-factor metric.

    Args:
        credibility: PSM (default, collusion-resistant) or TVM.
        alpha / beta: weights of the satisfaction term and the community
            context term (alpha + beta should be 1).
        window: number of most recent transactions evaluated.
        tvm_depth: recursion damping for the TVM measure.
    """

    name = "peertrust"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    )
    paper_ref = "[33]"

    def __init__(
        self,
        credibility: CredibilityMeasure = CredibilityMeasure.PSM,
        alpha: float = 0.9,
        beta: float = 0.1,
        window: int = 50,
        tvm_depth: int = 2,
    ) -> None:
        if alpha < 0 or beta < 0 or alpha + beta <= 0:
            raise ConfigurationError("alpha/beta must be non-negative, sum > 0")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if tvm_depth < 0:
            raise ConfigurationError("tvm_depth must be >= 0")
        self.credibility = credibility
        self.alpha = alpha
        self.beta = beta
        self.window = window
        self.tvm_depth = tvm_depth
        #: int64 tick times end to end — the shard exchange format —
        #: so replayed windows never round-trip through float.
        self._store = EventStore(time_dtype="int64")
        #: row-aligned transaction-context column (TF needs the
        #: interaction object, so it is captured at record time)
        self._ctx: List[float] = []
        #: scalar reference state keyed by entity code, replayed lazily:
        #: target -> [(rater, satisfaction, context, time), ...]
        self._tx: Dict[int, List[Tuple[int, float, float, float]]] = {}
        #: rater -> subject -> filed satisfactions (for PSM)
        self._filed: Dict[int, Dict[int, List[float]]] = {}
        self._filed_count: Dict[int, int] = {}
        self._replay_pos = 0
        #: columnar kernel caches (base per version, scores per
        #: (version, perspective code))
        self._kernel_base: Optional[Tuple[int, Dict[str, np.ndarray]]] = None
        self._kernel_scores: Dict[Optional[int], np.ndarray] = {}
        self._kernel_scores_key = -1

    # -- evidence ----------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        self._ctx.append(_transaction_context(feedback))
        self._store.append(
            feedback.rater,
            feedback.target,
            feedback.rating,
            to_ticks(feedback.time),
        )

    def record_many(self, feedbacks: Iterable[Feedback]) -> None:
        batch = list(feedbacks)
        self._ctx.extend(_transaction_context(fb) for fb in batch)
        raters, targets, values, times = feedback_columns(batch)
        self._store.extend(raters, targets, values, ticks_array(times))

    def _advance(self) -> None:
        """Replay transaction/filed accumulation over unconsumed store
        rows — the exact scalar reference."""
        store = self._store
        n = len(store)
        if self._replay_pos == n:
            return
        tx = self._tx
        filed = self._filed
        filed_count = self._filed_count
        ctx = self._ctx
        row = self._replay_pos
        # reprolint: disable=R007 — scalar reference is the per-row replay
        for rater, target, _facet, value, time in store.iter_rows(row):
            tx.setdefault(target, []).append(
                (rater, value, ctx[row], time)
            )
            filed.setdefault(rater, {}).setdefault(target, []).append(value)
            filed_count[rater] = filed_count.get(rater, 0) + 1
            row += 1
        self._replay_pos = n

    @property
    def _transactions(self) -> Dict[EntityId, List[_Transaction]]:
        """String-keyed view of the replayed transaction log (kept for
        introspection/tests; internal code uses the code-keyed state)."""
        self._advance()
        value_of = self._store.entities.value
        return {
            value_of(target): [
                _Transaction(value_of(r), sat, context, from_ticks(time))
                for r, sat, context, time in rows
            ]
            for target, rows in self._tx.items()
        }

    # -- credibility -------------------------------------------------------
    def feedback_similarity(
        self, evaluator: Optional[EntityId], rater: EntityId
    ) -> float:
        """PSM: root-mean-square similarity of filed ratings.

        Compared against *evaluator*'s vector when it shares rated
        subjects with *rater*; otherwise against the community mean
        vector (Xiong & Liu's fallback for sparse overlap).
        """
        self._advance()
        code = self._store.entities.code
        return self._similarity(
            None if evaluator is None else code(evaluator), code(rater)
        )

    def _similarity(self, evaluator: Optional[int], rater: int) -> float:
        rater_vector = {
            subject: sum(vals) / len(vals)
            for subject, vals in self._filed.get(rater, {}).items()
        }
        if not rater_vector:
            return 0.5
        reference: Dict[int, float] = {}
        if evaluator is not None and evaluator != rater:
            reference = {
                subject: sum(vals) / len(vals)
                for subject, vals in self._filed.get(evaluator, {}).items()
            }
        common = sorted(set(rater_vector) & set(reference))
        if not common:
            # Community mean fallback.
            pooled: Dict[int, List[float]] = {}
            for filed in self._filed.values():
                for subject, vals in filed.items():
                    pooled.setdefault(subject, []).append(
                        sum(vals) / len(vals)
                    )
            reference = {
                s: sum(vs) / len(vs) for s, vs in pooled.items()
            }
            common = sorted(set(rater_vector) & set(reference))
            if not common:
                return 0.5
        squared = sum(
            (rater_vector[s] - reference[s]) ** 2 for s in common
        ) / len(common)
        return 1.0 - math.sqrt(squared)

    def _credibility(
        self,
        evaluator: Optional[int],
        rater: int,
        depth: int,
        memo: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> float:
        """Cr of *rater*; *memo* (one per batch query) caches values
        across the candidate set — credibility depends on the rater,
        not on which target is being scored."""
        if memo is not None:
            key = (rater, depth)
            cached = memo.get(key)
            if cached is not None:
                return cached
        if self.credibility is CredibilityMeasure.PSM:
            value = max(0.0, self._similarity(evaluator, rater))
        elif depth <= 0:
            value = 0.5
        else:
            value = self._trust(rater, evaluator, depth - 1, memo)
        if memo is not None:
            memo[(rater, depth)] = value
        return value

    # -- the metric --------------------------------------------------------
    def community_context(self, peer: EntityId) -> float:
        """CF: reward for contributing feedback (saturating)."""
        self._advance()
        filed = self._filed_count.get(self._store.entities.code(peer), 0)
        return filed / (filed + 5.0)

    def _trust(
        self,
        target: int,
        perspective: Optional[int],
        depth: int,
        memo: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> float:
        transactions = self._tx.get(target, [])
        recent = sorted(transactions, key=lambda t: t[3])[-self.window:]
        if not recent:
            base = 0.5
        else:
            numerator = 0.0
            denominator = 0.0
            for rater, satisfaction, context, _time in recent:
                cr = self._credibility(perspective, rater, depth, memo)
                weight = cr * context
                numerator += satisfaction * weight
                denominator += weight
            base = numerator / denominator if denominator > 0 else 0.5
        filed = self._filed_count.get(target, 0)
        total = self.alpha + self.beta
        value = (
            self.alpha * base + self.beta * (filed / (filed + 5.0))
        ) / total
        return min(1.0, max(0.0, value))

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        self._advance()
        code = self._store.entities.code
        return self._trust(
            code(target),
            None if perspective is None else code(perspective),
            self.tvm_depth,
        )

    def score_many_reference(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """The pre-columnar batched path: per-target scalar trust with
        one shared credibility memo — kept as the parity/bench
        reference.  (PSM similarity and the TVM recursion depend on the
        rater being weighed, not on the candidate being scored, so one
        memo serves the whole candidate set.)"""
        self._advance()
        code = self._store.entities.code
        persp = None if perspective is None else code(perspective)
        memo: Dict[Tuple[int, int], float] = {}
        return [
            self._trust(code(t), persp, self.tvm_depth, memo)
            for t in targets
        ]

    # -- columnar kernel ---------------------------------------------------
    def _base_arrays(self) -> Dict[str, np.ndarray]:
        """Perspective-independent reductions, cached per version:
        windowed transaction rows, pair rating vectors, community
        reference vector, and the CF array."""
        store = self._store
        version = store.version
        cached = self._kernel_base
        if cached is not None and cached[0] == version:
            return cached[1]
        columns = store.snapshot()
        size = max(len(store.entities), 1)
        # Last `window` rows per target in time order (lexsort is
        # stable, so time ties keep append order — exactly the scalar
        # sorted()[-window:] selection).
        index = store.by_target_time()
        sizes = index.group_sizes()
        per_row_size = np.repeat(sizes, sizes)
        keep = index.ranks() >= per_row_size - self.window
        win_rows = index.order[keep]
        ctx = np.asarray(self._ctx, dtype=np.float64)
        # Per-(rater, subject) mean filed satisfaction — the PSM rating
        # vectors.  upairs is ascending, so a rater's subjects appear in
        # ascending code order (= the scalar's sorted(common) order).
        upairs, inverse = np.unique(
            columns.pair_keys(), return_inverse=True
        )
        pair_counts = np.bincount(inverse).astype(np.float64)
        pair_sums = np.bincount(inverse, weights=columns.value)
        pair_mean = pair_sums / np.maximum(pair_counts, 1.0)
        pair_rater = (upairs >> 32).astype(np.int64)
        pair_subject = (upairs & 0xFFFFFFFF).astype(np.int64)
        # Community reference: per subject, mean of the rater means.
        comm_cnt = np.bincount(pair_subject, minlength=size)
        comm_sum = np.bincount(
            pair_subject, weights=pair_mean, minlength=size
        )
        comm_mean = comm_sum / np.maximum(comm_cnt, 1)
        filed = np.bincount(columns.rater, minlength=size)
        base = {
            "win_targets": columns.target[win_rows],
            "win_raters": columns.rater[win_rows],
            "win_sat": columns.value[win_rows],
            "win_ctx": ctx[win_rows] if len(ctx) else ctx,
            "pair_rater": pair_rater,
            "pair_subject": pair_subject,
            "pair_mean": pair_mean,
            "comm_mean": comm_mean,
            "cf": filed / (filed + 5.0),
        }
        self._kernel_base = (version, base)
        if self._kernel_scores_key != version:
            self._kernel_scores = {}
            self._kernel_scores_key = version
        return base

    def _psm_credibility(
        self, base: Dict[str, np.ndarray], perspective: Optional[int]
    ) -> np.ndarray:
        """Cr(v) for every entity code under PSM: similarity against
        the evaluator's vector over shared subjects, community-mean
        fallback otherwise, floored at 0."""
        size = len(base["cf"])
        pair_rater = base["pair_rater"]
        pair_subject = base["pair_subject"]
        pair_mean = base["pair_mean"]
        reference = np.full(size, np.nan)
        if perspective is not None and perspective >= 0:
            own = pair_rater == perspective
            reference[pair_subject[own]] = pair_mean[own]
        ref_vals = reference[pair_subject]
        # The evaluator compares others against itself, never itself.
        valid = ~np.isnan(ref_vals)
        if perspective is not None:
            valid &= pair_rater != perspective
        diff_sq = np.where(valid, (pair_mean - ref_vals) ** 2, 0.0)
        cnt1 = np.bincount(
            pair_rater, weights=valid.astype(np.float64), minlength=size
        )
        ssq1 = np.bincount(pair_rater, weights=diff_sq, minlength=size)
        comm_vals = base["comm_mean"][pair_subject]
        cnt2 = np.bincount(pair_rater, minlength=size).astype(np.float64)
        ssq2 = np.bincount(
            pair_rater, weights=(pair_mean - comm_vals) ** 2, minlength=size
        )
        sim_eval = 1.0 - np.sqrt(ssq1 / np.maximum(cnt1, 1.0))
        sim_comm = 1.0 - np.sqrt(ssq2 / np.maximum(cnt2, 1.0))
        sim = np.where(
            cnt1 > 0, sim_eval, np.where(cnt2 > 0, sim_comm, 0.5)
        )
        return np.maximum(0.0, sim)

    def _trust_sweep(
        self, base: Dict[str, np.ndarray], cr_rows: np.ndarray
    ) -> np.ndarray:
        """One application of eq. 3 over all entities at once, given
        per-windowed-row credibilities (bincount adds contributions in
        the scalar's time order — bit-identical accumulation)."""
        size = len(base["cf"])
        weights = cr_rows * base["win_ctx"]
        num = np.bincount(
            base["win_targets"],
            weights=base["win_sat"] * weights,
            minlength=size,
        )
        den = np.bincount(
            base["win_targets"], weights=weights, minlength=size
        )
        metric = np.where(den > 0, num / np.maximum(den, 1e-300), 0.5)
        total = self.alpha + self.beta
        value = (self.alpha * metric + self.beta * base["cf"]) / total
        return np.clip(value, 0.0, 1.0)

    def _kernel_trust(self, perspective: Optional[int]) -> np.ndarray:
        base = self._base_arrays()
        cached = self._kernel_scores.get(perspective)
        if cached is not None:
            return cached
        if self.credibility is CredibilityMeasure.PSM:
            cr = self._psm_credibility(base, perspective)
            trust = self._trust_sweep(base, cr[base["win_raters"]])
        else:
            # TVM: trust at depth d weighs raters by their depth-(d-1)
            # trust, grounded at Cr = 0.5 for depth 0.
            trust = self._trust_sweep(
                base, np.full(len(base["win_raters"]), 0.5)
            )
            for _depth in range(self.tvm_depth):
                trust = self._trust_sweep(base, trust[base["win_raters"]])
        self._kernel_scores[perspective] = trust
        return trust

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch trust from the columnar kernel (gather per candidate)."""
        store = self._store
        persp = (
            None
            if perspective is None
            else store.entities.code(perspective)
        )
        trust = self._kernel_trust(persp)
        codes = store.entities.codes(targets)
        known = codes >= 0
        safe = np.where(known, codes, 0)
        total = self.alpha + self.beta
        unknown = min(1.0, max(0.0, (self.alpha * 0.5) / total))
        scores = np.where(known, trust[safe], unknown)
        result: List[float] = scores.tolist()
        return result
