"""PeerTrust (Xiong & Liu) — decentralized / person-agent / global.

The general trust metric (their eq. 3):

.. math::

    T(u) = \\alpha \\cdot
           \\frac{\\sum_i S(u,i) \\cdot Cr(p(u,i)) \\cdot TF(u,i)}
                {\\sum_i Cr(p(u,i)) \\cdot TF(u,i)}
           + \\beta \\cdot CF(u)

with five factors: per-transaction **satisfaction** S, **credibility**
Cr of the rater, **transaction context** TF (e.g. transaction size),
an additive **community context** CF (e.g. rewarding peers who file
feedback), and the weights α, β.

Both published credibility measures are implemented:

* **PSM** — peer-feedback similarity: Cr(v) from the similarity of v's
  rating vector to the evaluator's over commonly-rated peers (robust to
  collusion: colluders' skewed vectors diverge from honest ones);
* **TVM** — trust-value: Cr(v) is v's own (recursively damped) trust.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


class CredibilityMeasure(enum.Enum):
    PSM = "feedback_similarity"
    TVM = "trust_value"


@dataclass(frozen=True)
class _Transaction:
    rater: EntityId
    satisfaction: float
    context: float
    time: float


class PeerTrustModel(ReputationModel):
    """PeerTrust's five-factor metric.

    Args:
        credibility: PSM (default, collusion-resistant) or TVM.
        alpha / beta: weights of the satisfaction term and the community
            context term (alpha + beta should be 1).
        window: number of most recent transactions evaluated.
        tvm_depth: recursion damping for the TVM measure.
    """

    name = "peertrust"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    )
    paper_ref = "[33]"

    def __init__(
        self,
        credibility: CredibilityMeasure = CredibilityMeasure.PSM,
        alpha: float = 0.9,
        beta: float = 0.1,
        window: int = 50,
        tvm_depth: int = 2,
    ) -> None:
        if alpha < 0 or beta < 0 or alpha + beta <= 0:
            raise ConfigurationError("alpha/beta must be non-negative, sum > 0")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if tvm_depth < 0:
            raise ConfigurationError("tvm_depth must be >= 0")
        self.credibility = credibility
        self.alpha = alpha
        self.beta = beta
        self.window = window
        self.tvm_depth = tvm_depth
        self._transactions: Dict[EntityId, List[_Transaction]] = {}
        #: rater -> subject -> mean satisfaction filed (for PSM)
        self._filed: Dict[EntityId, Dict[EntityId, List[float]]] = {}
        self._feedback_filed_count: Dict[EntityId, int] = {}

    # -- evidence ----------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        context = 1.0
        if feedback.interaction is not None:
            # Transaction context: successful, observation-rich
            # interactions weigh more than thin ones.
            context = 0.5 + 0.5 * min(
                1.0, len(feedback.interaction.observations) / 3.0
            )
        self._transactions.setdefault(feedback.target, []).append(
            _Transaction(
                rater=feedback.rater,
                satisfaction=feedback.rating,
                context=context,
                time=feedback.time,
            )
        )
        self._filed.setdefault(feedback.rater, {}).setdefault(
            feedback.target, []
        ).append(feedback.rating)
        self._feedback_filed_count[feedback.rater] = (
            self._feedback_filed_count.get(feedback.rater, 0) + 1
        )

    # -- credibility -----------------------------------------------------------
    def feedback_similarity(
        self, evaluator: Optional[EntityId], rater: EntityId
    ) -> float:
        """PSM: root-mean-square similarity of filed ratings.

        Compared against *evaluator*'s vector when it shares rated
        subjects with *rater*; otherwise against the community mean
        vector (Xiong & Liu's fallback for sparse overlap).
        """
        rater_vector = {
            subject: sum(vals) / len(vals)
            for subject, vals in self._filed.get(rater, {}).items()
        }
        if not rater_vector:
            return 0.5
        reference: Dict[EntityId, float] = {}
        if evaluator is not None and evaluator != rater:
            reference = {
                subject: sum(vals) / len(vals)
                for subject, vals in self._filed.get(evaluator, {}).items()
            }
        common = sorted(set(rater_vector) & set(reference))
        if not common:
            # Community mean fallback.
            reference = {}
            for filed in self._filed.values():
                for subject, vals in filed.items():
                    reference.setdefault(subject, []).append(
                        sum(vals) / len(vals)
                    )
            reference = {
                s: sum(vs) / len(vs) for s, vs in reference.items()
            }
            common = sorted(set(rater_vector) & set(reference))
            if not common:
                return 0.5
        squared = sum(
            (rater_vector[s] - reference[s]) ** 2 for s in common
        ) / len(common)
        return 1.0 - math.sqrt(squared)

    def _credibility(
        self,
        evaluator: Optional[EntityId],
        rater: EntityId,
        depth: int,
        memo: Optional[Dict[Tuple[EntityId, int], float]] = None,
    ) -> float:
        """Cr of *rater*; *memo* (one per batch query) caches values
        across the candidate set — credibility depends on the rater,
        not on which target is being scored."""
        if memo is not None:
            key = (rater, depth)
            cached = memo.get(key)
            if cached is not None:
                return cached
        if self.credibility is CredibilityMeasure.PSM:
            value = max(0.0, self.feedback_similarity(evaluator, rater))
        elif depth <= 0:
            value = 0.5
        else:
            value = self._trust(rater, evaluator, depth - 1, memo)
        if memo is not None:
            memo[(rater, depth)] = value
        return value

    # -- the metric ----------------------------------------------------------------
    def community_context(self, peer: EntityId) -> float:
        """CF: reward for contributing feedback (saturating)."""
        filed = self._feedback_filed_count.get(peer, 0)
        return filed / (filed + 5.0)

    def _trust(
        self,
        target: EntityId,
        perspective: Optional[EntityId],
        depth: int,
        memo: Optional[Dict[Tuple[EntityId, int], float]] = None,
    ) -> float:
        transactions = self._transactions.get(target, [])
        recent = sorted(transactions, key=lambda t: t.time)[-self.window:]
        if not recent:
            base = 0.5
        else:
            numerator = 0.0
            denominator = 0.0
            for tx in recent:
                cr = self._credibility(perspective, tx.rater, depth, memo)
                weight = cr * tx.context
                numerator += tx.satisfaction * weight
                denominator += weight
            base = numerator / denominator if denominator > 0 else 0.5
        total = self.alpha + self.beta
        value = (
            self.alpha * base + self.beta * self.community_context(target)
        ) / total
        return min(1.0, max(0.0, value))

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        return self._trust(target, perspective, self.tvm_depth)

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch trust with one shared credibility cache.

        PSM similarity (and TVM recursion) depends on the rater being
        weighed, not on the candidate being scored, so one memo serves
        the whole candidate set — the per-candidate loop would recompute
        every rater's similarity for every target.
        """
        memo: Dict[Tuple[EntityId, int], float] = {}
        return [
            self._trust(t, perspective, self.tvm_depth, memo)
            for t in targets
        ]
