"""Beta-distribution reputation (Jøsang & Ismail's baseline family).

Not a Figure 4 leaf itself, but the primitive several surveyed systems
reduce to and the "simple global mechanism" the paper's Section 5 says
suffices for services that need no personalization (currency converters,
weather forecasts).  Evidence is accumulated as pseudo-counts
``(alpha, beta)``; the score is the expected value of the Beta posterior.

A *forgetting factor* ``lam`` (Jøsang's longevity) discounts old
evidence multiplicatively on every update, giving the model the
"dynamic" characteristic of Section 3 without storing histories.

Storage is the columnar :class:`~repro.store.EventStore`: ``record`` is
a single store append, the scalar path lazily replays the original
per-event recursion off the store rows (the exact reference), and
``score_many`` reduces the target column with ``np.bincount``.  For
``lam == 1`` the segment sum performs the same additions in the same
order as the recursion, so the two paths agree bitwise; for ``lam < 1``
the kernel evaluates the recursion's closed form.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback, feedback_columns
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.store import EventStore, group_counts, group_sums


class BetaReputation(ReputationModel):
    """Beta reputation with multiplicative forgetting.

    Args:
        prior_alpha / prior_beta: pseudo-counts of the uniform prior.
        lam: forgetting factor in ``(0, 1]``; 1.0 never forgets.
    """

    name = "beta"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.GLOBAL
    )
    paper_ref = "[11] (survey baseline)"

    def __init__(
        self,
        prior_alpha: float = 1.0,
        prior_beta: float = 1.0,
        lam: float = 1.0,
    ) -> None:
        if prior_alpha <= 0 or prior_beta <= 0:
            raise ConfigurationError("priors must be positive")
        if not 0.0 < lam <= 1.0:
            raise ConfigurationError("lam must be in (0, 1]")
        self.prior_alpha = prior_alpha
        self.prior_beta = prior_beta
        self.lam = lam
        self._store = EventStore()
        #: scalar reference state keyed by entity code, advanced lazily
        #: over store rows (`_replay_pos` = rows consumed so far)
        self._evidence: Dict[int, Tuple[float, float]] = {}
        self._replay_pos = 0
        #: columnar kernel cache: (store version, alpha, beta) arrays
        self._kernel: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    # -- evidence ------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        self._store.append(
            feedback.rater, feedback.target, feedback.rating, feedback.time
        )

    def record_many(self, feedbacks: Iterable[Feedback]) -> None:
        self._store.extend(*feedback_columns(feedbacks))

    def _advance(self) -> None:
        """Replay the original per-event recursion over rows the scalar
        state has not consumed yet — the exact reference path."""
        store = self._store
        n = len(store)
        if self._replay_pos == n:
            return
        evidence = self._evidence
        lam = self.lam
        zero = (0.0, 0.0)
        # reprolint: disable=R007 — scalar reference is the per-row replay
        for _rater, target, _facet, value, _time in store.iter_rows(
            self._replay_pos
        ):
            alpha, beta = evidence.get(target, zero)
            evidence[target] = (
                lam * alpha + value,
                lam * beta + (1.0 - value),
            )
        self._replay_pos = n

    def _evidence_for(self, target: EntityId) -> Tuple[float, float]:
        self._advance()
        code = self._store.entities.code(target)
        if code < 0:
            return (0.0, 0.0)
        return self._evidence.get(code, (0.0, 0.0))

    # -- scalar reference ----------------------------------------------
    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        alpha, beta = self._evidence_for(target)
        a = alpha + self.prior_alpha
        b = beta + self.prior_beta
        return a / (a + b)

    def score_many_reference(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """The pre-columnar batched path (hoisted gathers over the
        replayed scalar state) — kept as the parity/bench reference."""
        self._advance()
        evidence = self._evidence
        code = self._store.entities.code
        prior_alpha = self.prior_alpha
        prior_beta = self.prior_beta
        zero = (0.0, 0.0)
        out: List[float] = []
        append = out.append
        for target in targets:
            alpha, beta = evidence.get(code(target), zero)
            a = alpha + prior_alpha
            b = beta + prior_beta
            append(a / (a + b))
        return out

    # -- columnar kernel -----------------------------------------------
    def _kernel_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense per-code (alpha, beta) mass reduced from the store
        columns, cached per store version."""
        store = self._store
        version = store.version
        cached = self._kernel
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        columns = store.snapshot()
        size = max(len(store.entities), 1)
        if self.lam == 1.0:
            # bincount adds weights in row order — exactly the additions
            # the recursion performs when nothing is forgotten.
            alpha = group_sums(columns.target, size, columns.value)
            beta = (
                group_counts(columns.target, size).astype(np.float64) - alpha
            )
        else:
            # Closed form of the recursion: the k-th rating of a target
            # (0-based, n per group) carries weight lam**(n - 1 - k).
            index = store.by_target()
            sizes = index.group_sizes()
            per_row_size = np.repeat(sizes, sizes)
            exponents = per_row_size - 1 - index.ranks()
            weights = np.power(self.lam, exponents.astype(np.float64))
            rows = index.order
            targets = columns.target[rows]
            values = columns.value[rows]
            alpha = group_sums(targets, size, weights * values)
            beta = group_sums(targets, size, weights * (1.0 - values))
        self._kernel = (version, alpha, beta)
        return alpha, beta

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch posterior means: one segment reduction plus a gather."""
        alpha, beta = self._kernel_arrays()
        codes = self._store.entities.codes(targets)
        known = codes >= 0
        safe = np.where(known, codes, 0)
        a = np.where(known, alpha[safe], 0.0) + self.prior_alpha
        b = np.where(known, beta[safe], 0.0) + self.prior_beta
        result: List[float] = (a / (a + b)).tolist()
        return result

    # -- accessors -----------------------------------------------------
    def evidence(self, target: EntityId) -> Tuple[float, float]:
        """Raw accumulated (positive, negative) evidence mass."""
        return self._evidence_for(target)

    def confidence(self, target: EntityId) -> float:
        """Evidence mass mapped to ``[0, 1)``: n / (n + 2)."""
        alpha, beta = self._evidence_for(target)
        n = alpha + beta
        return n / (n + 2.0)
