"""Beta-distribution reputation (Jøsang & Ismail's baseline family).

Not a Figure 4 leaf itself, but the primitive several surveyed systems
reduce to and the "simple global mechanism" the paper's Section 5 says
suffices for services that need no personalization (currency converters,
weather forecasts).  Evidence is accumulated as pseudo-counts
``(alpha, beta)``; the score is the expected value of the Beta posterior.

A *forgetting factor* ``lam`` (Jøsang's longevity) discounts old
evidence multiplicatively on every update, giving the model the
"dynamic" characteristic of Section 3 without storing histories.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


class BetaReputation(ReputationModel):
    """Beta reputation with multiplicative forgetting.

    Args:
        prior_alpha / prior_beta: pseudo-counts of the uniform prior.
        lam: forgetting factor in ``(0, 1]``; 1.0 never forgets.
    """

    name = "beta"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.GLOBAL
    )
    paper_ref = "[11] (survey baseline)"

    def __init__(
        self,
        prior_alpha: float = 1.0,
        prior_beta: float = 1.0,
        lam: float = 1.0,
    ) -> None:
        if prior_alpha <= 0 or prior_beta <= 0:
            raise ConfigurationError("priors must be positive")
        if not 0.0 < lam <= 1.0:
            raise ConfigurationError("lam must be in (0, 1]")
        self.prior_alpha = prior_alpha
        self.prior_beta = prior_beta
        self.lam = lam
        self._evidence: Dict[EntityId, Tuple[float, float]] = {}

    def record(self, feedback: Feedback) -> None:
        alpha, beta = self._evidence.get(feedback.target, (0.0, 0.0))
        alpha = self.lam * alpha + feedback.rating
        beta = self.lam * beta + (1.0 - feedback.rating)
        self._evidence[feedback.target] = (alpha, beta)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        alpha, beta = self._evidence.get(target, (0.0, 0.0))
        a = alpha + self.prior_alpha
        b = beta + self.prior_beta
        return a / (a + b)

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch posterior means with hoisted lookups.

        The score is two adds and a divide, so the batch win comes from
        skipping per-candidate method dispatch — building a numpy array
        out of per-target tuples costs more than the arithmetic it
        saves at ranking-sized batches.
        """
        evidence = self._evidence
        prior_alpha = self.prior_alpha
        prior_beta = self.prior_beta
        zero = (0.0, 0.0)
        out: List[float] = []
        append = out.append
        for target in targets:
            alpha, beta = evidence.get(target, zero)
            a = alpha + prior_alpha
            b = beta + prior_beta
            append(a / (a + b))
        return out

    def evidence(self, target: EntityId) -> Tuple[float, float]:
        """Raw accumulated (positive, negative) evidence mass."""
        return self._evidence.get(target, (0.0, 0.0))

    def confidence(self, target: EntityId) -> float:
        """Evidence mass mapped to ``[0, 1)``: n / (n + 2)."""
        alpha, beta = self._evidence.get(target, (0.0, 0.0))
        n = alpha + beta
        return n / (n + 2.0)
