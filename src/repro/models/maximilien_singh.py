"""Maximilien & Singh's agent-based service reputation — centralized /
resource / personalized.

Their conceptual model: reputation attaches to each **QoS facet** of a
service (the ontology's quality attributes), with an aggregate computed
against the *consumer's* preferences — so the same evidence yields
different selection scores for consumers who weigh facets differently.
Provider *advertisements* participate too: a facet's effective value
blends community reputation with the provider's claim, with the claim's
weight shrinking as evidence accumulates (and a persistent mismatch
between claims and reputation damping the provider's say further).

Explorer agents (their multiagent paper) integrate via
:class:`~repro.services.monitoring.ExplorerAgentPool`, which files
feedback straight into this model's :meth:`record`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.records import Feedback
from repro.core.decay import DecayPolicy, ExponentialDecay
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


@dataclass
class _FacetHistory:
    times: list = field(default_factory=list)
    ratings: list = field(default_factory=list)

    def add(self, time: float, rating: float) -> None:
        self.times.append(time)
        self.ratings.append(rating)

    def weighted_mean(
        self, decay: DecayPolicy, now: Optional[float]
    ) -> Optional[float]:
        if not self.ratings:
            return None
        if now is None:
            return safe_mean(self.ratings)
        ages = now - np.asarray(self.times, dtype=float)
        weights = decay.weights(np.maximum(ages, 0.0))
        weight_sum = float(weights.sum())
        if weight_sum <= 0:
            return safe_mean(self.ratings)
        return float(weights @ np.asarray(self.ratings, dtype=float)) / weight_sum

    def __len__(self) -> int:
        return len(self.ratings)


class MaximilienSinghModel(ReputationModel):
    """Per-facet reputation with advertisement blending.

    Args:
        decay: recency weighting of facet ratings.
        claim_evidence_scale: evidence count at which the provider's
            claim has lost half its weight in the blend.
    """

    name = "maximilien_singh"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    )
    paper_ref = "[18-21]"

    def __init__(
        self,
        decay: Optional[DecayPolicy] = None,
        claim_evidence_scale: float = 5.0,
    ) -> None:
        if claim_evidence_scale <= 0:
            raise ConfigurationError("claim_evidence_scale must be positive")
        self.decay = decay or ExponentialDecay(half_life=100.0)
        self.claim_evidence_scale = claim_evidence_scale
        #: service -> facet -> history
        self._facets: Dict[EntityId, Dict[str, _FacetHistory]] = {}
        self._overall: Dict[EntityId, _FacetHistory] = {}
        #: service -> facet -> provider claim
        self._claims: Dict[EntityId, Dict[str, float]] = {}
        #: consumer -> facet preference weights
        self._preferences: Dict[EntityId, Dict[str, float]] = {}

    # -- ontology inputs ------------------------------------------------
    def register_advertisement(
        self, service: EntityId, claims: Mapping[str, float]
    ) -> None:
        """Store the provider's per-facet QoS claims."""
        for facet, value in claims.items():
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"claim for {facet!r} must be in [0, 1]"
                )
        self._claims[service] = dict(claims)

    def set_preferences(
        self, consumer: EntityId, weights: Mapping[str, float]
    ) -> None:
        """A consumer expresses facet importance via the ontology."""
        self._preferences[consumer] = dict(weights)

    # -- evidence ------------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        self._overall.setdefault(feedback.target, _FacetHistory()).add(
            feedback.time, feedback.rating
        )
        facets = self._facets.setdefault(feedback.target, {})
        for facet, rating in feedback.facet_ratings.items():
            facets.setdefault(facet, _FacetHistory()).add(
                feedback.time, rating
            )

    # -- queries --------------------------------------------------------------
    def facet_reputation(
        self, service: EntityId, facet: str, now: Optional[float] = None
    ) -> float:
        """Community + claim blend for one facet of *service*."""
        history = self._facets.get(service, {}).get(facet)
        claim = self._claims.get(service, {}).get(facet)
        community = (
            history.weighted_mean(self.decay, now) if history else None
        )
        evidence = len(history) if history else 0
        if community is None and claim is None:
            return 0.5
        if community is None:
            assert claim is not None
            return claim
        if claim is None:
            return community
        claim_weight = self.claim_evidence_scale / (
            self.claim_evidence_scale + evidence
        )
        # Providers whose claims diverge from observed reality lose say.
        mismatch = abs(claim - community)
        claim_weight *= max(0.0, 1.0 - mismatch)
        return claim_weight * claim + (1.0 - claim_weight) * community

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        weights = (
            self._preferences.get(perspective) if perspective else None
        )
        facets = set(self._facets.get(target, {})) | set(
            self._claims.get(target, {})
        )
        if not facets:
            history = self._overall.get(target)
            if history is None:
                return 0.5
            value = history.weighted_mean(self.decay, now)
            return 0.5 if value is None else value
        if weights:
            total = 0.0
            weight_sum = 0.0
            for facet in sorted(facets):
                w = weights.get(facet, 0.0)
                if w <= 0:
                    continue
                total += w * self.facet_reputation(target, facet, now)
                weight_sum += w
            if weight_sum > 0:
                return total / weight_sum
        return safe_mean(
            (self.facet_reputation(target, f, now) for f in sorted(facets)),
            default=0.5,
        )
