"""Maximilien & Singh's agent-based service reputation — centralized /
resource / personalized.

Their conceptual model: reputation attaches to each **QoS facet** of a
service (the ontology's quality attributes), with an aggregate computed
against the *consumer's* preferences — so the same evidence yields
different selection scores for consumers who weigh facets differently.
Provider *advertisements* participate too: a facet's effective value
blends community reputation with the provider's claim, with the claim's
weight shrinking as evidence accumulates (and a persistent mismatch
between claims and reputation damping the provider's say further).

Explorer agents (their multiagent paper) integrate via
:class:`~repro.services.monitoring.ExplorerAgentPool`, which files
feedback straight into this model's :meth:`record`.

The per-facet histories stay eager (claims and preferences arrive out
of band), but ``record`` mirrors every report into a columnar
:class:`~repro.store.EventStore` — one overall row plus one row per
facet rating — and ``score_many`` replaces the per-history scans with
one ``DecayPolicy.weights`` call over the whole time column and
``np.bincount`` reductions per (service, facet) group; the claim /
preference blending stays per-candidate Python over those precomputed
means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.records import Feedback
from repro.core.decay import DecayPolicy, ExponentialDecay
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.store import EventStore, OVERALL_FACET


@dataclass
class _FacetHistory:
    times: list = field(default_factory=list)
    ratings: list = field(default_factory=list)

    def add(self, time: float, rating: float) -> None:
        self.times.append(time)
        self.ratings.append(rating)

    def weighted_mean(
        self, decay: DecayPolicy, now: Optional[float]
    ) -> Optional[float]:
        if not self.ratings:
            return None
        if now is None:
            return safe_mean(self.ratings)
        ages = now - np.asarray(self.times, dtype=float)
        weights = decay.weights(np.maximum(ages, 0.0))
        weight_sum = float(weights.sum())
        if weight_sum <= 0:
            return safe_mean(self.ratings)
        return float(weights @ np.asarray(self.ratings, dtype=float)) / weight_sum

    def __len__(self) -> int:
        return len(self.ratings)


class MaximilienSinghModel(ReputationModel):
    """Per-facet reputation with advertisement blending.

    Args:
        decay: recency weighting of facet ratings.
        claim_evidence_scale: evidence count at which the provider's
            claim has lost half its weight in the blend.
    """

    name = "maximilien_singh"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    )
    paper_ref = "[18-21]"

    def __init__(
        self,
        decay: Optional[DecayPolicy] = None,
        claim_evidence_scale: float = 5.0,
    ) -> None:
        if claim_evidence_scale <= 0:
            raise ConfigurationError("claim_evidence_scale must be positive")
        self.decay = decay or ExponentialDecay(half_life=100.0)
        self.claim_evidence_scale = claim_evidence_scale
        #: service -> facet -> history
        self._facets: Dict[EntityId, Dict[str, _FacetHistory]] = {}
        self._overall: Dict[EntityId, _FacetHistory] = {}
        #: service -> facet -> provider claim
        self._claims: Dict[EntityId, Dict[str, float]] = {}
        #: consumer -> facet preference weights
        self._preferences: Dict[EntityId, Dict[str, float]] = {}
        #: columnar mirror of the histories (kernel substrate)
        self._store = EventStore()
        self._kernel: Optional[
            Tuple[Tuple[int, Optional[float]], "_KernelArrays"]
        ] = None

    # -- ontology inputs ------------------------------------------------
    def register_advertisement(
        self, service: EntityId, claims: Mapping[str, float]
    ) -> None:
        """Store the provider's per-facet QoS claims."""
        for facet, value in claims.items():
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"claim for {facet!r} must be in [0, 1]"
                )
        self._claims[service] = dict(claims)

    def set_preferences(
        self, consumer: EntityId, weights: Mapping[str, float]
    ) -> None:
        """A consumer expresses facet importance via the ontology."""
        self._preferences[consumer] = dict(weights)

    # -- evidence ------------------------------------------------------------
    def record(self, feedback: Feedback) -> None:
        self._overall.setdefault(feedback.target, _FacetHistory()).add(
            feedback.time, feedback.rating
        )
        facets = self._facets.setdefault(feedback.target, {})
        for facet, rating in feedback.facet_ratings.items():
            facets.setdefault(facet, _FacetHistory()).add(
                feedback.time, rating
            )
        store = self._store
        store.append(
            feedback.rater, feedback.target, feedback.rating, feedback.time
        )
        for facet, rating in feedback.facet_ratings.items():
            store.append(
                feedback.rater, feedback.target, rating, feedback.time,
                facet=facet,
            )

    # -- queries --------------------------------------------------------------
    def facet_reputation(
        self, service: EntityId, facet: str, now: Optional[float] = None
    ) -> float:
        """Community + claim blend for one facet of *service*."""
        history = self._facets.get(service, {}).get(facet)
        claim = self._claims.get(service, {}).get(facet)
        community = (
            history.weighted_mean(self.decay, now) if history else None
        )
        evidence = len(history) if history else 0
        if community is None and claim is None:
            return 0.5
        if community is None:
            assert claim is not None
            return claim
        if claim is None:
            return community
        claim_weight = self.claim_evidence_scale / (
            self.claim_evidence_scale + evidence
        )
        # Providers whose claims diverge from observed reality lose say.
        mismatch = abs(claim - community)
        claim_weight *= max(0.0, 1.0 - mismatch)
        return claim_weight * claim + (1.0 - claim_weight) * community

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        weights = (
            self._preferences.get(perspective) if perspective else None
        )
        facets = set(self._facets.get(target, {})) | set(
            self._claims.get(target, {})
        )
        if not facets:
            history = self._overall.get(target)
            if history is None:
                return 0.5
            value = history.weighted_mean(self.decay, now)
            return 0.5 if value is None else value
        if weights:
            total = 0.0
            weight_sum = 0.0
            for facet in sorted(facets):
                w = weights.get(facet, 0.0)
                if w <= 0:
                    continue
                total += w * self.facet_reputation(target, facet, now)
                weight_sum += w
            if weight_sum > 0:
                return total / weight_sum
        return safe_mean(
            (self.facet_reputation(target, f, now) for f in sorted(facets)),
            default=0.5,
        )

    # -- columnar kernel -----------------------------------------------
    def _kernel_arrays(self, now: Optional[float]) -> "_KernelArrays":
        """Decay-weighted means for every (service, facet) group in one
        column pass, cached per (store version, now)."""
        store = self._store
        key = (store.version, now)
        cached = self._kernel
        if cached is not None and cached[0] == key:
            return cached[1]
        columns = store.snapshot()
        size = max(len(store.entities), 1)
        if now is not None:
            weights = self.decay.weights(
                np.maximum(now - columns.time, 0.0)
            )
        else:
            weights = np.ones(columns.n)
        overall = columns.facet == OVERALL_FACET
        o_target = columns.target[overall]
        o_value = columns.value[overall]
        o_weight = weights[overall]
        facet_rows = ~overall
        f_keys = columns.target_facet_keys()[facet_rows]
        f_value = columns.value[facet_rows]
        f_weight = weights[facet_rows]
        groups, inverse = np.unique(f_keys, return_inverse=True)
        slots = len(groups)
        facet_groups: Dict[int, List[Tuple[str, int]]] = {}
        facet_name = store.facets.value
        for slot, group in enumerate(groups.tolist()):
            facet_groups.setdefault(group >> 32, []).append(
                (facet_name((group & 0xFFFFFFFF) - 1), slot)
            )
        arrays = _KernelArrays(
            o_num=np.bincount(
                o_target, weights=o_weight * o_value, minlength=size
            ),
            o_den=np.bincount(o_target, weights=o_weight, minlength=size),
            o_plain=np.bincount(o_target, weights=o_value, minlength=size),
            o_cnt=np.bincount(o_target, minlength=size),
            f_num=np.bincount(
                inverse, weights=f_weight * f_value, minlength=slots
            ),
            f_den=np.bincount(inverse, weights=f_weight, minlength=slots),
            f_plain=np.bincount(inverse, weights=f_value, minlength=slots),
            f_cnt=np.bincount(inverse, minlength=slots),
            facet_groups=facet_groups,
        )
        self._kernel = (key, arrays)
        return arrays

    def _facet_blend(
        self,
        arrays: "_KernelArrays",
        slot: Optional[int],
        claim: Optional[float],
    ) -> float:
        """:meth:`facet_reputation` over the precomputed group means."""
        if slot is None:
            community = None
            evidence = 0
        else:
            evidence = int(arrays.f_cnt[slot])
            if arrays.f_den[slot] > 0:
                community = arrays.f_num[slot] / arrays.f_den[slot]
            else:
                community = arrays.f_plain[slot] / evidence
        if community is None and claim is None:
            return 0.5
        if community is None:
            assert claim is not None
            return claim
        if claim is None:
            return community
        claim_weight = self.claim_evidence_scale / (
            self.claim_evidence_scale + evidence
        )
        claim_weight *= max(0.0, 1.0 - abs(claim - community))
        return claim_weight * claim + (1.0 - claim_weight) * community

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch scores over precomputed per-(service, facet) means.

        The column pass replaces the per-history array building of
        :meth:`score`; the claim/preference blending mirrors the scalar
        control flow exactly (same facet iteration order).
        """
        arrays = self._kernel_arrays(now)
        weights = (
            self._preferences.get(perspective) if perspective else None
        )
        codes = self._store.entities.codes(targets)
        results: List[float] = []
        for target, code in zip(targets, codes.tolist()):
            slots = dict(arrays.facet_groups.get(code, ()))
            claims = self._claims.get(target, {})
            facets = set(slots) | set(claims)
            if not facets:
                if code < 0 or arrays.o_cnt[code] == 0:
                    results.append(0.5)
                elif arrays.o_den[code] > 0:
                    results.append(
                        float(arrays.o_num[code] / arrays.o_den[code])
                    )
                else:
                    results.append(
                        float(arrays.o_plain[code] / arrays.o_cnt[code])
                    )
                continue
            if weights:
                total = 0.0
                weight_sum = 0.0
                for facet in sorted(facets):
                    w = weights.get(facet, 0.0)
                    if w <= 0:
                        continue
                    total += w * self._facet_blend(
                        arrays, slots.get(facet), claims.get(facet)
                    )
                    weight_sum += w
                if weight_sum > 0:
                    results.append(float(total / weight_sum))
                    continue
            results.append(
                float(
                    safe_mean(
                        (
                            self._facet_blend(
                                arrays, slots.get(f), claims.get(f)
                            )
                            for f in sorted(facets)
                        ),
                        default=0.5,
                    )
                )
            )
        return results


@dataclass
class _KernelArrays:
    """Per-group reductions backing :meth:`MaximilienSinghModel.score_many`.

    ``o_*`` arrays are indexed by service entity code; ``f_*`` arrays by
    the slot of each (service, facet) group, with ``facet_groups``
    mapping a service code to its ``(facet name, slot)`` pairs.
    """

    o_num: np.ndarray
    o_den: np.ndarray
    o_plain: np.ndarray
    o_cnt: np.ndarray
    f_num: np.ndarray
    f_den: np.ndarray
    f_plain: np.ndarray
    f_cnt: np.ndarray
    facet_groups: Dict[int, List[Tuple[str, int]]]
