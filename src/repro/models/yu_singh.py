"""Yu & Singh's distributed belief model — decentralized / person-agent /
personalized.

Each agent derives a *belief function* about a target from its own
recent ratings: mass on ``{trustworthy}`` for ratings above an upper
threshold, on ``{not trustworthy}`` below a lower threshold, and the
remainder on the frame ``{T, ¬T}`` (uncertainty).  Testimonies from
witnesses are *discounted* by referral-chain length and fused with
**Dempster's rule of combination**.  An agent with enough first-hand
history trusts its own evidence and skips witnesses entirely.

The model runs standalone (every rater of the target is a witness) or
against a :class:`~repro.p2p.referral.ReferralNetwork`, whose chains
supply the per-witness discount exactly as in the original papers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel

#: A belief mass assignment over {T}, {not T}, {T, not T}.
BeliefMass = Tuple[float, float, float]

_VACUOUS: BeliefMass = (0.0, 0.0, 1.0)


def _validate_mass(m: BeliefMass) -> None:
    bt, bn, u = m
    if min(bt, bn, u) < -1e-9 or abs(bt + bn + u - 1.0) > 1e-6:
        raise ConfigurationError(f"invalid belief mass: {m}")


def dempster_combine(m1: BeliefMass, m2: BeliefMass) -> BeliefMass:
    """Dempster's rule for the simple frame {T, ¬T}.

    Raises :class:`ConfigurationError` on total conflict (one source
    fully certain of T, the other fully certain of ¬T).
    """
    _validate_mass(m1)
    _validate_mass(m2)
    bt1, bn1, u1 = m1
    bt2, bn2, u2 = m2
    conflict = bt1 * bn2 + bn1 * bt2
    k = 1.0 - conflict
    if k <= 1e-12:
        raise ConfigurationError("total conflict between belief sources")
    bt = (bt1 * bt2 + bt1 * u2 + u1 * bt2) / k
    bn = (bn1 * bn2 + bn1 * u2 + u1 * bn2) / k
    u = (u1 * u2) / k
    return (bt, bn, u)


def discount(m: BeliefMass, factor: float) -> BeliefMass:
    """Shafer discounting: scale committed mass by *factor* into doubt."""
    if not 0.0 <= factor <= 1.0:
        raise ConfigurationError("discount factor must be in [0, 1]")
    bt, bn, u = m
    return (bt * factor, bn * factor, 1.0 - factor * (bt + bn))


@dataclass(frozen=True)
class Testimony:
    """A witness's discounted belief about a target."""

    __test__ = False  # keep pytest from collecting this as a test class

    witness: EntityId
    mass: BeliefMass
    chain_length: int = 0


class YuSinghModel(ReputationModel):
    """Belief-based trust with witness testimony combination.

    Args:
        upper / lower: rating thresholds splitting evidence into
            trustworthy / untrustworthy / uncertain mass.
        history: number of most recent local ratings considered.
        min_local: first-hand count above which witnesses are ignored.
        referral_discount: per-hop testimony discount (γ).
    """

    name = "yu_singh"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.PERSONALIZED
    )
    paper_ref = "[35, 36]"

    def __init__(
        self,
        upper: float = 0.7,
        lower: float = 0.3,
        history: int = 10,
        min_local: int = 5,
        referral_discount: float = 0.8,
    ) -> None:
        if not 0.0 <= lower < upper <= 1.0:
            raise ConfigurationError("need 0 <= lower < upper <= 1")
        if history < 1 or min_local < 1:
            raise ConfigurationError("history and min_local must be >= 1")
        if not 0.0 < referral_discount <= 1.0:
            raise ConfigurationError("referral_discount must be in (0, 1]")
        self.upper = upper
        self.lower = lower
        self.history = history
        self.min_local = min_local
        self.referral_discount = referral_discount
        #: rater -> target -> list of (time, rating)
        self._local: Dict[EntityId, Dict[EntityId, List[Tuple[float, float]]]] = {}

    def record(self, feedback: Feedback) -> None:
        history = self._local.setdefault(feedback.rater, {}).setdefault(
            feedback.target, []
        )
        history.append((feedback.time, feedback.rating))

    def local_mass(self, agent: EntityId, target: EntityId) -> BeliefMass:
        """The belief function *agent*'s own experience induces."""
        entries = self._local.get(agent, {}).get(target, [])
        recent = sorted(entries, key=lambda e: e[0])[-self.history:]
        if not recent:
            return _VACUOUS
        n = len(recent)
        pos = sum(1 for _, r in recent if r >= self.upper)
        neg = sum(1 for _, r in recent if r <= self.lower)
        return (pos / n, neg / n, (n - pos - neg) / n)

    def local_count(self, agent: EntityId, target: EntityId) -> int:
        return len(self._local.get(agent, {}).get(target, []))

    @staticmethod
    def degree_of_trust(mass: BeliefMass) -> float:
        """Scalar trust from a belief mass: belief + half the doubt."""
        bt, _, u = mass
        return bt + 0.5 * u

    def combine_testimonies(
        self,
        own: BeliefMass,
        testimonies: "list[Testimony]",
    ) -> BeliefMass:
        """Fuse own evidence with chain-discounted witness testimony."""
        combined = own
        for testimony in sorted(testimonies, key=lambda t: t.witness):
            factor = self.referral_discount ** max(1, testimony.chain_length)
            discounted = discount(testimony.mass, factor)
            try:
                combined = dempster_combine(combined, discounted)
            except ConfigurationError:
                # Total conflict: the witness is ignored (Yu & Singh drop
                # fully conflicting testimony rather than failing).
                continue
        return combined

    def testimony_from(
        self, witness: EntityId, target: EntityId, chain_length: int = 1
    ) -> Testimony:
        return Testimony(
            witness=witness,
            mass=self.local_mass(witness, target),
            chain_length=chain_length,
        )

    def score_with_referrals(
        self,
        network,
        perspective: EntityId,
        target: EntityId,
        depth_limit: int = 3,
    ) -> Tuple[float, int]:
        """Score *target* using witnesses found through *network*.

        The full Yu & Singh pipeline: locate witnesses via the referral
        network (:class:`~repro.p2p.referral.ReferralNetwork`), build
        each witness's testimony from the evidence recorded in this
        model, discount by the *actual* chain length the query
        travelled, and combine with Dempster's rule (after the asker's
        own evidence).  Returns ``(trust, messages_used)``.
        """
        own = self.local_mass(perspective, target)
        if self.local_count(perspective, target) >= self.min_local:
            return self.degree_of_trust(own), 0
        responses, messages = network.query(
            perspective, target, depth_limit=depth_limit
        )
        testimonies = [
            self.testimony_from(
                response.witness, target,
                chain_length=max(1, response.chain_length),
            )
            for response in responses
        ]
        combined = self.combine_testimonies(own, testimonies)
        return self.degree_of_trust(combined), messages

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        if perspective is not None:
            own = self.local_mass(perspective, target)
            if self.local_count(perspective, target) >= self.min_local:
                return self.degree_of_trust(own)
        else:
            perspective = ""
            own = _VACUOUS
        witnesses = [
            agent
            for agent, targets in self._local.items()
            if agent != perspective and target in targets
        ]
        testimonies = [
            self.testimony_from(w, target, chain_length=1) for w in witnesses
        ]
        combined = self.combine_testimonies(own, testimonies)
        return self.degree_of_trust(combined)
