"""EigenTrust (Kamvar, Schlosser & Garcia-Molina) — decentralized /
person-agent / global.

Local trust: peer *i*'s satisfaction balance with *j*,
``s_ij = sat(i,j) − unsat(i,j)``, clipped at zero and normalized into a
row-stochastic matrix *C*.  Global trust is the stationary vector of

.. math::  t^{(k+1)} = (1 - a)\\, C^T t^{(k)} + a\\, p

where *p* is the distribution over **pre-trusted peers** and *a* the
blend weight — the ingredient that makes EigenTrust resistant to
collusion rings (malicious cliques inflate each other but receive no
mass from the pre-trusted set).

Two deployments:

* :class:`EigenTrustModel` — the matrix iteration, run centrally.
* :class:`DistributedEigenTrust` — the secure distributed variant:
  each peer's trust value is computed by *score managers* located via a
  :class:`~repro.p2p.dht.ChordDHT`, with DHT messages counted so the
  overhead experiment can price decentralization.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.obs.recorder import get_recorder
from repro.p2p.dht import ChordDHT


class EigenTrustModel(ReputationModel):
    """EigenTrust power iteration over local trust values.

    The stationary vector is *maintained*, not recomputed: a versioned
    dirty-flag cache keeps the local-trust matrix as numpy arrays with
    an index map, :meth:`record` queues an O(1) row patch instead of
    invalidating the structure, and queries re-converge by warm-starting
    the power iteration from the previous fixed point.  A dense O(n²)
    rebuild happens only when the peer set itself grows — never per
    query.  This mirrors how Kamvar et al. intend the vector to be kept
    (incrementally, by the score managers), rather than being an
    approximation: the damped iteration has a unique fixed point for
    ``alpha > 0``, so the warm start converges to the same answer as a
    cold one.

    Args:
        pre_trusted: ids of the pre-trusted peer set P (may be empty,
            in which case *p* is uniform over all known peers — the
            non-robust baseline variant).
        alpha: weight of the pre-trusted distribution (their *a*).
        positive_threshold: ratings above this count as satisfactory.
        tol / max_iter: iteration controls.
    """

    name = "eigentrust"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    )
    paper_ref = "[11, 12]"

    def __init__(
        self,
        pre_trusted: Optional[Iterable[EntityId]] = None,
        alpha: float = 0.1,
        positive_threshold: float = 0.5,
        tol: float = 1e-12,
        max_iter: int = 500,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError("alpha must be in [0, 1]")
        self.pre_trusted: Set[EntityId] = set(pre_trusted or ())
        self.alpha = alpha
        self.positive_threshold = positive_threshold
        self.tol = tol
        self.max_iter = max_iter
        #: (rater, target) -> (sat, unsat) counts
        self._counts: Dict[Tuple[EntityId, EntityId], Tuple[int, int]] = {}
        self._peers: Set[EntityId] = set(self.pre_trusted)
        self._trust: Optional[Dict[EntityId, float]] = None
        self.iterations_last_run = 0
        # -- incremental cache state --------------------------------------
        #: bumped on every record; lets callers detect staleness cheaply
        self.version = 0
        #: version the cached stationary vector corresponds to
        self._trust_version = -1
        self._peer_list: List[EntityId] = []
        self._index: Dict[EntityId, int] = {}
        #: raw clipped satisfaction balances, row = rater
        self._balance: Optional[np.ndarray] = None
        #: row-stochastic local-trust matrix (prior rows for empty raters)
        self._matrix: Optional[np.ndarray] = None
        self._prior_vec: Optional[np.ndarray] = None
        #: previous fixed point, the warm start for the next refresh
        self._trust_vec: Optional[np.ndarray] = None
        #: (rater, target) pairs touched since the arrays were last patched
        self._pending: List[Tuple[EntityId, EntityId]] = []
        self._structure_dirty = True

    def record(self, feedback: Feedback) -> None:
        key = (feedback.rater, feedback.target)
        sat, unsat = self._counts.get(key, (0, 0))
        if feedback.rating > self.positive_threshold:
            sat += 1
        else:
            unsat += 1
        self._counts[key] = (sat, unsat)
        if feedback.rater not in self._peers or feedback.target not in self._peers:
            self._peers.update(key)
            self._structure_dirty = True
        self._pending.append(key)
        self.version += 1
        self._trust = None

    def local_trust(self, rater: EntityId, target: EntityId) -> float:
        """Normalized c_ij (row-normalized clipped satisfaction balance)."""
        row = self._local_row(rater)
        return row.get(target, 0.0)

    def _local_row(self, rater: EntityId) -> Dict[EntityId, float]:
        raw: Dict[EntityId, float] = {}
        for (i, j), (sat, unsat) in self._counts.items():
            if i != rater:
                continue
            raw[j] = max(sat - unsat, 0)
        total = sum(raw.values())
        if total <= 0:
            # No positive experience: trust the pre-trusted set (their
            # fallback for undefined rows).
            if self.pre_trusted:
                share = 1.0 / len(self.pre_trusted)
                return {p: share for p in sorted(self.pre_trusted)}
            n = len(self._peers)
            return {p: 1.0 / n for p in sorted(self._peers)} if n else {}
        return {j: v / total for j, v in raw.items()}

    def _prior(self) -> Dict[EntityId, float]:
        if self.pre_trusted:
            share = 1.0 / len(self.pre_trusted)
            return {p: share for p in sorted(self.pre_trusted)}
        n = len(self._peers)
        return {p: 1.0 / n for p in sorted(self._peers)} if n else {}

    def compute(self) -> Dict[EntityId, float]:
        """Run the damped power iteration; returns global trust (sums to 1)."""
        peers = sorted(self._peers)
        if not peers:
            self._trust = {}
            return {}
        prior = self._prior()
        rows = {p: self._local_row(p) for p in peers}
        trust = dict(prior) if prior else {p: 1.0 / len(peers) for p in peers}
        for p in peers:
            trust.setdefault(p, 0.0)
        for iteration in range(self.max_iter):
            nxt = {p: self.alpha * prior.get(p, 0.0) for p in peers}
            for i in peers:
                ti = trust.get(i, 0.0)
                if ti <= 0:
                    continue
                for j, c_ij in rows[i].items():
                    if j not in nxt:
                        continue
                    nxt[j] += (1.0 - self.alpha) * c_ij * ti
            delta = sum(abs(nxt[p] - trust.get(p, 0.0)) for p in peers)
            trust = nxt
            if delta < self.tol:
                self.iterations_last_run = iteration + 1
                break
        else:
            self.iterations_last_run = self.max_iter
        total = sum(trust.values())
        if total > 0:
            trust = {p: v / total for p, v in trust.items()}
        self._trust = trust
        return dict(trust)

    # -- incremental cache ---------------------------------------------------
    def _refresh_arrays(self) -> None:
        """Bring the matrix cache up to date with ``_counts``.

        Peer-set growth triggers a structural rebuild (index map, prior
        vector, fallback rows — the only O(n²) path); otherwise the
        queued ``(rater, target)`` patches touch just the rows feedback
        actually changed.
        """
        if self._structure_dirty:
            warm: Optional[Dict[EntityId, float]] = None
            if self._trust_vec is not None and self._peer_list:
                warm = {
                    p: float(v)
                    for p, v in zip(self._peer_list, self._trust_vec)
                }
            peers = sorted(self._peers)
            n = len(peers)
            index = {p: i for i, p in enumerate(peers)}
            prior = np.zeros(n)
            if self.pre_trusted:
                share = 1.0 / len(self.pre_trusted)
                for p in sorted(self.pre_trusted):
                    prior[index[p]] = share
            elif n:
                prior.fill(1.0 / n)
            balance = np.zeros((n, n))
            for (i, j), (sat, unsat) in self._counts.items():
                balance[index[i], index[j]] = max(sat - unsat, 0)
            sums = balance.sum(axis=1)
            matrix = np.empty_like(balance)
            positive = sums > 0
            matrix[positive] = balance[positive] / sums[positive, None]
            matrix[~positive] = prior
            self._peer_list = peers
            self._index = index
            self._prior_vec = prior
            self._balance = balance
            self._matrix = matrix
            if warm:
                vec = np.array([warm.get(p, 0.0) for p in peers])
                self._trust_vec = vec if float(vec.sum()) > 0 else None
            else:
                self._trust_vec = None
            self._pending.clear()
            self._structure_dirty = False
        elif self._pending:
            assert self._balance is not None and self._matrix is not None
            index = self._index
            touched = set()
            for i, j in self._pending:
                sat, unsat = self._counts[(i, j)]
                self._balance[index[i], index[j]] = max(sat - unsat, 0)
                touched.add(index[i])
            for r in sorted(touched):
                row = self._balance[r]
                total = float(row.sum())
                if total > 0:
                    self._matrix[r] = row / total
                else:
                    self._matrix[r] = self._prior_vec
            self._pending.clear()

    def _converge(self) -> np.ndarray:
        """Damped power iteration over the cached matrix, warm-started
        from the previous fixed point when one exists."""
        assert self._matrix is not None and self._prior_vec is not None
        n = len(self._peer_list)
        prior = self._prior_vec
        trust: Optional[np.ndarray] = None
        if (
            self.alpha > 0
            and self._trust_vec is not None
            and len(self._trust_vec) == n
        ):
            total = float(self._trust_vec.sum())
            if total > 0:
                trust = self._trust_vec / total
        if trust is None:
            trust = (
                prior.copy()
                if float(prior.sum()) > 0
                else np.full(n, 1.0 / n)
            )
        matrix_t = self._matrix.T
        a = self.alpha
        for iteration in range(self.max_iter):
            nxt = a * prior + (1.0 - a) * (matrix_t @ trust)
            delta = float(np.abs(nxt - trust).sum())
            trust = nxt
            if delta < self.tol:
                self.iterations_last_run = iteration + 1
                break
        else:
            self.iterations_last_run = self.max_iter
        total = float(trust.sum())
        if total > 0:
            trust = trust / total
        return trust

    def compute_dense(self) -> Dict[EntityId, float]:
        """The incremental numpy engine behind :meth:`score` /
        :meth:`score_many`: patch the cached matrix, warm-start the
        iteration.  Same fixed point as :meth:`compute`."""
        if not self._peers:
            self._trust = {}
            return {}
        self._refresh_arrays()
        trust = self._converge()
        self._trust_vec = trust
        self._trust = {
            p: float(trust[i]) for i, p in enumerate(self._peer_list)
        }
        return dict(self._trust)

    def _ensure_trust(self) -> Dict[EntityId, float]:
        rec = get_recorder()
        if self._trust is None:
            self.compute_dense()
            if rec.enabled:
                rec.count(
                    "model.cache.misses",
                    labels=(self.name,),
                    label_names=("model",),
                )
                rec.count(
                    "model.power_iterations",
                    self.iterations_last_run,
                    labels=(self.name,),
                    label_names=("model",),
                )
        elif rec.enabled:
            rec.count(
                "model.cache.hits",
                labels=(self.name,),
                label_names=("model",),
            )
        assert self._trust is not None
        return self._trust

    def global_trust(self, target: EntityId) -> float:
        return self._ensure_trust().get(target, 0.0)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        trust = self._ensure_trust()
        if not trust:
            return 0.5
        top = max(trust.values())
        if top <= 0:
            return 0.5
        return trust.get(target, 0.0) / top

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch scores from one cached stationary vector."""
        if not targets:
            return []
        trust = self._ensure_trust()
        if not trust:
            return [0.5] * len(targets)
        top = max(trust.values())
        if top <= 0:
            return [0.5] * len(targets)
        values = np.fromiter(
            (trust.get(t, 0.0) for t in targets),
            dtype=float,
            count=len(targets),
        )
        return (values / top).tolist()


class DistributedEigenTrust:
    """Distributed EigenTrust over a Chord DHT.

    Each peer *i*'s trust value is maintained by score managers owning
    keys ``trust:i:<replica>``.  One round has every peer report its
    weighted local-trust contributions to the relevant score managers
    (DHT puts), and managers aggregate (DHT gets) — all message costs
    land in the DHT's network accounting.

    Args:
        n_managers: redundant score managers per peer (Kamvar's secure
            variant).  With several managers, :meth:`query_trust` takes
            the *median* of their answers, so a single compromised
            manager cannot move a peer's reported trust.
    """

    def __init__(
        self,
        model: EigenTrustModel,
        dht: ChordDHT,
        n_managers: int = 1,
    ) -> None:
        if n_managers < 1:
            raise ConfigurationError("n_managers must be >= 1")
        self.model = model
        self.dht = dht
        self.n_managers = n_managers
        self.rounds_run = 0
        self.messages_used = 0
        self._last_trust: Dict[EntityId, float] = {}

    def manager_keys(self, peer: EntityId) -> "list[str]":
        """The DHT keys of *peer*'s score managers."""
        if self.n_managers == 1:
            return [f"trust:{peer}"]
        return [f"trust:{peer}:{i}" for i in range(self.n_managers)]

    def run(self, rounds: int = 10) -> Dict[EntityId, float]:
        """Run *rounds* distributed iterations; returns global trust.

        The arithmetic matches :meth:`EigenTrustModel.compute` (same
        fixed point); what differs is *where* values live and the
        message cost, which this method meters through the DHT.
        """
        peers = sorted(self.model._peers)
        if not peers:
            return {}
        # Clear any manager mailboxes left by a previous run (the final
        # published values would otherwise pollute round one).
        for j in peers:
            for key in self.manager_keys(j):
                owner = self.dht.responsible_node(key)
                self.dht.node(owner).store.pop(key, None)
        prior = self.model._prior()
        rows = {p: self.model._local_row(p) for p in peers}
        trust = dict(prior) if prior else {p: 1.0 / len(peers) for p in peers}
        for p in peers:
            trust.setdefault(p, 0.0)
        for _ in range(rounds):
            # Phase 1: each peer i sends c_ij * t_i to j's score
            # managers (all replicas).
            for i in peers:
                ti = trust.get(i, 0.0)
                for j, c_ij in rows[i].items():
                    if j not in trust:
                        continue
                    for key in self.manager_keys(j):
                        hops = self.dht.put(i, key, c_ij * ti)
                        self.messages_used += hops
            # Phase 2: each peer's managers aggregate and damp; the
            # peer adopts the median of its managers' answers.
            nxt: Dict[EntityId, float] = {}
            for j in peers:
                answers = []
                for key in self.manager_keys(j):
                    contributions, hops = self.dht.get(j, key)
                    self.messages_used += hops
                    incoming = sum(contributions)
                    answers.append(
                        self.model.alpha * prior.get(j, 0.0)
                        + (1.0 - self.model.alpha) * incoming
                    )
                    owner = self.dht.responsible_node(key)
                    self.dht.node(owner).store[key] = []
                answers.sort()
                nxt[j] = answers[len(answers) // 2]
            total = sum(nxt.values())
            if total > 0:
                nxt = {p: v / total for p, v in nxt.items()}
            trust = nxt
            self.rounds_run += 1
        # Publish the final values so query_trust can fetch them.
        for j, value in trust.items():
            for key in self.manager_keys(j):
                hops = self.dht.put(j, key, value)
                self.messages_used += hops
        self._last_trust = dict(trust)
        return trust

    def query_trust(self, origin: EntityId, peer: EntityId) -> float:
        """Fetch *peer*'s trust from its managers; median of answers.

        A single lying manager (tampered store) cannot move the result
        when ``n_managers >= 3``.
        """
        answers = []
        for key in self.manager_keys(peer):
            values, hops = self.dht.get(origin, key)
            self.messages_used += hops
            if values:
                answers.append(values[-1])
        if not answers:
            return self._last_trust.get(peer, 0.0)
        answers.sort()
        return answers[len(answers) // 2]
