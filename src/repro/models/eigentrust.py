"""EigenTrust (Kamvar, Schlosser & Garcia-Molina) — decentralized /
person-agent / global.

Local trust: peer *i*'s satisfaction balance with *j*,
``s_ij = sat(i,j) − unsat(i,j)``, clipped at zero and normalized into a
row-stochastic matrix *C*.  Global trust is the stationary vector of

.. math::  t^{(k+1)} = (1 - a)\\, C^T t^{(k)} + a\\, p

where *p* is the distribution over **pre-trusted peers** and *a* the
blend weight — the ingredient that makes EigenTrust resistant to
collusion rings (malicious cliques inflate each other but receive no
mass from the pre-trusted set).

Two deployments:

* :class:`EigenTrustModel` — the matrix iteration, run centrally.
* :class:`DistributedEigenTrust` — the secure distributed variant:
  each peer's trust value is computed by *score managers* located via a
  :class:`~repro.p2p.dht.ChordDHT`, with DHT messages counted so the
  overhead experiment can price decentralization.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.p2p.dht import ChordDHT


class EigenTrustModel(ReputationModel):
    """EigenTrust power iteration over local trust values.

    Args:
        pre_trusted: ids of the pre-trusted peer set P (may be empty,
            in which case *p* is uniform over all known peers — the
            non-robust baseline variant).
        alpha: weight of the pre-trusted distribution (their *a*).
        positive_threshold: ratings above this count as satisfactory.
        tol / max_iter: iteration controls.
    """

    name = "eigentrust"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    )
    paper_ref = "[11, 12]"

    def __init__(
        self,
        pre_trusted: Optional[Iterable[EntityId]] = None,
        alpha: float = 0.1,
        positive_threshold: float = 0.5,
        tol: float = 1e-10,
        max_iter: int = 200,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError("alpha must be in [0, 1]")
        self.pre_trusted: Set[EntityId] = set(pre_trusted or ())
        self.alpha = alpha
        self.positive_threshold = positive_threshold
        self.tol = tol
        self.max_iter = max_iter
        #: (rater, target) -> (sat, unsat) counts
        self._counts: Dict[Tuple[EntityId, EntityId], Tuple[int, int]] = {}
        self._peers: Set[EntityId] = set(self.pre_trusted)
        self._trust: Optional[Dict[EntityId, float]] = None
        self.iterations_last_run = 0

    def record(self, feedback: Feedback) -> None:
        key = (feedback.rater, feedback.target)
        sat, unsat = self._counts.get(key, (0, 0))
        if feedback.rating > self.positive_threshold:
            sat += 1
        else:
            unsat += 1
        self._counts[key] = (sat, unsat)
        self._peers.update(key)
        self._trust = None

    def local_trust(self, rater: EntityId, target: EntityId) -> float:
        """Normalized c_ij (row-normalized clipped satisfaction balance)."""
        row = self._local_row(rater)
        return row.get(target, 0.0)

    def _local_row(self, rater: EntityId) -> Dict[EntityId, float]:
        raw: Dict[EntityId, float] = {}
        for (i, j), (sat, unsat) in self._counts.items():
            if i != rater:
                continue
            raw[j] = max(sat - unsat, 0)
        total = sum(raw.values())
        if total <= 0:
            # No positive experience: trust the pre-trusted set (their
            # fallback for undefined rows).
            if self.pre_trusted:
                share = 1.0 / len(self.pre_trusted)
                return {p: share for p in self.pre_trusted}
            n = len(self._peers)
            return {p: 1.0 / n for p in self._peers} if n else {}
        return {j: v / total for j, v in raw.items()}

    def _prior(self) -> Dict[EntityId, float]:
        if self.pre_trusted:
            share = 1.0 / len(self.pre_trusted)
            return {p: share for p in self.pre_trusted}
        n = len(self._peers)
        return {p: 1.0 / n for p in self._peers} if n else {}

    def compute(self) -> Dict[EntityId, float]:
        """Run the damped power iteration; returns global trust (sums to 1)."""
        peers = sorted(self._peers)
        if not peers:
            self._trust = {}
            return {}
        prior = self._prior()
        rows = {p: self._local_row(p) for p in peers}
        trust = dict(prior) if prior else {p: 1.0 / len(peers) for p in peers}
        for p in peers:
            trust.setdefault(p, 0.0)
        for iteration in range(self.max_iter):
            nxt = {p: self.alpha * prior.get(p, 0.0) for p in peers}
            for i in peers:
                ti = trust.get(i, 0.0)
                if ti <= 0:
                    continue
                for j, c_ij in rows[i].items():
                    if j not in nxt:
                        continue
                    nxt[j] += (1.0 - self.alpha) * c_ij * ti
            delta = sum(abs(nxt[p] - trust.get(p, 0.0)) for p in peers)
            trust = nxt
            if delta < self.tol:
                self.iterations_last_run = iteration + 1
                break
        else:
            self.iterations_last_run = self.max_iter
        total = sum(trust.values())
        if total > 0:
            trust = {p: v / total for p, v in trust.items()}
        self._trust = trust
        return dict(trust)

    def compute_dense(self) -> Dict[EntityId, float]:
        """Numpy-vectorized power iteration; same fixed point as
        :meth:`compute`, markedly faster for hundreds of peers."""
        peers = sorted(self._peers)
        n = len(peers)
        if n == 0:
            self._trust = {}
            return {}
        index = {p: i for i, p in enumerate(peers)}
        prior_map = self._prior()
        prior = np.zeros(n)
        for p, v in prior_map.items():
            prior[index[p]] = v
        matrix = np.zeros((n, n))
        for i, p in enumerate(peers):
            for j, c_ij in self._local_row(p).items():
                if j in index:
                    matrix[i, index[j]] = c_ij
        trust = prior.copy() if prior.sum() > 0 else np.full(n, 1.0 / n)
        for iteration in range(self.max_iter):
            nxt = self.alpha * prior + (1.0 - self.alpha) * (
                matrix.T @ trust
            )
            delta = float(np.abs(nxt - trust).sum())
            trust = nxt
            if delta < self.tol:
                self.iterations_last_run = iteration + 1
                break
        else:
            self.iterations_last_run = self.max_iter
        total = float(trust.sum())
        if total > 0:
            trust = trust / total
        self._trust = {p: float(trust[index[p]]) for p in peers}
        return dict(self._trust)

    def global_trust(self, target: EntityId) -> float:
        if self._trust is None:
            self.compute()
        assert self._trust is not None
        return self._trust.get(target, 0.0)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        if self._trust is None:
            self.compute()
        assert self._trust is not None
        if not self._trust:
            return 0.5
        top = max(self._trust.values())
        if top <= 0:
            return 0.5
        return self._trust.get(target, 0.0) / top


class DistributedEigenTrust:
    """Distributed EigenTrust over a Chord DHT.

    Each peer *i*'s trust value is maintained by score managers owning
    keys ``trust:i:<replica>``.  One round has every peer report its
    weighted local-trust contributions to the relevant score managers
    (DHT puts), and managers aggregate (DHT gets) — all message costs
    land in the DHT's network accounting.

    Args:
        n_managers: redundant score managers per peer (Kamvar's secure
            variant).  With several managers, :meth:`query_trust` takes
            the *median* of their answers, so a single compromised
            manager cannot move a peer's reported trust.
    """

    def __init__(
        self,
        model: EigenTrustModel,
        dht: ChordDHT,
        n_managers: int = 1,
    ) -> None:
        if n_managers < 1:
            raise ConfigurationError("n_managers must be >= 1")
        self.model = model
        self.dht = dht
        self.n_managers = n_managers
        self.rounds_run = 0
        self.messages_used = 0
        self._last_trust: Dict[EntityId, float] = {}

    def manager_keys(self, peer: EntityId) -> "list[str]":
        """The DHT keys of *peer*'s score managers."""
        if self.n_managers == 1:
            return [f"trust:{peer}"]
        return [f"trust:{peer}:{i}" for i in range(self.n_managers)]

    def run(self, rounds: int = 10) -> Dict[EntityId, float]:
        """Run *rounds* distributed iterations; returns global trust.

        The arithmetic matches :meth:`EigenTrustModel.compute` (same
        fixed point); what differs is *where* values live and the
        message cost, which this method meters through the DHT.
        """
        peers = sorted(self.model._peers)
        if not peers:
            return {}
        # Clear any manager mailboxes left by a previous run (the final
        # published values would otherwise pollute round one).
        for j in peers:
            for key in self.manager_keys(j):
                owner = self.dht.responsible_node(key)
                self.dht.node(owner).store.pop(key, None)
        prior = self.model._prior()
        rows = {p: self.model._local_row(p) for p in peers}
        trust = dict(prior) if prior else {p: 1.0 / len(peers) for p in peers}
        for p in peers:
            trust.setdefault(p, 0.0)
        for _ in range(rounds):
            # Phase 1: each peer i sends c_ij * t_i to j's score
            # managers (all replicas).
            for i in peers:
                ti = trust.get(i, 0.0)
                for j, c_ij in rows[i].items():
                    if j not in trust:
                        continue
                    for key in self.manager_keys(j):
                        hops = self.dht.put(i, key, c_ij * ti)
                        self.messages_used += hops
            # Phase 2: each peer's managers aggregate and damp; the
            # peer adopts the median of its managers' answers.
            nxt: Dict[EntityId, float] = {}
            for j in peers:
                answers = []
                for key in self.manager_keys(j):
                    contributions, hops = self.dht.get(j, key)
                    self.messages_used += hops
                    incoming = sum(contributions)
                    answers.append(
                        self.model.alpha * prior.get(j, 0.0)
                        + (1.0 - self.model.alpha) * incoming
                    )
                    owner = self.dht.responsible_node(key)
                    self.dht.node(owner).store[key] = []
                answers.sort()
                nxt[j] = answers[len(answers) // 2]
            total = sum(nxt.values())
            if total > 0:
                nxt = {p: v / total for p, v in nxt.items()}
            trust = nxt
            self.rounds_run += 1
        # Publish the final values so query_trust can fetch them.
        for j, value in trust.items():
            for key in self.manager_keys(j):
                hops = self.dht.put(j, key, value)
                self.messages_used += hops
        self._last_trust = dict(trust)
        return trust

    def query_trust(self, origin: EntityId, peer: EntityId) -> float:
        """Fetch *peer*'s trust from its managers; median of answers.

        A single lying manager (tampered store) cannot move the result
        when ``n_managers >= 3``.
        """
        answers = []
        for key in self.manager_keys(peer):
            values, hops = self.dht.get(origin, key)
            self.messages_used += hops
            if values:
                answers.append(values[-1])
        if not answers:
            return self._last_trust.get(peer, 0.0)
        answers.sort()
        return answers[len(answers) // 2]
