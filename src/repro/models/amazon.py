"""Amazon-style review aggregation — centralized / resource / global.

A product page's standing is the mean star rating, with two published
refinements reproduced here: reviews with more *helpful votes* count
more, and recent reviews count more than stale ones.  Ratings on
``[0, 1]`` map to the 1-5 star scale for display.

Reviews stay as the eager per-target lists (``vote_helpful`` mutates
reviews in place, so the scalar state cannot be a pure replay), but
``record`` also appends to a columnar :class:`~repro.store.EventStore`
mirror: ``score_many`` evaluates the helpfulness × recency weighting
as one full-column ``DecayPolicy.weights`` call plus per-target
``np.bincount`` sums, invalidated by a vote epoch counter whenever
helpful votes change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.decay import DecayPolicy, ExponentialDecay
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel
from repro.store import EventStore


@dataclass
class _Review:
    rater: EntityId
    time: float
    rating: float
    helpful_votes: int = 0


class AmazonModel(ReputationModel):
    """Helpfulness- and recency-weighted mean rating.

    Args:
        decay: recency weighting of reviews (default: half-life 200).
        helpfulness_weight: extra weight per helpful vote; a review's
            weight is ``1 + helpfulness_weight * votes``.
    """

    name = "amazon"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.GLOBAL
    )
    paper_ref = "[2]"

    def __init__(
        self,
        decay: Optional[DecayPolicy] = None,
        helpfulness_weight: float = 0.25,
    ) -> None:
        if helpfulness_weight < 0:
            raise ConfigurationError("helpfulness_weight must be >= 0")
        self.decay = decay or ExponentialDecay(half_life=200.0)
        self.helpfulness_weight = helpfulness_weight
        self._reviews: Dict[EntityId, List[_Review]] = {}
        self._store = EventStore()
        #: bumped whenever helpful votes change (kernel invalidation)
        self._votes_epoch = 0
        #: row-aligned helpful-vote column: ((version, epoch), votes)
        self._votes_cache: Optional[Tuple[Tuple[int, int], np.ndarray]] = None
        #: per-(version, epoch, now) reduced (num, den, count) arrays
        self._kernel: Optional[
            Tuple[
                Tuple[int, int, Optional[float]],
                Tuple[np.ndarray, np.ndarray, np.ndarray],
            ]
        ] = None

    def record(self, feedback: Feedback) -> None:
        self._reviews.setdefault(feedback.target, []).append(
            _Review(
                rater=feedback.rater,
                time=feedback.time,
                rating=feedback.rating,
            )
        )
        self._store.append(
            feedback.rater, feedback.target, feedback.rating, feedback.time
        )

    def vote_helpful(
        self, target: EntityId, rater: EntityId, votes: int = 1
    ) -> None:
        """Add helpful votes to *rater*'s reviews of *target*."""
        if votes < 0:
            raise ConfigurationError("votes must be >= 0")
        for review in self._reviews.get(target, ()):
            if review.rater == rater:
                review.helpful_votes += votes
        self._votes_epoch += 1

    def review_count(self, target: EntityId) -> int:
        return len(self._reviews.get(target, ()))

    def star_rating(
        self, target: EntityId, now: Optional[float] = None
    ) -> Optional[float]:
        """Display rating on the 1-5 star scale; None without reviews."""
        if not self._reviews.get(target):
            return None
        return 1.0 + 4.0 * self.score(target, now=now)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        reviews = self._reviews.get(target)
        if not reviews:
            return 0.5
        weights = 1.0 + self.helpfulness_weight * np.array(
            [r.helpful_votes for r in reviews], dtype=float
        )
        if now is not None:
            ages = now - np.array([r.time for r in reviews], dtype=float)
            weights = weights * self.decay.weights(np.maximum(ages, 0.0))
        ratings = np.array([r.rating for r in reviews], dtype=float)
        weight_sum = float(weights.sum())
        if weight_sum <= 0:
            return 0.5
        return float(weights @ ratings) / weight_sum

    # -- columnar kernel -----------------------------------------------
    def _votes_column(self) -> np.ndarray:
        """Helpful votes aligned with store rows.  A target's store rows
        are in append order — the same order as its review list — so the
        per-target group rows index its reviews directly."""
        store = self._store
        key = (store.version, self._votes_epoch)
        cached = self._votes_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        votes = np.zeros(len(store), dtype=np.float64)
        if self._votes_epoch:
            by_target = store.by_target()
            code = store.entities.code
            for target, reviews in self._reviews.items():
                rows = by_target.rows(code(target))
                votes[rows] = [r.helpful_votes for r in reviews]
        self._votes_cache = (key, votes)
        return votes

    def _kernel_arrays(
        self, now: Optional[float]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-code (weighted sum, weight sum, review count), with the
        decay applied to the whole time column at once."""
        store = self._store
        key = (store.version, self._votes_epoch, now)
        cached = self._kernel
        if cached is not None and cached[0] == key:
            return cached[1]
        columns = store.snapshot()
        size = max(len(store.entities), 1)
        weights = 1.0 + self.helpfulness_weight * self._votes_column()
        if now is not None:
            ages = np.maximum(now - columns.time, 0.0)
            weights = weights * self.decay.weights(ages)
        num = np.bincount(
            columns.target, weights=weights * columns.value, minlength=size
        )
        den = np.bincount(columns.target, weights=weights, minlength=size)
        count = np.bincount(columns.target, minlength=size)
        arrays = (num, den, count)
        self._kernel = (key, arrays)
        return arrays

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Batch weighted means from one pass over the store columns."""
        num, den, count = self._kernel_arrays(now)
        codes = self._store.entities.codes(targets)
        known = codes >= 0
        safe = np.where(known, codes, 0)
        cnt = np.where(known, count[safe], 0)
        weight_sum = np.where(known, den[safe], 0.0)
        usable = (cnt > 0) & (weight_sum > 0)
        scores = np.where(
            usable,
            np.where(known, num[safe], 0.0)
            / np.where(usable, weight_sum, 1.0),
            0.5,
        )
        result: List[float] = scores.tolist()
        return result
